"""Hierarchical span tracing with a zero-overhead disabled path.

A *span* is one timed region of the scheduling pipeline -- an allocation
loop, a mapping pass, a stream admission -- with a dotted name, free-form
string labels (tenant, application, strategy, shard) and monotonic
start/end instants.  Spans nest: the tracer keeps an open-span stack, so
a span opened while another is open records that parent and its depth.

The module-level :func:`span` function is the instrumentation entry
point used across the code base::

    from repro.obs import trace

    with trace.span("allocation.iterate", ptg=ptg.name):
        ...

Tracing is **off by default**.  While no tracer is installed
(:func:`active` returns ``None``), :func:`span` returns a shared no-op
singleton whose ``__enter__``/``__exit__`` do nothing -- the disabled
path costs one function call and one global read, which is what keeps
the golden bit-identical tests and the benchmark ratios untouched
(gated at <= 3 % by ``benchmarks/bench_obs_overhead.py``).  Telemetry
never feeds back into scheduling decisions: an enabled tracer only
*observes*, so schedules are bit-identical either way (asserted by
``tests/test_obs_equivalence.py``).

The clock is injectable for determinism: the span-ordering tests drive a
:class:`Tracer` with a fake counter instead of ``time.perf_counter``.

Examples
--------
>>> ticks = iter(range(100))
>>> tracer = Tracer(clock=lambda: float(next(ticks)))
>>> with tracer.span("outer"):
...     with tracer.span("inner", tenant="t0"):
...         pass
>>> [(s.name, s.depth, s.start, s.end) for s in tracer.spans]
[('inner', 1, 1.0, 2.0), ('outer', 0, 0.0, 3.0)]
>>> tracer.spans[0].labels
{'tenant': 't0'}
>>> tracer.spans[0].parent == tracer.spans[1].index
True
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass
class SpanRecord:
    """One completed span: name, nesting, labels and monotonic instants.

    ``start`` and ``end`` are clock readings (``time.perf_counter`` by
    default), ``parent`` is the index of the enclosing span in the
    tracer's completion-ordered :attr:`Tracer.spans` list (``-1`` for a
    root span) and ``depth`` is the nesting level (0 for roots).
    """

    name: str
    start: float
    end: float = 0.0
    depth: int = 0
    parent: int = -1
    index: int = 0
    labels: Dict[str, str] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Elapsed clock time between start and end."""
        return self.end - self.start


class _NoopSpan:
    """Shared do-nothing context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        """Enter the no-op region (returns itself)."""
        return self

    def __exit__(self, *exc) -> bool:
        """Leave the no-op region without suppressing exceptions."""
        return False

    def annotate(self, **labels) -> None:
        """Discard labels (the live span records them)."""


#: The one no-op span instance every disabled :func:`span` call returns.
NOOP_SPAN = _NoopSpan()


class _LiveSpan:
    """Context manager recording one span on its tracer."""

    __slots__ = ("_tracer", "_record")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self._record = record

    def __enter__(self) -> "_LiveSpan":
        """Open the span: push it on the tracer's stack and stamp the start."""
        self._tracer._open(self._record)
        return self

    def __exit__(self, *exc) -> bool:
        """Close the span: stamp the end and move it to the completed list."""
        self._tracer._close(self._record)
        return False

    def annotate(self, **labels) -> None:
        """Attach more labels to the open span (stringified)."""
        for key, value in labels.items():
            self._record.labels[str(key)] = str(value)


class Tracer:
    """Collects nested spans with an injectable monotonic clock.

    Completed spans land in :attr:`spans` in *completion* order (inner
    spans before the span that encloses them), each carrying its depth
    and the index of its parent -- enough for the exporters to rebuild
    the hierarchy.  The tracer is deliberately single-threaded, like the
    scheduling pipeline it instruments; every worker process owns its
    own tracer.

    Parameters
    ----------
    clock:
        Zero-argument callable returning a monotonically non-decreasing
        float; defaults to :func:`time.perf_counter`.  Tests inject a
        fake counter for deterministic span timings.
    profiler_factory:
        Optional zero-argument callable returning a started profiler
        (e.g. :func:`repro.obs.profile.start_profiler`).  When set,
        every *root* span runs under its own profiler and the rendered
        top entries land in :attr:`profiles` keyed by span name.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        profiler_factory: Optional[Callable[[], object]] = None,
    ) -> None:
        self.clock: Callable[[], float] = clock or time.perf_counter
        self.spans: List[SpanRecord] = []
        self.profiles: Dict[str, str] = {}
        self._stack: List[SpanRecord] = []
        # children completed while their parent is still open, keyed by
        # the parent record's id; their ``parent`` index is patched once
        # the parent itself lands in ``spans``
        self._pending: Dict[int, List[SpanRecord]] = {}
        self._profiler_factory = profiler_factory
        self._profiler: Optional[object] = None

    def span(self, name: str, **labels) -> _LiveSpan:
        """A context manager recording one span named *name*.

        Keyword arguments become string labels of the span (e.g.
        ``tenant=...``, ``ptg=...``, ``shard=...``).
        """
        record = SpanRecord(
            name=str(name),
            start=0.0,
            labels={str(k): str(v) for k, v in labels.items()},
        )
        return _LiveSpan(self, record)

    # ------------------------------------------------------------------ #
    # bookkeeping (called by _LiveSpan)
    # ------------------------------------------------------------------ #
    def _open(self, record: SpanRecord) -> None:
        """Stamp the start instant and push the span on the open stack."""
        if not self._stack and self._profiler_factory is not None:
            self._profiler = self._profiler_factory()
        record.depth = len(self._stack)
        self._stack.append(record)
        record.start = self.clock()

    def _close(self, record: SpanRecord) -> None:
        """Stamp the end instant and append the span to :attr:`spans`."""
        record.end = self.clock()
        if not self._stack or self._stack[-1] is not record:
            # spans must close in LIFO order; a mismatch is an
            # instrumentation bug -- fail loudly rather than record a
            # silently wrong hierarchy.
            raise RuntimeError(
                f"span {record.name!r} closed out of order "
                f"(open stack: {[s.name for s in self._stack]})"
            )
        self._stack.pop()
        record.index = len(self.spans)
        self.spans.append(record)
        if self._stack:
            self._pending.setdefault(id(self._stack[-1]), []).append(record)
        else:
            record.parent = -1
        for child in self._pending.pop(id(record), []):
            child.parent = record.index
        if not self._stack and self._profiler is not None:
            profiler = self._profiler
            self._profiler = None
            from repro.obs.profile import render_profile, stop_profiler

            stop_profiler(profiler)
            self.profiles[record.name] = render_profile(profiler)

    @property
    def open_spans(self) -> List[str]:
        """Names of the currently open spans, outermost first."""
        return [record.name for record in self._stack]


#: The installed tracer, or ``None`` while tracing is disabled.
_ACTIVE: Optional[Tracer] = None


def active() -> Optional[Tracer]:
    """The installed tracer, or ``None`` while tracing is disabled."""
    return _ACTIVE


def enabled() -> bool:
    """True while a tracer is installed (telemetry capture is on)."""
    return _ACTIVE is not None


def span(name: str, **labels):
    """Open a span on the active tracer, or a shared no-op when disabled.

    This is the only call instrumented code makes; its disabled path is
    one global read and the return of :data:`NOOP_SPAN`.
    """
    tracer = _ACTIVE
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, **labels)


def _activate(tracer: Optional[Tracer]) -> None:
    """Install (or with ``None`` remove) the module-level tracer."""
    global _ACTIVE
    _ACTIVE = tracer
