"""Telemetry exporters: Chrome trace JSON, Prometheus text, JSON summaries.

Three output formats for one capture:

* :func:`chrome_trace` / :func:`write_chrome_trace` -- the Chrome/
  Perfetto ``traceEvents`` JSON format (complete ``"ph": "X"`` events
  with microsecond timestamps), loadable in ``chrome://tracing`` or
  https://ui.perfetto.dev to inspect the span hierarchy visually,
* :func:`prometheus_text` -- the Prometheus text exposition format
  (dotted meter names sanitised to underscores, histograms as
  cumulative ``_bucket`` series),
* :func:`telemetry_summary` -- a plain-JSON document combining spans,
  metrics and profiles; campaign shards persist it through the PR 5
  generic store channels (channel :data:`TELEMETRY_CHANNEL`) and
  ``repro-ptg metrics`` folds the per-shard documents back together
  with :func:`merge_metrics` / :func:`aggregate_spans`.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence

from repro.obs.meters import Histogram
from repro.obs.trace import SpanRecord

#: Store channel (``CampaignStore.append_payload``) telemetry summaries
#: are persisted under, next to the PR 5 ``"stream"`` channel.
TELEMETRY_CHANNEL = "telemetry"

#: Format version stamped into every telemetry summary document.
SUMMARY_VERSION = 1


def chrome_trace(
    spans: Sequence[SpanRecord], process_name: str = "repro"
) -> Dict:
    """Chrome/Perfetto ``traceEvents`` document of completed spans.

    Timestamps are microseconds relative to the earliest span start, so
    the trace viewer shows the pipeline starting at t=0 regardless of
    the monotonic clock's origin.
    """
    origin = min((span.start for span in spans), default=0.0)
    events: List[Dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "args": {"name": process_name},
        }
    ]
    for span in spans:
        event = {
            "name": span.name,
            "ph": "X",
            "ts": (span.start - origin) * 1e6,
            "dur": span.duration * 1e6,
            "pid": 1,
            "tid": 1,
        }
        if span.labels:
            event["args"] = dict(span.labels)
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str, spans: Sequence[SpanRecord], process_name: str = "repro"
) -> None:
    """Write :func:`chrome_trace` output to *path* as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(spans, process_name=process_name), handle, indent=1)
        handle.write("\n")


def _prometheus_name(name: str) -> str:
    """Sanitise a dotted meter name to a Prometheus metric name."""
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def prometheus_text(snapshot: Dict, prefix: str = "repro") -> str:
    """Prometheus text exposition of a registry snapshot.

    *snapshot* is :meth:`repro.obs.meters.MetricsRegistry.snapshot`
    output (or the ``"metrics"`` section of a telemetry summary).
    Counters become ``<prefix>_<name>_total``, gauges plain gauges and
    histograms cumulative ``_bucket`` / ``_sum`` / ``_count`` series.
    """
    lines: List[str] = []
    for name, value in snapshot.get("counters", {}).items():
        metric = f"{prefix}_{_prometheus_name(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, payload in snapshot.get("gauges", {}).items():
        metric = f"{prefix}_{_prometheus_name(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {payload['value']}")
        lines.append(f"{metric}_max {payload['max']}")
    for name, payload in snapshot.get("histograms", {}).items():
        metric = f"{prefix}_{_prometheus_name(name)}"
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for edge, count in zip(payload["edges"], payload["bucket_counts"]):
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{edge}"}} {cumulative}')
        cumulative += payload.get("overflow", 0)
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {payload['sum']}")
        lines.append(f"{metric}_count {payload['count']}")
    return "\n".join(lines) + "\n"


def telemetry_summary(
    spans: Sequence[SpanRecord],
    snapshot: Optional[Dict] = None,
    profiles: Optional[Dict[str, str]] = None,
    labels: Optional[Dict[str, str]] = None,
) -> Dict:
    """Plain-JSON telemetry document of one capture.

    This is the payload persisted to the :data:`TELEMETRY_CHANNEL` store
    channel by instrumented shard/stream runs and written by
    ``repro-ptg trace --summary``; :func:`merge_metrics` and
    :func:`aggregate_spans` consume lists of these documents.
    """
    return {
        "version": SUMMARY_VERSION,
        "labels": dict(labels or {}),
        "spans": [
            {
                "name": span.name,
                "start": span.start,
                "end": span.end,
                "depth": span.depth,
                "parent": span.parent,
                "index": span.index,
                "labels": dict(span.labels),
            }
            for span in spans
        ],
        "metrics": dict(snapshot or {}),
        "profiles": dict(profiles or {}),
    }


def summary_spans(summary: Dict) -> List[SpanRecord]:
    """Rebuild :class:`SpanRecord` objects from a telemetry summary."""
    return [
        SpanRecord(
            name=payload["name"],
            start=payload["start"],
            end=payload["end"],
            depth=payload["depth"],
            parent=payload["parent"],
            index=payload["index"],
            labels=dict(payload.get("labels", {})),
        )
        for payload in summary.get("spans", [])
    ]


def merge_metrics(snapshots: Iterable[Dict]) -> Dict:
    """Fold registry snapshots together (counters sum, histograms merge).

    Gauges keep the maximum observed value -- last-value semantics are
    meaningless across shards, but "most concurrent applications seen
    anywhere" is the question the gauge answers in aggregate.
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, Dict] = {}
    histograms: Dict[str, Histogram] = {}
    for snapshot in snapshots:
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0.0) + value
        for name, payload in snapshot.get("gauges", {}).items():
            merged = gauges.setdefault(name, {"value": 0.0, "max": 0.0})
            merged["value"] = max(merged["value"], payload["value"])
            merged["max"] = max(merged["max"], payload["max"])
        for name, payload in snapshot.get("histograms", {}).items():
            incoming = Histogram.from_dict(payload)
            existing = histograms.get(name)
            if existing is None:
                histograms[name] = incoming
            else:
                existing.merge(incoming)
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": {
            name: histograms[name].to_dict() for name in sorted(histograms)
        },
    }


def aggregate_spans(spans: Iterable[SpanRecord]) -> Dict[str, Dict]:
    """Per-name duration aggregates of completed spans.

    Returns ``{name: {"count", "total", "mean", "max"}}`` -- the
    per-phase table ``repro-ptg metrics`` renders.
    """
    aggregates: Dict[str, Dict] = {}
    for span in spans:
        entry = aggregates.get(span.name)
        if entry is None:
            entry = aggregates[span.name] = {
                "count": 0, "total": 0.0, "mean": 0.0, "max": 0.0,
            }
        entry["count"] += 1
        entry["total"] += span.duration
        if span.duration > entry["max"]:
            entry["max"] = span.duration
    for entry in aggregates.values():
        entry["mean"] = entry["total"] / entry["count"]
    return dict(sorted(aggregates.items()))
