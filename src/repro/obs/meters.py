"""Metrics registry: counters, gauges and fixed-bucket histograms.

The registry is the numeric half of :mod:`repro.obs` (spans are the
temporal half): instrumented code records *how many* -- allocation
iterations, packed placements, admission latencies -- into named meters.
Like tracing, metrics are **off by default**: hot code guards its
recording with one global read::

    from repro.obs import meters

    registry = meters.active()
    if registry is not None:
        registry.counter("mapping.placements").inc()

Meter names are dotted strings (``stream.admission_latency``,
``allocation.iterations``); the exporters translate them to the target
format (Prometheus names replace the dots with underscores).

Histograms use **fixed bucket upper edges** fixed at creation, so two
histograms of the same name merge exactly (the ``repro metrics``
command aggregates per-shard admission-latency histograms this way) and
quantiles are estimated by linear interpolation inside the bucket that
holds the requested rank -- no sample retention, O(buckets) memory for
streams of any length.

Examples
--------
>>> registry = MetricsRegistry()
>>> registry.counter("allocation.iterations").inc(3)
>>> registry.gauge("stream.active").set(2.0)
>>> h = registry.histogram("stream.admission_latency", edges=(0.1, 1.0, 10.0))
>>> for value in (0.05, 0.2, 0.3, 5.0):
...     h.observe(value)
>>> h.count, h.bucket_counts
(4, [1, 2, 1])
>>> round(h.quantile(0.5), 3)
0.55
>>> snap = registry.snapshot()
>>> sorted(snap["counters"]), sorted(snap["histograms"])
(['allocation.iterations'], ['stream.admission_latency'])
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError

#: Default bucket upper edges (seconds) of latency histograms: log-ish
#: spacing from 0.1 ms to 30 s, covering sub-millisecond admissions as
#: well as paper-scale allocation passes.
DEFAULT_LATENCY_EDGES: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Default bucket upper edges of count-valued histograms (candidate-set
#: sizes, packing reductions): powers of two up to 1024.
DEFAULT_COUNT_EDGES: Tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
)


class Counter:
    """A monotonically increasing meter (floats allowed, e.g. seconds)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be non-negative) to the counter."""
        if amount < 0:
            raise ConfigurationError(f"counters only increase, got {amount}")
        self.value += amount


class Gauge:
    """A last-value meter, also tracking the maximum it ever held."""

    __slots__ = ("value", "max")

    def __init__(self) -> None:
        self.value: float = 0.0
        self.max: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value (and update the running maximum)."""
        self.value = float(value)
        if self.value > self.max:
            self.max = self.value


class Histogram:
    """Fixed-bucket histogram with quantile estimation.

    Parameters
    ----------
    edges:
        Strictly increasing bucket *upper* edges.  An observation lands
        in the first bucket whose edge is >= the value; values above the
        last edge land in the implicit overflow bucket.
    """

    __slots__ = ("edges", "bucket_counts", "overflow", "count", "sum", "min", "max")

    def __init__(self, edges: Sequence[float] = DEFAULT_LATENCY_EDGES) -> None:
        edges = tuple(float(e) for e in edges)
        if not edges or any(b <= a for a, b in zip(edges, edges[1:])):
            raise ConfigurationError(
                f"histogram edges must be strictly increasing and non-empty, "
                f"got {edges!r}"
            )
        self.edges: Tuple[float, ...] = edges
        self.bucket_counts: List[int] = [0] * len(edges)
        self.overflow: int = 0
        self.count: int = 0
        self.sum: float = 0.0
        self.min: float = float("inf")
        self.max: float = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        edges = self.edges
        # linear scan: edge tuples are short (tens of buckets) and the
        # common case (small latencies) exits within a few comparisons
        for index, edge in enumerate(edges):
            if value <= edge:
                self.bucket_counts[index] += 1
                return
        self.overflow += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated *q*-quantile by interpolation inside the bucket edges.

        The estimate walks the cumulative bucket counts to the bucket
        holding rank ``q * count`` and interpolates linearly between the
        bucket's lower and upper edge; ranks in the overflow bucket
        return the observed maximum.  Returns 0 for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0.0
        lower = self.min if self.min < self.edges[0] else 0.0
        for index, edge in enumerate(self.edges):
            in_bucket = self.bucket_counts[index]
            if in_bucket and cumulative + in_bucket >= rank:
                fraction = (rank - cumulative) / in_bucket
                return lower + fraction * (edge - lower)
            if in_bucket:
                cumulative += in_bucket
            lower = edge
        return self.max

    def merge(self, other: "Histogram") -> None:
        """Fold *other* (same edges) into this histogram."""
        if other.edges != self.edges:
            raise ConfigurationError(
                f"cannot merge histograms with different edges: "
                f"{self.edges!r} vs {other.edges!r}"
            )
        for index, count in enumerate(other.bucket_counts):
            self.bucket_counts[index] += count
        self.overflow += other.overflow
        self.count += other.count
        self.sum += other.sum
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)

    def to_dict(self) -> Dict:
        """Plain-JSON representation (inverse of :meth:`from_dict`)."""
        return {
            "edges": list(self.edges),
            "bucket_counts": list(self.bucket_counts),
            "overflow": self.overflow,
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "Histogram":
        """Rebuild a histogram from :meth:`to_dict` output."""
        histogram = cls(edges=payload["edges"])
        histogram.bucket_counts = [int(c) for c in payload["bucket_counts"]]
        histogram.overflow = int(payload.get("overflow", 0))
        histogram.count = int(payload["count"])
        histogram.sum = float(payload["sum"])
        if histogram.count:
            histogram.min = float(payload["min"])
            histogram.max = float(payload["max"])
        return histogram


class MetricsRegistry:
    """Named meters, created on first use and listed by :meth:`snapshot`."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter named *name* (created at zero on first use)."""
        meter = self.counters.get(name)
        if meter is None:
            meter = self.counters[name] = Counter()
        return meter

    def gauge(self, name: str) -> Gauge:
        """The gauge named *name* (created at zero on first use)."""
        meter = self.gauges.get(name)
        if meter is None:
            meter = self.gauges[name] = Gauge()
        return meter

    def histogram(
        self, name: str, edges: Sequence[float] = DEFAULT_LATENCY_EDGES
    ) -> Histogram:
        """The histogram named *name* (created with *edges* on first use).

        Later calls return the existing histogram; *edges* only applies
        to the first call for a given name.
        """
        meter = self.histograms.get(name)
        if meter is None:
            meter = self.histograms[name] = Histogram(edges=edges)
        return meter

    def snapshot(self) -> Dict:
        """Plain-JSON dump of every meter, keyed by kind then name."""
        return {
            "counters": {name: c.value for name, c in sorted(self.counters.items())},
            "gauges": {
                name: {"value": g.value, "max": g.max}
                for name, g in sorted(self.gauges.items())
            },
            "histograms": {
                name: h.to_dict() for name, h in sorted(self.histograms.items())
            },
        }


#: The installed registry, or ``None`` while metrics are disabled.
_ACTIVE: Optional[MetricsRegistry] = None


def active() -> Optional[MetricsRegistry]:
    """The installed registry, or ``None`` while metrics are disabled.

    Hot instrumentation sites call this once, keep the result in a
    local, and skip all recording when it is ``None`` -- the disabled
    path is one global read.
    """
    return _ACTIVE


def _activate(registry: Optional[MetricsRegistry]) -> None:
    """Install (or with ``None`` remove) the module-level registry."""
    global _ACTIVE
    _ACTIVE = registry
