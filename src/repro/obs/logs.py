"""Stdlib :mod:`logging` wiring for the ``repro`` package.

The package root logger (``logging.getLogger("repro")``) carries a
``NullHandler`` (installed by ``repro/__init__``), so library use emits
nothing unless the embedding application configures handlers -- the
standard library-package convention.  The CLI calls
:func:`configure_cli_logging` once at startup to route progress messages
to stderr, with ``-v``/``-q`` mapping to DEBUG/WARNING.

Campaign and scenario progress callbacks (``Callable[[str], None]``)
keep their plain-callable signature; :func:`progress_logger` adapts a
logger into one, so orchestration code stays decoupled from logging.
"""

from __future__ import annotations

import logging
import sys
from typing import Callable, Optional

#: Root logger name of the package.
ROOT_LOGGER = "repro"


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    ``get_logger("campaigns")`` and ``get_logger("repro.campaigns")``
    both return ``logging.getLogger("repro.campaigns")``.
    """
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def configure_cli_logging(
    verbose: int = 0, quiet: bool = False, stream=None
) -> logging.Handler:
    """Attach a stderr handler to the package root for CLI runs.

    ``quiet`` maps to WARNING (progress suppressed), the default to INFO
    (progress shown) and ``verbose >= 1`` to DEBUG.  The handler formats
    bare messages with the two-space indent the CLI has always used for
    progress lines, so output is unchanged for existing users.  Returns
    the installed handler (tests detach it again).
    """
    logger = logging.getLogger(ROOT_LOGGER)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter("  %(message)s"))
    logger.addHandler(handler)
    if quiet:
        logger.setLevel(logging.WARNING)
    elif verbose:
        logger.setLevel(logging.DEBUG)
    else:
        logger.setLevel(logging.INFO)
    return handler


def remove_cli_logging(handler: logging.Handler) -> None:
    """Detach a handler installed by :func:`configure_cli_logging`."""
    logger = logging.getLogger(ROOT_LOGGER)
    logger.removeHandler(handler)
    logger.setLevel(logging.NOTSET)


def progress_logger(
    logger: Optional[logging.Logger] = None,
) -> Callable[[str], None]:
    """Adapt a logger into a progress callback (INFO per message)."""
    target = logger if logger is not None else logging.getLogger(ROOT_LOGGER)

    def progress(message: str) -> None:
        """Log one progress message at INFO level."""
        target.info("%s", message)

    return progress
