"""Opt-in :mod:`cProfile` capture, shared by the CLI and the tracer.

One implementation of "profile this and report the top cumulative
entries" serves every consumer:

* the CLI ``--profile`` flag wraps a whole subcommand via
  :func:`profile_call`,
* an enabled tracer with ``profile=True`` wraps every *root* span via
  :func:`start_profiler` / :func:`stop_profiler` / :func:`render_profile`
  so each top-level phase (an admission, a shard, a scenario) gets its
  own breakdown.

Profiling is strictly opt-in -- nothing here runs unless requested, so
the zero-overhead guarantee of the disabled telemetry path is
unaffected.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Callable, Tuple, TypeVar

#: Number of entries a rendered profile reports (cumulative-time order).
PROFILE_TOP_ENTRIES = 25

T = TypeVar("T")


def start_profiler() -> cProfile.Profile:
    """Create and enable a new profiler (pair with :func:`stop_profiler`)."""
    profiler = cProfile.Profile()
    profiler.enable()
    return profiler


def stop_profiler(profiler: cProfile.Profile) -> cProfile.Profile:
    """Disable a running profiler and return it (ready for rendering)."""
    profiler.disable()
    return profiler


def render_profile(
    profiler: cProfile.Profile, top: int = PROFILE_TOP_ENTRIES
) -> str:
    """The *top* most expensive entries by cumulative time, as text."""
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    return buffer.getvalue()


def profile_call(fn: Callable[..., T], *args, **kwargs) -> Tuple[T, str]:
    """Run ``fn(*args, **kwargs)`` under a profiler.

    Returns ``(result, report)`` where *report* is the rendered top
    entries; the report is produced even when *fn* raises (the exception
    still propagates, so callers that want the partial profile catch it
    around this call).
    """
    profiler = start_profiler()
    try:
        result = fn(*args, **kwargs)
    finally:
        stop_profiler(profiler)
    return result, render_profile(profiler)
