"""Declarative telemetry selection (:class:`TelemetrySpec`).

The spec is the serialisable switchboard scenario files use to request
telemetry::

    {"platform": "rennes", ..., "telemetry": {"profile": true}}

Its presence in a :class:`~repro.scenarios.spec.ScenarioSpec` turns
capture on for that scenario's runs; the fields select which collectors
are live.  Like PR 5's arrivals section, the telemetry section only
extends the scenario content hash **when set**, so every existing spec
and store key is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.exceptions import ConfigurationError


def _check_known_keys(payload: Dict, allowed: Sequence[str], where: str) -> None:
    """Reject non-objects and unknown keys with an error naming the allowed ones."""
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"a {where} must be a JSON object, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise ConfigurationError(
            f"unknown key(s) {unknown} in {where}; allowed: {sorted(allowed)}"
        )


@dataclass(frozen=True)
class TelemetrySpec:
    """Which telemetry collectors a scenario run captures.

    Parameters
    ----------
    spans:
        Record hierarchical spans (the Chrome-trace timeline).
    metrics:
        Record counters / gauges / histograms (the ``repro-ptg
        metrics`` tables, notably ``stream.admission_latency``).
    profile:
        Run every root span under :mod:`cProfile` and keep the rendered
        top entries (expensive; off by default).
    """

    spans: bool = True
    metrics: bool = True
    profile: bool = False

    def __post_init__(self) -> None:
        """Validate the field values."""
        for name in ("spans", "metrics", "profile"):
            if not isinstance(getattr(self, name), bool):
                raise ConfigurationError(
                    f"telemetry {name} must be a boolean, got "
                    f"{getattr(self, name)!r}"
                )
        if not (self.spans or self.metrics or self.profile):
            raise ConfigurationError(
                "a telemetry spec must enable at least one collector "
                "(spans, metrics or profile); omit the section to disable "
                "telemetry entirely"
            )

    def to_dict(self) -> Dict:
        """Plain-JSON representation (inverse of :meth:`from_dict`)."""
        return {
            "spans": self.spans,
            "metrics": self.metrics,
            "profile": self.profile,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "TelemetrySpec":
        """Build a spec from a plain dict; unknown keys raise."""
        _check_known_keys(
            payload, ("spans", "metrics", "profile"), "telemetry spec"
        )
        return cls(**payload)

    def hash_payload(self) -> Dict:
        """The contribution to the scenario content hash (when set)."""
        return self.to_dict()
