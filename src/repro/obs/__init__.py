"""Observability for the scheduling pipeline: tracing, metrics, profiling.

``repro.obs`` is a self-contained subsystem (it imports nothing from the
scheduling packages, so every layer can import it freely):

* :mod:`repro.obs.trace` -- hierarchical spans with monotonic timing,
* :mod:`repro.obs.meters` -- counters, gauges, fixed-bucket histograms,
* :mod:`repro.obs.export` -- Chrome-trace JSON, Prometheus text, JSON
  summaries (persisted through the campaign store's generic channels),
* :mod:`repro.obs.profile` -- opt-in :mod:`cProfile` capture,
* :mod:`repro.obs.logs` -- stdlib :mod:`logging` wiring,
* :mod:`repro.obs.config` -- the serialisable :class:`TelemetrySpec`.

Telemetry is **off by default** and strictly observational: enabling it
never changes a schedule (``tests/test_obs_equivalence.py`` asserts
bit-identical results) and the disabled instrumentation path is a single
global read (gated at <= 3 % pipeline overhead by
``benchmarks/bench_obs_overhead.py``).

The session API is this module::

    from repro import obs

    with obs.capture() as telemetry:
        run_scenario(spec)
    summary = telemetry.summary()

:func:`capture` installs a :class:`Telemetry` session (a tracer and a
metrics registry) into the module-level slots the instrumentation sites
poll, and restores the previous state on exit -- captures nest, and
worker processes simply start their own.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional

from repro.obs import export, meters, trace
from repro.obs.config import TelemetrySpec
from repro.obs.export import (
    TELEMETRY_CHANNEL,
    aggregate_spans,
    chrome_trace,
    merge_metrics,
    prometheus_text,
    telemetry_summary,
    write_chrome_trace,
)
from repro.obs.logs import configure_cli_logging, get_logger, progress_logger
from repro.obs.meters import (
    DEFAULT_LATENCY_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import PROFILE_TOP_ENTRIES, profile_call
from repro.obs.trace import NOOP_SPAN, SpanRecord, Tracer, span

__all__ = [
    "TELEMETRY_CHANNEL",
    "NOOP_SPAN",
    "PROFILE_TOP_ENTRIES",
    "DEFAULT_LATENCY_EDGES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "Telemetry",
    "TelemetrySpec",
    "Tracer",
    "aggregate_spans",
    "capture",
    "chrome_trace",
    "configure_cli_logging",
    "current",
    "disable",
    "enable",
    "enabled",
    "get_logger",
    "merge_metrics",
    "profile_call",
    "progress_logger",
    "prometheus_text",
    "span",
    "telemetry_summary",
    "write_chrome_trace",
]


class Telemetry:
    """One capture session: a tracer and/or a metrics registry.

    Built by :func:`enable` / :func:`capture` from a
    :class:`TelemetrySpec`; holds whatever collectors the spec selected
    and renders them into the export formats once the session ends.
    """

    def __init__(
        self,
        spec: Optional[TelemetrySpec] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.spec = spec if spec is not None else TelemetrySpec()
        profiler_factory = None
        if self.spec.profile:
            from repro.obs.profile import start_profiler

            profiler_factory = start_profiler
        self.tracer: Optional[Tracer] = None
        if self.spec.spans or self.spec.profile:
            self.tracer = Tracer(clock=clock, profiler_factory=profiler_factory)
        self.registry: Optional[MetricsRegistry] = None
        if self.spec.metrics:
            self.registry = MetricsRegistry()

    @property
    def spans(self):
        """Completed spans of the session (empty without a tracer)."""
        return self.tracer.spans if self.tracer is not None else []

    def summary(self, labels: Optional[Dict[str, str]] = None) -> Dict:
        """The session as a plain-JSON telemetry summary document."""
        return telemetry_summary(
            self.spans,
            snapshot=self.registry.snapshot() if self.registry else None,
            profiles=self.tracer.profiles if self.tracer else None,
            labels=labels,
        )

    def chrome_trace(self) -> Dict:
        """The session's spans as a Chrome/Perfetto trace document."""
        return chrome_trace(self.spans)


#: The installed session, or ``None`` while telemetry is disabled.
_SESSION: Optional[Telemetry] = None


def current() -> Optional[Telemetry]:
    """The installed session, or ``None`` while telemetry is disabled."""
    return _SESSION


def enabled() -> bool:
    """True while a telemetry session is installed."""
    return _SESSION is not None


def enable(
    spec: Optional[TelemetrySpec] = None,
    clock: Optional[Callable[[], float]] = None,
) -> Telemetry:
    """Install a new telemetry session (pair with :func:`disable`).

    The session's tracer and registry land in the module-level slots the
    instrumentation sites poll (:func:`repro.obs.trace.span`,
    :func:`repro.obs.meters.active`); any previously installed session
    is replaced.  Prefer the :func:`capture` context manager, which
    restores the previous state automatically.
    """
    global _SESSION
    session = Telemetry(spec, clock=clock)
    _SESSION = session
    trace._activate(session.tracer)
    meters._activate(session.registry)
    return session


def disable() -> None:
    """Remove the installed telemetry session (instrumentation goes no-op)."""
    global _SESSION
    _SESSION = None
    trace._activate(None)
    meters._activate(None)


@contextmanager
def capture(
    spec: Optional[TelemetrySpec] = None,
    clock: Optional[Callable[[], float]] = None,
) -> Iterator[Telemetry]:
    """Context manager: enable telemetry, yield the session, restore.

    The previous session (usually none) is reinstated on exit, so
    captures nest and an exception cannot leave telemetry enabled.
    """
    global _SESSION
    previous = _SESSION
    session = enable(spec, clock=clock)
    try:
        yield session
    finally:
        if previous is None:
            disable()
        else:
            _SESSION = previous
            trace._activate(previous.tracer)
            meters._activate(previous.registry)
