"""Deterministic decomposition of a campaign into experiment shards.

A *shard* is the unit of fan-out of the campaign orchestrator: one
workload specification run on one platform with one set of constraint
strategies and one pipeline.  Shards are self-describing -- a worker
process can execute one from its fields alone (the workload is
regenerated from its seed, the strategies and the pipeline components
are rebuilt from their registry names) -- and carry a stable,
content-derived key so that a result store can recognise an
already-completed shard across interrupted and resumed runs.

The key is the **scenario content hash**: a shard built from a
:class:`~repro.scenarios.spec.ScenarioSpec`
(:func:`make_shards_from_specs`) has ``shard.key() ==
spec.content_hash()``, so campaign stores and scenario stores speak the
same key space.

:func:`make_shards` enumerates the shards of a
:class:`~repro.experiments.runner.CampaignConfig` in exactly the order
the serial :func:`~repro.experiments.runner.run_campaign` visits them
(workload-major, then platform), which keeps progress reporting and
result aggregation identical between the serial and parallel paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaigns.cache import content_digest, platform_fingerprint
from repro.experiments.runner import CampaignConfig
from repro.experiments.workload import WorkloadSpec, paper_workload_specs
from repro.obs.config import TelemetrySpec
from repro.platform.multicluster import MultiClusterPlatform
from repro.scenarios.registry import PLATFORMS
from repro.scenarios.spec import (
    PipelineSpec,
    SPEC_HASH_VERSION,
    ScenarioSpec,
    scenario_hash_payload,
)

#: Version stamp of the shard-key scheme.  Bump when the key payload
#: changes so stale stores are not silently misinterpreted.  Version 2
#: unified shard keys with scenario content hashes (the payload now
#: includes the pipeline); it is the same constant as
#: :data:`repro.scenarios.spec.SPEC_HASH_VERSION`.
SHARD_KEY_VERSION = SPEC_HASH_VERSION


@dataclass(frozen=True)
class ExperimentShard:
    """One self-describing unit of campaign work.

    Attributes
    ----------
    index:
        Position of the shard in campaign order (used to reassemble
        results in the serial runner's order).
    spec:
        The workload specification; the worker regenerates the PTGs from
        its seed, so the shard stays small and picklable.
    platform:
        The target platform.
    strategy_names:
        Registry names of the strategies to compare; the worker rebuilds
        the instances with the family-specific paper parameters.
    pipeline:
        The pipeline (allocator / mapper / packing / mu, all by registry
        name); the worker rebuilds the component instances.
    telemetry:
        Optional :class:`~repro.obs.config.TelemetrySpec`; when set, the
        worker captures telemetry around the shard and ships the summary
        back in its :class:`~repro.campaigns.pool.ShardOutcome`.
    """

    index: int
    spec: WorkloadSpec
    platform: MultiClusterPlatform
    strategy_names: Tuple[str, ...]
    pipeline: PipelineSpec = field(default_factory=PipelineSpec)
    telemetry: Optional[TelemetrySpec] = None

    def label(self) -> str:
        """Readable identifier used in progress reports and logs.

        Includes the pipeline, so the shards of a pipeline-only sweep
        (same workload and platform, different allocator/mapper/packing
        /mu) stay distinguishable in progress output and failure
        summaries.
        """
        return f"{self.spec.label()} on {self.platform.name} [{self.pipeline.label()}]"

    def key_payload(self) -> Dict:
        """The content from which the shard key is derived.

        This is :func:`repro.scenarios.spec.scenario_hash_payload` --
        the same payload scenario content hashes digest -- with the
        platform described by its content fingerprint.
        """
        return scenario_hash_payload(
            family=self.spec.family,
            n_ptgs=self.spec.n_ptgs,
            seed=self.spec.seed,
            max_tasks=self.spec.max_tasks,
            platform_fp=platform_fingerprint(self.platform),
            strategy_names=self.strategy_names,
            pipeline=self.pipeline,
            telemetry=self.telemetry,
        )

    def key(self) -> str:
        """Stable content-derived key of the shard.

        Two shards share a key exactly when they describe the same
        computation: same workload content (family, size, seed, caps),
        same platform content, same strategy set and same pipeline.
        The key is independent of process, ordering and platform
        *object* identity, so it survives interruption and resumption
        -- and it equals the :meth:`ScenarioSpec.content_hash` of the
        scenario describing the same computation.
        """
        return content_digest(self.key_payload())

    @classmethod
    def from_scenario(cls, scenario: ScenarioSpec, index: int = 0) -> "ExperimentShard":
        """Expand one scenario spec into its (single) shard.

        Streaming scenarios (an ``arrivals`` section) are rejected: they
        shard as whole scenario specs through
        :func:`repro.streaming.run.run_stream_scenarios`, not as batch
        experiment shards.
        """
        if scenario.is_streaming:
            from repro.exceptions import ConfigurationError

            raise ConfigurationError(
                f"streaming scenario {scenario.label()!r} cannot become a "
                f"batch experiment shard; run it with "
                f"repro.streaming.run_stream_scenarios"
            )
        if scenario.faults is not None:
            from repro.exceptions import ConfigurationError

            raise ConfigurationError(
                f"scenario {scenario.label()!r} carries a faults section; "
                f"fault injection runs on the streaming path, not as a "
                f"batch experiment shard"
            )
        return cls(
            index=index,
            spec=scenario.workload.to_workload_spec(),
            platform=PLATFORMS.create(scenario.platform),
            strategy_names=scenario.resolved_strategy_names(),
            pipeline=scenario.pipeline,
            telemetry=scenario.telemetry,
        )


def make_shards(config: CampaignConfig) -> List[ExperimentShard]:
    """Split *config* into its experiment shards, in campaign order."""
    platforms = config.resolved_platforms()
    strategy_names = tuple(s.name for s in config.resolved_strategies())
    pipeline = config.resolved_pipeline()
    specs = paper_workload_specs(
        config.family,
        ptg_counts=config.ptg_counts,
        workloads_per_point=config.workloads_per_point,
        base_seed=config.base_seed,
        max_tasks=config.max_tasks,
    )
    shards: List[ExperimentShard] = []
    for spec in specs:
        for platform in platforms:
            shards.append(
                ExperimentShard(
                    index=len(shards),
                    spec=spec,
                    platform=platform,
                    strategy_names=strategy_names,
                    pipeline=pipeline,
                )
            )
    return shards


def make_shards_from_specs(specs: Sequence[ScenarioSpec]) -> List[ExperimentShard]:
    """Expand scenario specs into shards, in input order.

    This is how :func:`repro.scenarios.run.run_scenarios` feeds a sweep
    into the campaign pool; ``shard.key() == spec.content_hash()``
    holds for every pair.
    """
    return [
        ExperimentShard.from_scenario(spec, index=index)
        for index, spec in enumerate(specs)
    ]


def campaign_signature(shards: List[ExperimentShard]) -> str:
    """Content digest of a whole campaign (the ordered list of shard keys).

    Stored in the result store's metadata so a resumed run can verify it
    is continuing the *same* campaign and not silently mixing configs.
    """
    return content_digest([shard.key() for shard in shards])
