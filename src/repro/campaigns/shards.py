"""Deterministic decomposition of a campaign into experiment shards.

A *shard* is the unit of fan-out of the campaign orchestrator: one
workload specification run on one platform with one set of constraint
strategies.  Shards are self-describing -- a worker process can execute
one from its fields alone (the workload is regenerated from its seed,
the strategies are rebuilt from their registry names) -- and carry a
stable, content-derived key so that a result store can recognise an
already-completed shard across interrupted and resumed runs.

:func:`make_shards` enumerates the shards of a
:class:`~repro.experiments.runner.CampaignConfig` in exactly the order
the serial :func:`~repro.experiments.runner.run_campaign` visits them
(workload-major, then platform), which keeps progress reporting and
result aggregation identical between the serial and parallel paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.campaigns.cache import content_digest, platform_fingerprint
from repro.experiments.runner import CampaignConfig
from repro.experiments.workload import WorkloadSpec, paper_workload_specs
from repro.platform.multicluster import MultiClusterPlatform

#: Version stamp of the shard-key scheme.  Bump when the key payload
#: changes so stale stores are not silently misinterpreted.
SHARD_KEY_VERSION = 1


@dataclass(frozen=True)
class ExperimentShard:
    """One self-describing unit of campaign work.

    Attributes
    ----------
    index:
        Position of the shard in campaign order (used to reassemble
        results in the serial runner's order).
    spec:
        The workload specification; the worker regenerates the PTGs from
        its seed, so the shard stays small and picklable.
    platform:
        The target platform.
    strategy_names:
        Registry names of the strategies to compare; the worker rebuilds
        the instances with the family-specific paper parameters.
    """

    index: int
    spec: WorkloadSpec
    platform: MultiClusterPlatform
    strategy_names: Tuple[str, ...]

    def label(self) -> str:
        """Readable identifier used in progress reports and logs."""
        return f"{self.spec.label()} on {self.platform.name}"

    def key_payload(self) -> Dict:
        """The content from which the shard key is derived."""
        return {
            "version": SHARD_KEY_VERSION,
            "workload": {
                "family": self.spec.family,
                "n_ptgs": self.spec.n_ptgs,
                "seed": self.spec.seed,
                "max_tasks": self.spec.max_tasks,
            },
            "platform": platform_fingerprint(self.platform),
            "strategies": list(self.strategy_names),
        }

    def key(self) -> str:
        """Stable content-derived key of the shard.

        Two shards share a key exactly when they describe the same
        computation: same workload content (family, size, seed, caps),
        same platform content and same strategy set.  The key is
        independent of process, ordering and platform *object* identity,
        so it survives interruption and resumption.
        """
        return content_digest(self.key_payload())


def make_shards(config: CampaignConfig) -> List[ExperimentShard]:
    """Split *config* into its experiment shards, in campaign order."""
    platforms = config.resolved_platforms()
    strategy_names = tuple(s.name for s in config.resolved_strategies())
    specs = paper_workload_specs(
        config.family,
        ptg_counts=config.ptg_counts,
        workloads_per_point=config.workloads_per_point,
        base_seed=config.base_seed,
        max_tasks=config.max_tasks,
    )
    shards: List[ExperimentShard] = []
    for spec in specs:
        for platform in platforms:
            shards.append(
                ExperimentShard(
                    index=len(shards),
                    spec=spec,
                    platform=platform,
                    strategy_names=strategy_names,
                )
            )
    return shards


def campaign_signature(shards: List[ExperimentShard]) -> str:
    """Content digest of a whole campaign (the ordered list of shard keys).

    Stored in the result store's metadata so a resumed run can verify it
    is continuing the *same* campaign and not silently mixing configs.
    """
    return content_digest([shard.key() for shard in shards])
