"""Memory-bounded streaming aggregation of stored campaign results.

:class:`~repro.experiments.runner.CampaignResult` aggregates a list of
in-memory experiments; re-creating that list from a 50k-row store just
to average three columns is exactly the full-load this module removes.
:func:`summarize_store` streams the ``results`` channel -- columnar
segments plus WAL tail when compacted, plain JSONL otherwise -- and
folds each row into running ``(sum, count)`` accumulators per
``(PTG count, strategy)`` cell, so peak memory is bounded by one
segment plus the accumulator table, never by the store.

The arithmetic mirrors the in-memory aggregation *operation for
operation* (same linear sums, same division at the end, same
per-experiment relative-makespan normalisation), so a summary computed
from a store whose rows were appended in shard order is bit-identical
to ``CampaignResult`` over the same experiments.  Duplicate keys keep
the store's last-record-wins semantics via a key-only pre-scan: the
winning occurrence of every key is determined before any payload is
aggregated.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.campaigns.store import CampaignStore
from repro.exceptions import CampaignError


class StreamingAggregate:
    """Running per-``(n_ptgs, strategy)`` sums over experiment payloads.

    Feed raw ``results``-channel payload dicts to :meth:`add` (no
    :class:`~repro.experiments.runner.ExperimentResult` is ever built)
    and read the three paper aggregates off the accumulators at the
    end.  Strategy order is first-seen, PTG counts are sorted --
    matching ``CampaignResult.strategy_names`` / ``ptg_counts``.
    """

    def __init__(self) -> None:
        """Create an empty aggregate."""
        self.experiments = 0
        self._strategies: Dict[str, None] = {}
        self._cells: Dict[Tuple[int, str], Dict[str, float]] = {}
        self._counts: Dict[int, int] = {}

    def add(self, payload: Dict) -> None:
        """Fold one experiment payload into the accumulators."""
        try:
            n_ptgs = int(payload["n_ptgs"])
            outcomes = payload["outcomes"]
        except (KeyError, TypeError):
            raise CampaignError(
                "experiment payload misses 'n_ptgs' or 'outcomes'"
            ) from None
        known = {
            name for (count, name) in self._cells if count == n_ptgs
        }
        if known and known != set(outcomes):
            raise CampaignError(
                "every experiment must report the same strategies; "
                f"expected {sorted(known)}, got {sorted(outcomes)}"
            )
        self.experiments += 1
        self._counts[n_ptgs] = self._counts.get(n_ptgs, 0) + 1
        best = min(
            float(outcome["batch_makespan"]) for outcome in outcomes.values()
        )
        for name, outcome in outcomes.items():
            self._strategies.setdefault(name, None)
            cell = self._cells.setdefault(
                (n_ptgs, name),
                {"unfairness": 0.0, "relative": 0.0, "mean_makespan": 0.0},
            )
            cell["unfairness"] += float(outcome["unfairness"])
            cell["relative"] += float(outcome["batch_makespan"]) / best
            cell["mean_makespan"] += float(outcome["mean_application_makespan"])

    # -- results ------------------------------------------------------- #
    def strategy_names(self) -> List[str]:
        """Strategies seen so far, in first-seen order."""
        return list(self._strategies)

    def ptg_counts(self) -> List[int]:
        """PTG counts seen so far, sorted."""
        return sorted(self._counts)

    def _series(self, field: str) -> Dict[str, List[float]]:
        counts = self.ptg_counts()
        result: Dict[str, List[float]] = {}
        for name in self.strategy_names():
            series = []
            for count in counts:
                cell = self._cells.get((count, name))
                if cell is None:
                    raise CampaignError(
                        f"strategy {name!r} has no experiment at {count} PTGs"
                    )
                series.append(cell[field] / self._counts[count])
            result[name] = series
        return result

    def average_unfairness(self) -> Dict[str, List[float]]:
        """Strategy -> unfairness averaged per PTG count (paper Fig. 3)."""
        return self._series("unfairness")

    def average_relative_makespan(self) -> Dict[str, List[float]]:
        """Strategy -> average relative batch makespan per PTG count."""
        return self._series("relative")

    def average_mean_application_makespan(self) -> Dict[str, List[float]]:
        """Strategy -> average of the mean per-application makespan."""
        return self._series("mean_makespan")

    def summary(self) -> Dict:
        """All aggregates in one JSON-friendly document."""
        return {
            "experiments": self.experiments,
            "ptg_counts": self.ptg_counts(),
            "strategies": self.strategy_names(),
            "average_unfairness": self.average_unfairness(),
            "average_relative_makespan": self.average_relative_makespan(),
            "average_mean_application_makespan":
                self.average_mean_application_makespan(),
        }


def _winning_occurrences(store: CampaignStore, channel: str) -> Dict[str, int]:
    """Index of the last occurrence of every key (key-only scan)."""
    winners: Dict[str, int] = {}
    for index, key in enumerate(store.iter_keys(channel)):
        winners[key] = index
    return winners


def summarize_store(store, channel: str = "results") -> Dict:
    """Aggregate a stored campaign without materialising it.

    *store* is a :class:`CampaignStore` or its root path.  Rows stream
    from the columnar segments (plus WAL tail) when the channel has
    been compacted, from the JSONL otherwise; either source yields
    bit-identical payloads, so the summary does not depend on whether
    (or when) ``repro store compact`` ran.
    """
    store = store if isinstance(store, CampaignStore) else CampaignStore(store)
    winners = _winning_occurrences(store, channel)
    aggregate = StreamingAggregate()
    view = store._column_view(channel)
    rows = view.iter_rows() if view is not None else store.iter_payloads(channel)
    for index, (key, payload) in enumerate(rows):
        if winners.get(key) == index:
            aggregate.add(payload)
    return aggregate.summary()
