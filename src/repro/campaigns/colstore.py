"""Columnar segment backend of the campaign store.

The JSONL channels of :class:`~repro.campaigns.store.CampaignStore` are
perfect *write* paths -- append-only, crash-safe, one fsynced line per
record -- but poor *read* paths at fleet scale: re-assembling a 50k-row
campaign means JSON-decoding 50k nested documents even when the reader
only wants three float columns.  This module treats the JSONL channel
as a **write-ahead log** and compacts it, in bounded batches, into
columnar *segments*::

    <store root>/colstore/
        state.json                 -- WAL offset + ordered segment list
        segments/seg-000001/
            skeleton.jsonl         -- one line per row: key + payload
                                      with float leaves nulled out
            col-000.npz            -- one file per column group (the
                                      payload's top-level field): packed
                                      float64 values + int64 row ids +
                                      path-vocabulary ids
            footer.json            -- row count, key index, group map

The split is by *type*, not by field: every ``float`` leaf of a payload
moves into the packed arrays of its top-level column group (numpy
``float64`` round-trips Python floats bit-identically), while the
structural skeleton -- dict shape, strings, ints, bools, ``None``,
empty containers -- stays as one small JSON line.  Reconstruction walks
the recorded ``(row, path, value)`` triples back into the skeleton, so
``rows_by_key`` is *bit-identical* to the JSONL it compacted.

Compaction is crash-safe the same way the WAL is: a segment directory
is built under a temporary name and renamed into place, ``state.json``
is replaced atomically after every batch, a partially-written trailing
WAL line is never consumed, and re-running ``compact`` is idempotent.
Readers see segments first and the WAL tail (everything past the
compacted offset) second, preserving the channels' last-record-wins
semantics.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.campaigns.store import (
    SUPPORTED_FORMAT_VERSIONS,
    CampaignStore,
)
from repro.exceptions import CampaignError

#: Sub-directory of the store root holding the columnar backend.
COLSTORE_DIRNAME = "colstore"
#: Sub-directory of the colstore holding the segments.
SEGMENTS_DIRNAME = "segments"
#: The atomically-replaced compaction state file.
STATE_FILENAME = "state.json"
#: Version stamp of the segment layout.
COLSTORE_FORMAT_VERSION = 1
#: Default rows per segment; bounds compaction (and read) memory.
DEFAULT_BATCH_SIZE = 1000

_SKELETON_FILENAME = "skeleton.jsonl"
_FOOTER_FILENAME = "footer.json"


# ---------------------------------------------------------------------- #
# payload <-> skeleton + float columns
# ---------------------------------------------------------------------- #
def split_payload(payload: Any) -> Tuple[Any, List[Tuple[Tuple, float]]]:
    """Separate a payload into its skeleton and its float leaves.

    Returns ``(skeleton, leaves)`` where every ``float`` leaf of
    *payload* is replaced by ``None`` in the skeleton and listed in
    *leaves* as ``(path, value)`` -- *path* being the tuple of dict keys
    and list indices leading to it.  Everything else (ints, bools,
    strings, ``None``, container shapes) stays in the skeleton.

    >>> skeleton, leaves = split_payload({"n": 3, "m": {"a": 1.5}})
    >>> skeleton
    {'n': 3, 'm': {'a': None}}
    >>> leaves
    [(('m', 'a'), 1.5)]
    """
    leaves: List[Tuple[Tuple, float]] = []

    def walk(node: Any, path: Tuple) -> Any:
        if isinstance(node, bool):  # bool is an int subtype: keep inline
            return node
        if isinstance(node, float):
            leaves.append((path, node))
            return None
        if isinstance(node, dict):
            return {key: walk(value, path + (key,)) for key, value in node.items()}
        if isinstance(node, list):
            return [walk(value, path + (index,)) for index, value in enumerate(node)]
        return node

    return walk(payload, ()), leaves


def merge_payload(skeleton: Any, leaves: List[Tuple[Tuple, float]]) -> Any:
    """Reinsert float *leaves* into a :func:`split_payload` skeleton.

    The skeleton is modified in place (its ``None`` placeholders are
    overwritten) and returned.  Genuine ``None`` values survive: they
    have no leaf entry, so nothing ever touches them.
    """
    for path, value in leaves:
        if not path:
            return value  # the whole payload was one float
        node = skeleton
        for component in path[:-1]:
            node = node[component]
        node[path[-1]] = value
    return skeleton


def _group_of(path: Tuple) -> str:
    """The column group of one float path: its first component."""
    if path and isinstance(path[0], str):
        return path[0]
    return ""


# ---------------------------------------------------------------------- #
# segments
# ---------------------------------------------------------------------- #
def _write_segment(directory: Path, rows: List[Tuple[str, Any]]) -> None:
    """Materialise one segment from ``(key, payload)`` rows.

    The segment is built under a temporary sibling name and renamed into
    *directory* atomically, so readers never observe a half-written
    segment and a crash leaves only an orphan temporary directory that
    the next compaction overwrites.
    """
    tmp = directory.parent / f".{directory.name}.tmp-{os.getpid()}"
    if tmp.exists():  # pragma: no cover - leftover of a crashed run
        shutil.rmtree(tmp)
    tmp.mkdir(parents=True)
    groups: Dict[str, Dict[str, List]] = {}
    keys: List[str] = []
    with open(tmp / _SKELETON_FILENAME, "w", encoding="utf-8") as handle:
        for row, (key, payload) in enumerate(rows):
            keys.append(key)
            skeleton, leaves = split_payload(payload)
            handle.write(
                json.dumps({"key": key, "skeleton": skeleton}, sort_keys=True)
                + "\n"
            )
            for path, value in leaves:
                group = groups.setdefault(
                    _group_of(path), {"rows": [], "paths": [], "values": [],
                                      "vocab": [], "vocab_index": {}}
                )
                encoded = json.dumps(list(path))
                path_id = group["vocab_index"].get(encoded)
                if path_id is None:
                    path_id = len(group["vocab"])
                    group["vocab_index"][encoded] = path_id
                    group["vocab"].append(encoded)
                group["rows"].append(row)
                group["paths"].append(path_id)
                group["values"].append(value)
    footer_groups: Dict[str, Dict] = {}
    for index, (name, group) in enumerate(sorted(groups.items())):
        filename = f"col-{index:03d}.npz"
        np.savez(
            tmp / filename,
            rows=np.asarray(group["rows"], dtype=np.int64),
            paths=np.asarray(group["paths"], dtype=np.int64),
            values=np.asarray(group["values"], dtype=np.float64),
        )
        footer_groups[name] = {"file": filename, "paths": group["vocab"]}
    footer = {
        "format_version": COLSTORE_FORMAT_VERSION,
        "rows": len(rows),
        "keys": keys,
        "groups": footer_groups,
    }
    with open(tmp / _FOOTER_FILENAME, "w", encoding="utf-8") as handle:
        json.dump(footer, handle, sort_keys=True)
    os.replace(tmp, directory)


class Segment:
    """One immutable columnar segment of a compacted channel."""

    def __init__(self, directory) -> None:
        """Open the segment at *directory* (reads only the footer)."""
        self.directory = Path(directory)
        try:
            with open(self.directory / _FOOTER_FILENAME, encoding="utf-8") as handle:
                self.footer = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise CampaignError(
                f"unreadable segment footer in {self.directory}: {exc}"
            ) from None
        version = self.footer.get("format_version")
        if version != COLSTORE_FORMAT_VERSION:
            raise CampaignError(
                f"{self.directory}: unsupported segment format version {version!r}"
            )

    @property
    def rows(self) -> int:
        """Number of rows in the segment."""
        return int(self.footer["rows"])

    def keys(self) -> List[str]:
        """Record keys of the segment, in row order (footer only, no I/O)."""
        return [str(key) for key in self.footer["keys"]]

    def _leaves_by_row(self) -> Dict[int, List[Tuple[Tuple, float]]]:
        """Float leaves of every row, decoded from the column groups."""
        by_row: Dict[int, List[Tuple[Tuple, float]]] = {}
        for group in self.footer["groups"].values():
            vocab = [tuple(json.loads(encoded)) for encoded in group["paths"]]
            with np.load(self.directory / group["file"]) as arrays:
                rows = arrays["rows"]
                paths = arrays["paths"]
                values = arrays["values"]
                for row, path_id, value in zip(rows, paths, values):
                    by_row.setdefault(int(row), []).append(
                        (vocab[int(path_id)], float(value))
                    )
        return by_row

    def iter_rows(self) -> Iterator[Tuple[str, Any]]:
        """Yield ``(key, payload)`` rows, reconstructed bit-identically.

        Memory is bounded by the segment's own size (compaction batches
        are bounded), never by the whole channel.
        """
        leaves = self._leaves_by_row()
        with open(self.directory / _SKELETON_FILENAME, encoding="utf-8") as handle:
            for row, line in enumerate(handle):
                record = json.loads(line)
                payload = merge_payload(record["skeleton"], leaves.get(row, []))
                yield str(record["key"]), payload


# ---------------------------------------------------------------------- #
# the columnar view of one channel
# ---------------------------------------------------------------------- #
class ColumnStore:
    """Columnar (segments + WAL tail) view of one store channel.

    The view is purely additive: the JSONL channel stays the write path
    and the durable source of truth; :meth:`compact` folds its settled
    prefix into segments, and every reader merges segments with the WAL
    tail so compaction can run at any time -- including concurrently
    with an appending campaign.
    """

    def __init__(self, store, channel: str = "results") -> None:
        """Bind to *store* (a :class:`CampaignStore` or its root path)."""
        self.store = store if isinstance(store, CampaignStore) else CampaignStore(store)
        self.channel = channel
        self.store.channel_path(channel)  # validate the channel name

    # -- layout -------------------------------------------------------- #
    @property
    def root(self) -> Path:
        """Root directory of the columnar backend for this channel."""
        base = self.store.root / COLSTORE_DIRNAME
        return base if self.channel == "results" else base / self.channel

    @property
    def segments_dir(self) -> Path:
        """Directory holding the segments."""
        return self.root / SEGMENTS_DIRNAME

    @property
    def state_path(self) -> Path:
        """Path of the compaction state file."""
        return self.root / STATE_FILENAME

    # -- state --------------------------------------------------------- #
    def load_state(self) -> Dict:
        """The compaction state (a fresh default when never compacted)."""
        try:
            with open(self.state_path, encoding="utf-8") as handle:
                state = json.load(handle)
        except OSError:
            return {
                "format_version": COLSTORE_FORMAT_VERSION,
                "channel": self.channel,
                "wal_offset": 0,
                "wal_lines": 0,
                "segment_seq": 0,
                "segments": [],
            }
        except json.JSONDecodeError as exc:
            raise CampaignError(
                f"corrupt colstore state {self.state_path}: {exc}"
            ) from None
        if state.get("format_version") != COLSTORE_FORMAT_VERSION:
            raise CampaignError(
                f"{self.state_path}: unsupported colstore format "
                f"version {state.get('format_version')!r}"
            )
        return state

    def _write_state(self, state: Dict) -> None:
        """Replace the state file atomically."""
        tmp = self.state_path.with_name(f".{STATE_FILENAME}.tmp-{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(state, handle, indent=2, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.state_path)

    # -- compaction ---------------------------------------------------- #
    def compact(
        self,
        batch_size: int = DEFAULT_BATCH_SIZE,
        max_batches: Optional[int] = None,
    ) -> Dict:
        """Fold settled WAL records into segments, in bounded batches.

        At most *batch_size* rows are held in memory at a time; each
        full batch becomes one segment and advances the durable WAL
        offset, so an interrupted compaction loses at most the batch in
        flight (which the next run simply redoes).  *max_batches* bounds
        one invocation (``None``: drain the settled WAL entirely).  The
        partial trailing line of a mid-append crash is never consumed.

        Returns a report dict (``segments_written``, ``rows_compacted``,
        ``wal_offset``).
        """
        if batch_size < 1:
            raise CampaignError(f"batch_size must be at least 1, got {batch_size}")
        state = self.load_state()
        report = {"segments_written": 0, "rows_compacted": 0}
        wal = self.store.channel_path(self.channel)
        if not wal.exists():
            return {**report, "wal_offset": state["wal_offset"]}
        self.segments_dir.mkdir(parents=True, exist_ok=True)

        def flush(batch: List[Tuple[str, Any]], consumed: int, lines: int) -> None:
            if batch:
                state["segment_seq"] += 1
                name = f"seg-{state['segment_seq']:06d}"
                _write_segment(self.segments_dir / name, batch)
                state["segments"].append(name)
                report["segments_written"] += 1
                report["rows_compacted"] += len(batch)
            state["wal_offset"] += consumed
            state["wal_lines"] += lines
            self._write_state(state)

        with open(wal, "rb") as handle:
            handle.seek(state["wal_offset"])
            batch: List[Tuple[str, Any]] = []
            consumed = 0
            lines = 0
            while max_batches is None or report["segments_written"] < max_batches:
                raw = handle.readline()
                if not raw.endswith(b"\n"):
                    break  # EOF, or a partial line still being written
                consumed += len(raw)
                lines += 1
                record = _parse_wal_line(
                    raw, wal, state["wal_lines"] + lines
                )
                if record is not None:
                    batch.append(record)
                if len(batch) >= batch_size:
                    flush(batch, consumed, lines)
                    batch, consumed, lines = [], 0, 0
            if batch or consumed:
                flush(batch, consumed, lines)
        return {**report, "wal_offset": state["wal_offset"]}

    # -- reading ------------------------------------------------------- #
    def segments(self) -> List[Segment]:
        """The committed segments, in compaction order."""
        state = self.load_state()
        return [Segment(self.segments_dir / name) for name in state["segments"]]

    def _iter_wal_tail(self, state: Dict) -> Iterator[Tuple[str, Any]]:
        """Records appended after the compacted offset, streaming."""
        wal = self.store.channel_path(self.channel)
        if not wal.exists():
            return
        with open(wal, "rb") as handle:
            handle.seek(state["wal_offset"])
            lineno = state["wal_lines"]
            while True:
                raw = handle.readline()
                if not raw.endswith(b"\n"):
                    return
                lineno += 1
                record = _parse_wal_line(raw, wal, lineno)
                if record is not None:
                    yield record

    def iter_rows(self) -> Iterator[Tuple[str, Any]]:
        """Yield every ``(key, payload)``: segments first, WAL tail second.

        Rows stream in durable order (compaction preserved append
        order), so dict-building readers keep the channels'
        last-record-wins semantics; memory stays bounded by one segment.
        """
        state = self.load_state()
        for name in state["segments"]:
            segment = Segment(self.segments_dir / name)
            for key, payload in segment.iter_rows():
                yield key, payload
        for key, payload in self._iter_wal_tail(state):
            yield key, payload

    def rows_by_key(self) -> Dict[str, Any]:
        """All payloads keyed by record key (last record wins)."""
        return {key: payload for key, payload in self.iter_rows()}

    def iter_keys(self) -> Iterator[str]:
        """Yield every record key in durable order, without payloads.

        Segment footers index their keys directly (no column or
        skeleton I/O), and the WAL tail scan discards payloads without
        building domain objects -- the resume fast path.
        """
        state = self.load_state()
        for name in state["segments"]:
            for key in Segment(self.segments_dir / name).keys():
                yield key
        for key, _ in self._iter_wal_tail(state):
            yield key

    def completed_keys(self) -> Set[str]:
        """Keys present in the channel (footers + WAL tail, no payloads)."""
        return set(self.iter_keys())

    def stat(self) -> Dict:
        """A summary of the columnar view (for ``repro store stat``)."""
        state = self.load_state()
        wal = self.store.channel_path(self.channel)
        wal_size = wal.stat().st_size if wal.exists() else 0
        segment_rows = 0
        segment_bytes = 0
        for name in state["segments"]:
            segment = Segment(self.segments_dir / name)
            segment_rows += segment.rows
            segment_bytes += sum(
                entry.stat().st_size
                for entry in (self.segments_dir / name).iterdir()
            )
        pending = sum(1 for _ in self._iter_wal_tail(state))
        return {
            "channel": self.channel,
            "segments": len(state["segments"]),
            "segment_rows": segment_rows,
            "segment_bytes": segment_bytes,
            "wal_bytes": wal_size,
            "wal_compacted_bytes": state["wal_offset"],
            "wal_pending_records": pending,
        }


def _parse_wal_line(raw: bytes, path: Path, lineno: int) -> Optional[Tuple[str, Any]]:
    """Parse one complete WAL line into ``(key, payload)``.

    Unparsable lines are crash artefacts and yield ``None`` (the same
    self-healing rule as :meth:`CampaignStore.iter_payloads`); a parsable
    record with an unsupported format version still raises.
    """
    line = raw.decode("utf-8", errors="replace").strip()
    if not line:
        return None
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return None
    if record.get("format_version") not in SUPPORTED_FORMAT_VERSIONS:
        raise CampaignError(
            f"{path}:{lineno}: unsupported format "
            f"version {record.get('format_version')!r}"
        )
    if "payload" in record:
        payload = record["payload"]
    else:
        payload = record.get("result")
    return str(record["key"]), payload
