"""Campaign orchestration: fan out, persist, resume, re-aggregate.

:func:`run_campaign_parallel` is the parallel, persistent counterpart of
the serial :func:`repro.experiments.runner.run_campaign`:

1. the campaign is split into deterministic shards
   (:func:`repro.campaigns.shards.make_shards`),
2. shards whose key is already present in the result store are skipped
   (resume-after-interrupt; the check is a key-only scan, no result is
   deserialised),
3. the remaining shards are handed to a pluggable *executor*
   (:data:`repro.scenarios.registry.EXECUTORS`: ``serial`` /
   ``process-pool`` / ``local-cluster``), each completed shard being
   appended to the store -- results, archived workload and own-makespan
   cache -- the moment it arrives,
4. the :class:`~repro.experiments.runner.CampaignResult` is re-assembled
   from the store in campaign order, so ``average_unfairness()`` and
   ``average_relative_makespan()`` aggregate exactly as the serial
   runner's in-memory result does.

Because shards are seeded deterministically and results round-trip
exactly through JSON, a parallel run, a serial run and a resumed run of
the same :class:`~repro.experiments.runner.CampaignConfig` produce
bit-identical aggregates.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.campaigns.pool import RetryPolicy, default_jobs
from repro.campaigns.shards import ExperimentShard, campaign_signature, make_shards
from repro.campaigns.store import CampaignStore
from repro.exec.base import ExecutionPolicy, Executor
from repro.exceptions import CampaignError
from repro.experiments.runner import (
    CampaignConfig,
    CampaignResult,
    ExperimentResult,
    ProgressCallback,
)
from repro.obs import meters
from repro.obs.logs import get_logger

_LOG = get_logger("campaigns.orchestrator")

#: Version stamp of the store metadata document.
META_FORMAT_VERSION = 1

#: Store channel recording shards that kept failing after their retries.
QUARANTINE_CHANNEL = "quarantine"


@dataclass
class CampaignRunStats:
    """Bookkeeping of one orchestrated campaign run."""

    total_shards: int = 0
    skipped_shards: int = 0
    executed_shards: int = 0
    failed_shards: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    executed_seconds: float = 0.0
    failures: Dict[str, str] = field(default_factory=dict)
    #: Labels of the shards written to the store's quarantine channel.
    quarantined: List[str] = field(default_factory=list)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of own-makespan lookups served from the cache."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0


@dataclass
class CampaignRun:
    """Result + statistics of one orchestrated campaign run."""

    result: CampaignResult
    stats: CampaignRunStats


def _campaign_meta(config: CampaignConfig, shards: List[ExperimentShard]) -> Dict:
    return {
        "format_version": META_FORMAT_VERSION,
        "signature": campaign_signature(shards),
        "family": config.family,
        "ptg_counts": list(config.ptg_counts),
        "workloads_per_point": config.workloads_per_point,
        "base_seed": config.base_seed,
        "max_tasks": config.max_tasks,
        "platforms": [p.name for p in config.resolved_platforms()],
        "strategies": [s.name for s in config.resolved_strategies()],
        "pipeline": config.resolved_pipeline().to_dict(),
        "total_shards": len(shards),
    }


def _check_store(
    store: CampaignStore,
    config: CampaignConfig,
    shards: List[ExperimentShard],
    resume: bool,
    completed: int,
) -> None:
    meta = store.read_meta()
    if meta is not None:
        signature = campaign_signature(shards)
        if meta.get("signature") != signature:
            raise CampaignError(
                f"store {store.root} belongs to a different campaign "
                f"(stored signature {meta.get('signature')!r}, this campaign "
                f"{signature!r}); refusing to mix results"
            )
    if completed and not resume:
        raise CampaignError(
            f"store {store.root} already holds {completed} result(s); pass "
            f"resume=True (--resume) to continue it or point at a fresh directory"
        )
    if meta is None:
        store.write_meta(_campaign_meta(config, shards))


def _resolve_executor(executor: Optional[Union[str, Executor]]) -> Executor:
    """An executor instance from a registry name (default: process-pool)."""
    if executor is None:
        executor = "process-pool"
    if isinstance(executor, str):
        from repro.scenarios.registry import EXECUTORS

        return EXECUTORS.create(executor)
    return executor


def orchestrate(
    config: CampaignConfig,
    store: Optional[Union[CampaignStore, str]] = None,
    jobs: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    resume: bool = True,
    archive_workloads: bool = True,
    retry: Optional[RetryPolicy] = None,
    executor: Optional[Union[str, Executor]] = None,
    policy: Optional[ExecutionPolicy] = None,
) -> CampaignRun:
    """Run *config* in parallel with persistence, returning result + stats.

    Parameters
    ----------
    config:
        The campaign to run.
    store:
        A :class:`CampaignStore` or a directory path.  When given,
        completed shards are skipped (if *resume*) and every new shard is
        persisted as it completes; when omitted, the run is in-memory
        only (no resume, no archive).
    jobs:
        Worker processes (default: one per CPU; ``1`` runs inline).
    progress:
        Called with a short string after each shard is skipped, completed
        or failed.
    resume:
        Whether an already-populated store may be continued.  A store
        holding results from a *different* campaign is always refused.
    archive_workloads:
        Whether to archive each shard's generated PTGs next to its
        result record.
    retry:
        Optional :class:`~repro.campaigns.pool.RetryPolicy`: workers
        re-attempt failing shards with capped exponential backoff
        before reporting them failed.  Shards that keep failing are
        *quarantined* when a store is given -- their traceback is
        appended to the store's ``quarantine`` channel and the campaign
        completes over the surviving shards instead of aborting; a
        later resume re-runs them (their result key is still missing).
    executor:
        Which execution engine fans the shards out: a name from
        :data:`repro.scenarios.registry.EXECUTORS` (``serial`` /
        ``process-pool`` / ``local-cluster``) or an
        :class:`~repro.exec.base.Executor` instance.  The default is
        ``process-pool`` -- exactly the pre-executor behaviour.
    policy:
        Optional :class:`~repro.exec.base.ExecutionPolicy` with the
        cross-executor knobs (lease timeouts, poll intervals...).  The
        explicit *jobs* / *retry* arguments fill its corresponding
        fields when those are unset, and ``return_workload`` always
        follows *archive_workloads*.
    """
    if isinstance(store, (str, bytes)) or hasattr(store, "__fspath__"):
        store = CampaignStore(store)
    shards = make_shards(config)
    stats = CampaignRunStats(total_shards=len(shards))
    engine = _resolve_executor(executor)
    policy = dataclasses.replace(
        policy if policy is not None else ExecutionPolicy(),
        jobs=jobs if jobs is not None else (policy.jobs if policy else None),
        retry=retry if retry is not None else (policy.retry if policy else None),
        return_workload=store is not None and archive_workloads,
    )

    results: Dict[str, ExperimentResult] = {}
    completed = set()
    cache = None
    if store is not None:
        completed = store.completed_keys()
        _check_store(store, config, shards, resume, completed=len(completed))
        cache = store.load_cache()

    pending = [s for s in shards if s.key() not in completed]
    stats.skipped_shards = len(shards) - len(pending)
    if progress is not None and stats.skipped_shards:
        progress(f"resuming: {stats.skipped_shards}/{len(shards)} shards already done")
    _LOG.debug(
        "campaign: %d shard(s), %d pending, %d skipped (executor: %s)",
        len(shards), len(pending), stats.skipped_shards, engine.name,
    )

    registry = meters.active()
    wall_start = time.perf_counter()
    for outcome in engine.submit_shards(
        pending, store=store, policy=policy, cache=cache
    ):
        if not outcome.ok:
            stats.failed_shards += 1
            stats.failures[outcome.label] = outcome.error or ""
            if store is not None:
                store.append_payload(
                    QUARANTINE_CHANNEL,
                    outcome.key,
                    {
                        "label": outcome.label,
                        "index": outcome.index,
                        "attempts": outcome.attempts,
                        "seconds": outcome.seconds,
                        "error": outcome.error or "",
                    },
                )
                stats.quarantined.append(outcome.label)
            if progress is not None:
                progress(f"FAILED {outcome.label}")
            continue
        stats.executed_shards += 1
        stats.cache_hits += outcome.cache_hits
        stats.cache_misses += outcome.cache_misses
        stats.executed_seconds += outcome.seconds
        if registry is not None:
            registry.histogram("campaign.shard_seconds").observe(outcome.seconds)
        _LOG.debug("shard done: %s (%.3fs)", outcome.label, outcome.seconds)
        results[outcome.key] = outcome.result
        if store is not None:
            store.append(
                outcome.key,
                outcome.result,
                workload=outcome.workload if archive_workloads else None,
            )
            if outcome.cache_entries:
                store.save_cache(cache)
        if progress is not None:
            progress(outcome.label)

    if registry is not None and stats.executed_shards:
        # worker utilisation: summed shard CPU seconds over the wall-clock
        # budget of the pool (1.0 = every worker busy the whole run)
        wall = time.perf_counter() - wall_start
        workers = default_jobs() if jobs is None else max(1, int(jobs))
        if wall > 0.0:
            registry.gauge("campaign.worker_utilisation").set(
                stats.executed_seconds / (wall * workers)
            )
        registry.counter("campaign.shards_executed").inc(stats.executed_shards)
        registry.counter("campaign.shards_skipped").inc(stats.skipped_shards)
        if stats.failed_shards:
            registry.counter("campaign.shards_failed").inc(stats.failed_shards)

    if stats.failures:
        done = stats.executed_shards + stats.skipped_shards
        first_label, first_error = next(iter(stats.failures.items()))
        if store is None or not results:
            # without a store there is nowhere to quarantine, and a run
            # with zero surviving shards has nothing to aggregate
            raise CampaignError(
                f"{stats.failed_shards} shard(s) failed ({done}/{len(shards)} "
                f"completed{' and persisted' if store is not None else ''}); "
                f"first failure on {first_label}:\n{first_error}"
            )
        _LOG.warning(
            "quarantined %d shard(s); campaign completes over %d surviving shard(s)",
            stats.failed_shards, done,
        )
        if progress is not None:
            progress(
                f"quarantined {stats.failed_shards} shard(s) "
                f"(see the store's {QUARANTINE_CHANNEL!r} channel)"
            )

    if store is not None and stats.skipped_shards:
        # resumed shards were never deserialised on the way in (the
        # resume check is key-only); load them once for the aggregate
        stored = store.results_by_key()
        for key in completed:
            if key not in results and key in stored:
                results[key] = stored[key]

    experiments = [results[shard.key()] for shard in shards if shard.key() in results]
    result = CampaignResult(config=config, experiments=experiments)
    return CampaignRun(result=result, stats=stats)


def run_campaign_parallel(
    config: CampaignConfig,
    store: Optional[Union[CampaignStore, str]] = None,
    jobs: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    resume: bool = True,
    executor: Optional[Union[str, Executor]] = None,
) -> CampaignResult:
    """Parallel, persistent, resumable drop-in for ``run_campaign``.

    Same aggregates as the serial runner (bit-identical for a given
    *config*, whichever *executor* fans the shards out); see
    :func:`orchestrate` for the parameters and for access to the run
    statistics.
    """
    return orchestrate(
        config, store=store, jobs=jobs, progress=progress, resume=resume,
        executor=executor,
    ).result
