"""Campaign orchestration: parallel, persistent, resumable experiment runs.

The paper's evaluation is thousands of independent experiments (25
workloads per PTG count, five PTG counts, four platforms, seven or eight
strategies).  This subsystem turns the one-shot serial campaign runner
into an orchestration layer:

* :mod:`repro.campaigns.shards` -- deterministic decomposition of a
  :class:`~repro.experiments.runner.CampaignConfig` into self-describing
  experiment shards with stable content-derived keys,
* :mod:`repro.campaigns.pool` -- a :mod:`multiprocessing` executor that
  fans shards out across worker processes with ordered progress and
  per-shard failure capture,
* :mod:`repro.campaigns.store` -- an append-only JSONL result store with
  full :class:`~repro.experiments.runner.ExperimentResult` round-tripping
  and archival of the generated workloads,
* :mod:`repro.campaigns.cache` -- a keyed cache of single-application
  reference makespans shared across strategies, shards and resumed runs,
* :mod:`repro.campaigns.orchestrator` -- :func:`run_campaign_parallel`,
  which skips already-stored shards (resume-after-interrupt) and
  re-assembles a :class:`~repro.experiments.runner.CampaignResult` whose
  aggregates are bit-identical to the serial runner's.
"""

from repro.campaigns.cache import (
    OwnMakespanCache,
    compute_own_makespans_cached,
    platform_fingerprint,
    ptg_fingerprint,
)
from repro.campaigns.orchestrator import (
    CampaignRun,
    CampaignRunStats,
    orchestrate,
    run_campaign_parallel,
)
from repro.campaigns.pool import ShardOutcome, default_jobs, execute_shard, run_shards
from repro.campaigns.shards import ExperimentShard, campaign_signature, make_shards
from repro.campaigns.store import (
    CampaignStore,
    experiment_result_from_dict,
    experiment_result_to_dict,
    strategy_outcome_from_dict,
    strategy_outcome_to_dict,
)

__all__ = [
    # cache
    "OwnMakespanCache",
    "compute_own_makespans_cached",
    "platform_fingerprint",
    "ptg_fingerprint",
    # shards
    "ExperimentShard",
    "campaign_signature",
    "make_shards",
    # pool
    "ShardOutcome",
    "default_jobs",
    "execute_shard",
    "run_shards",
    # store
    "CampaignStore",
    "experiment_result_to_dict",
    "experiment_result_from_dict",
    "strategy_outcome_to_dict",
    "strategy_outcome_from_dict",
    # orchestrator
    "CampaignRun",
    "CampaignRunStats",
    "orchestrate",
    "run_campaign_parallel",
]
