"""Keyed cache of single-application reference makespans.

Computing the reference makespan ``M_own`` of an application (its
makespan when it has the whole platform to itself) requires a full
single-PTG schedule plus a simulation, and the serial campaign runner
recomputes it for every experiment.  The cache in this module keys those
makespans by ``(PTG content fingerprint, platform content fingerprint)``
so that

* the seven-or-eight strategies of one experiment share one computation
  (as the serial runner already does),
* structurally identical applications across experiments (e.g. every
  Strassen PTG, or the same workload replayed on the same platform by a
  resumed run) share one computation campaign-wide,
* a persisted cache (:meth:`OwnMakespanCache.save`) lets an interrupted
  campaign resume without re-simulating any reference makespan.

Fingerprints are SHA-256 digests of the canonical JSON serialisation of
the object *content* (the PTG name is excluded so that two generators
producing the same graph under different names share cache entries).
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.dag.graph import PTG
from repro.dag.io import ptg_to_dict
from repro.platform.multicluster import MultiClusterPlatform
from repro.scheduler.single import SinglePTGScheduler
from repro.simulate.executor import ScheduleExecutor

# Re-exported here for backward compatibility: the digest helpers moved
# to repro.utils.digest so the scenario spec layer can share the exact
# key scheme without importing the campaign subsystem.
from repro.utils.digest import content_digest, platform_fingerprint  # noqa: F401

#: Version stamp of the cache file format and of the fingerprint scheme.
CACHE_FORMAT_VERSION = 1


def ptg_fingerprint(graph: PTG) -> str:
    """Content fingerprint of a PTG.

    Only scheduling-relevant content is hashed: task costs and edges.
    Graph and task *names* are excluded, so the structurally identical
    applications of a workload (every Strassen PTG, repeated FFT sizes)
    share one fingerprint -- and therefore one cached reference makespan.
    """
    payload = ptg_to_dict(graph)
    payload.pop("name", None)
    for task in payload["tasks"]:
        task.pop("name", None)
    return content_digest(payload)


class OwnMakespanCache:
    """In-memory cache of own makespans, keyed by content fingerprints.

    The cache tracks which entries were inserted after construction
    (:attr:`new_entries`) so a worker process can ship only its fresh
    computations back to the orchestrator, and counts hits and misses so
    the benchmark harness can report a hit rate.
    """

    def __init__(self, entries: Optional[Mapping[str, float]] = None) -> None:
        self.entries: Dict[str, float] = dict(entries or {})
        self.new_entries: Dict[str, float] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(ptg_fp: str, platform_fp: str) -> str:
        """Cache key of one ``(application, platform)`` pair."""
        return f"{ptg_fp}:{platform_fp}"

    def get(self, ptg_fp: str, platform_fp: str) -> Optional[float]:
        """Cached makespan for the pair, counting the hit or miss."""
        value = self.entries.get(self.key(ptg_fp, platform_fp))
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, ptg_fp: str, platform_fp: str, makespan: float) -> None:
        """Record a freshly simulated makespan."""
        key = self.key(ptg_fp, platform_fp)
        self.entries[key] = makespan
        self.new_entries[key] = makespan

    def merge(self, entries: Mapping[str, float]) -> None:
        """Absorb entries computed elsewhere (e.g. by a worker process)."""
        self.entries.update(entries)
        self.new_entries.update(entries)

    def __len__(self) -> int:
        return len(self.entries)

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, path: str) -> None:
        """Write the cache to *path* as a JSON document."""
        payload = {"format_version": CACHE_FORMAT_VERSION, "entries": self.entries}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)

    @classmethod
    def load(cls, path: str) -> "OwnMakespanCache":
        """Read a cache written by :meth:`save`; missing files yield an empty cache."""
        if not os.path.exists(path):
            return cls()
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("format_version") != CACHE_FORMAT_VERSION:
            return cls()
        entries = payload.get("entries", {})
        return cls({str(k): float(v) for k, v in entries.items()})


def compute_own_makespans_cached(
    ptgs: Iterable[PTG],
    platform: MultiClusterPlatform,
    cache: OwnMakespanCache,
    platform_fp: Optional[str] = None,
) -> Dict[str, float]:
    """Own makespan of each application, simulating only on cache misses.

    This is the cached counterpart of
    :func:`repro.experiments.runner.compute_own_makespans`: misses are
    scheduled and simulated exactly as the serial runner does, so a
    cached campaign reproduces the uncached one bit for bit.
    """
    plat_fp = platform_fp or platform_fingerprint(platform)
    scheduler: Optional[SinglePTGScheduler] = None
    executor: Optional[ScheduleExecutor] = None
    own: Dict[str, float] = {}
    for ptg in ptgs:
        fp = ptg_fingerprint(ptg)
        cached = cache.get(fp, plat_fp)
        if cached is not None:
            own[ptg.name] = cached
            continue
        if scheduler is None:
            scheduler = SinglePTGScheduler()
            executor = ScheduleExecutor(platform)
        result = scheduler.schedule(ptg, platform)
        report = executor.execute([ptg], result.schedule)
        makespan = report.makespan(ptg.name)
        cache.put(fp, plat_fp, makespan)
        own[ptg.name] = makespan
    return own
