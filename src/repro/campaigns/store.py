"""Append-only persistent store of campaign results.

Layout of a store directory::

    <root>/
        meta.json        -- campaign signature + config summary
        results.jsonl    -- one JSON record per completed experiment shard
        stream.jsonl     -- one record per completed streaming scenario
                            (any other channel name works the same way)
        cache.json       -- persisted own-makespan cache
        workloads/
            <shard key>.json  -- the generated PTGs of the shard
                                 (``repro.dag.io.save_workload`` format)

``results.jsonl`` is append-only: every completed shard is written as a
single line and flushed immediately, so an interrupted campaign loses at
most the shard that was being written.  A truncated trailing line (the
signature of a crash mid-write) is ignored on read and simply re-executed
on resume.

The records serialise :class:`~repro.experiments.runner.ExperimentResult`
(including every :class:`~repro.experiments.runner.StrategyOutcome`) in
full, so a :class:`~repro.experiments.runner.CampaignResult` re-assembled
from the store aggregates *bit-identically* to one produced in process --
Python floats round-trip exactly through JSON.  The archived workloads
make any single experiment re-runnable on the exact graphs that produced
its record.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.campaigns.cache import OwnMakespanCache
from repro.dag.graph import PTG
from repro.dag.io import load_workload, save_workload
from repro.exceptions import CampaignError
from repro.experiments.runner import ExperimentResult, StrategyOutcome

#: Version stamp of the result-record format.  Version 2 introduced the
#: generic record channels: payloads live under ``payload`` instead of
#: the batch-specific ``result`` key.
STORE_FORMAT_VERSION = 2

#: Versions this reader understands (version-1 stores resume cleanly;
#: readers older than a record's version fail with the explicit
#: unsupported-version error instead of a KeyError).
SUPPORTED_FORMAT_VERSIONS = frozenset({1, 2})

RESULTS_FILENAME = "results.jsonl"
CACHE_FILENAME = "cache.json"
META_FILENAME = "meta.json"
WORKLOADS_DIRNAME = "workloads"


# ---------------------------------------------------------------------- #
# record (de)serialisation
# ---------------------------------------------------------------------- #
def strategy_outcome_to_dict(outcome: StrategyOutcome) -> Dict:
    """Serialise one :class:`StrategyOutcome` to plain JSON types."""
    return {
        "strategy": outcome.strategy,
        "betas": dict(outcome.betas),
        "makespans": dict(outcome.makespans),
        "slowdowns": dict(outcome.slowdowns),
        "unfairness": outcome.unfairness,
        "batch_makespan": outcome.batch_makespan,
        "mean_application_makespan": outcome.mean_application_makespan,
    }


def strategy_outcome_from_dict(payload: Dict) -> StrategyOutcome:
    """Rebuild a :class:`StrategyOutcome` from :func:`strategy_outcome_to_dict`."""
    try:
        return StrategyOutcome(
            strategy=payload["strategy"],
            betas={str(k): float(v) for k, v in payload["betas"].items()},
            makespans={str(k): float(v) for k, v in payload["makespans"].items()},
            slowdowns={str(k): float(v) for k, v in payload["slowdowns"].items()},
            unfairness=float(payload["unfairness"]),
            batch_makespan=float(payload["batch_makespan"]),
            mean_application_makespan=float(payload["mean_application_makespan"]),
        )
    except KeyError as exc:
        raise CampaignError(f"strategy outcome record misses field {exc}") from None


def experiment_result_to_dict(result: ExperimentResult) -> Dict:
    """Serialise one :class:`ExperimentResult` to plain JSON types."""
    return {
        "platform": result.platform,
        "workload": result.workload,
        "n_ptgs": result.n_ptgs,
        "own_makespans": dict(result.own_makespans),
        "outcomes": {
            name: strategy_outcome_to_dict(outcome)
            for name, outcome in result.outcomes.items()
        },
    }


def experiment_result_from_dict(payload: Dict) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from :func:`experiment_result_to_dict`."""
    try:
        return ExperimentResult(
            platform=payload["platform"],
            workload=payload["workload"],
            n_ptgs=int(payload["n_ptgs"]),
            own_makespans={
                str(k): float(v) for k, v in payload["own_makespans"].items()
            },
            outcomes={
                str(name): strategy_outcome_from_dict(out)
                for name, out in payload["outcomes"].items()
            },
        )
    except KeyError as exc:
        raise CampaignError(f"experiment record misses field {exc}") from None


# ---------------------------------------------------------------------- #
# the store
# ---------------------------------------------------------------------- #
@dataclass
class _ChannelTail:
    """Read-side tail cache of one channel.

    ``end_offset`` is the byte position just past the last fully
    consumed (newline-terminated) line, ``lineno`` the number of lines
    consumed up to it, and ``records`` the parsed records so far.  A
    repeated :meth:`CampaignStore.iter_payloads` replays the cached
    records and resumes *tailing* from ``end_offset`` instead of
    re-reading (and re-decoding) the whole file -- the win that makes
    per-shard resume checks O(new records) instead of O(store).
    """

    end_offset: int = 0
    lineno: int = 0
    records: List[Tuple[str, Dict]] = field(default_factory=list)


class CampaignStore:
    """Directory-backed, append-only store of per-shard experiment results."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._tails: Dict[str, _ChannelTail] = {}

    # -- paths --------------------------------------------------------- #
    @property
    def results_path(self) -> Path:
        return self.root / RESULTS_FILENAME

    @property
    def cache_path(self) -> Path:
        return self.root / CACHE_FILENAME

    @property
    def meta_path(self) -> Path:
        return self.root / META_FILENAME

    @property
    def workloads_dir(self) -> Path:
        return self.root / WORKLOADS_DIRNAME

    def workload_path(self, key: str) -> Path:
        return self.workloads_dir / f"{key}.json"

    def channel_path(self, channel: str) -> Path:
        """Path of one record channel (``results`` is the batch channel)."""
        if not channel or any(c in channel for c in "/\\."):
            raise CampaignError(f"invalid store channel name {channel!r}")
        return self.root / f"{channel}.jsonl"

    # -- results ------------------------------------------------------- #
    def append(
        self,
        key: str,
        result: ExperimentResult,
        workload: Optional[List[PTG]] = None,
    ) -> None:
        """Persist one completed shard (and optionally its generated PTGs).

        The record is written as one line and flushed before the call
        returns, so a crash can only ever lose the record being written.
        """
        self.append_payload("results", key, experiment_result_to_dict(result))
        if workload is not None:
            self.workloads_dir.mkdir(parents=True, exist_ok=True)
            save_workload(workload, str(self.workload_path(key)))

    def append_payload(self, channel: str, key: str, payload: Dict) -> None:
        """Append one keyed JSON payload to a record *channel*.

        Channels are parallel append-only JSONL files inside the store
        (the batch results live in the ``results`` channel, streaming
        outcomes in the ``stream`` channel) sharing the same crash-safe
        append discipline: one line per record, flushed and fsynced
        before the call returns.
        """
        record = {
            "format_version": STORE_FORMAT_VERSION,
            "key": key,
            "payload": payload,
        }
        line = json.dumps(record, sort_keys=True)
        with open(self.channel_path(channel), "a+", encoding="utf-8") as handle:
            # A crash can leave a partial record without a trailing newline;
            # terminate it so the new record starts on its own line (the
            # partial line is then skipped as corrupt-but-trailing on read
            # until more records follow -- see iter_payloads).
            handle.seek(0, os.SEEK_END)
            if handle.tell() > 0:
                handle.seek(handle.tell() - 1)
                if handle.read(1) != "\n":
                    handle.write("\n")
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def iter_payloads(self, channel: str) -> Iterator[Tuple[str, Dict]]:
        """Yield ``(key, payload)`` pairs of one channel, in append order.

        Unparsable lines are skipped: they are truncated records left by
        interrupted writes (possibly newline-terminated by a later
        append), and the orchestrator re-executes any shard whose key is
        missing, so the store self-heals.  A *parsable* record with an
        unsupported format version still raises -- that is a versioning
        problem, not a crash artefact.

        Reads are streamed, never loaded whole, and each store instance
        keeps a per-channel tail cache (:class:`_ChannelTail`): a second
        iteration replays the already-parsed records and resumes from
        the cached byte offset, so the per-shard existence checks of a
        resuming campaign only ever decode *new* lines.  A line without
        a trailing newline is a write still in flight (or a crash
        artefact the next append repairs) and is left unconsumed.
        """
        path = self.channel_path(channel)
        if not path.exists():
            self._tails.pop(channel, None)
            return
        tail = self._tails.get(channel)
        cached: List[Tuple[str, Dict]] = []
        offset = 0
        lineno = 0
        if tail is not None and tail.end_offset <= path.stat().st_size:
            cached = tail.records
            offset = tail.end_offset
            lineno = tail.lineno
        for item in cached:
            yield item
        fresh: List[Tuple[str, Dict]] = []
        with open(path, "rb") as handle:
            handle.seek(offset)
            while True:
                raw = handle.readline()
                if not raw.endswith(b"\n"):
                    break
                offset += len(raw)
                lineno += 1
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # interrupted write: the shard re-runs
                if record.get("format_version") not in SUPPORTED_FORMAT_VERSIONS:
                    raise CampaignError(
                        f"{path}:{lineno}: unsupported format "
                        f"version {record.get('format_version')!r}"
                    )
                item = (str(record["key"]), self._record_payload(record))
                fresh.append(item)
                yield item
        self._tails[channel] = _ChannelTail(
            end_offset=offset, lineno=lineno, records=cached + fresh
        )

    @staticmethod
    def _record_payload(record: Dict) -> Dict:
        """The payload of one parsed record line.

        Batch records written before the channel API carried their
        content under ``result``; both spellings read back identically.
        """
        if "payload" in record:
            return record["payload"]
        return record["result"]

    def payloads_by_key(self, channel: str) -> Dict[str, Dict]:
        """All payloads of one channel, keyed by record key (last wins)."""
        return {key: payload for key, payload in self.iter_payloads(channel)}

    def _column_view(self, channel: str):
        """The compacted columnar view of *channel*, or ``None``.

        Lazy import: :mod:`repro.campaigns.colstore` builds on this
        module.  The view exists once ``repro store compact`` (or
        :meth:`ColumnStore.compact`) has committed a state file.
        """
        from repro.campaigns.colstore import ColumnStore

        view = ColumnStore(self, channel)
        return view if view.state_path.exists() else None

    def iter_records(self) -> Iterator[Tuple[str, ExperimentResult]]:
        """Yield ``(shard key, batch result)`` pairs, in append order.

        When the ``results`` channel has been compacted, records stream
        from the columnar segments (plus the WAL tail) with memory
        bounded by one segment; otherwise they stream straight from the
        JSONL.  Either way the rebuilt results are bit-identical.
        """
        view = self._column_view("results")
        if view is not None:
            for key, payload in view.iter_rows():
                yield key, experiment_result_from_dict(payload)
            return
        for key, payload in self.iter_payloads("results"):
            yield key, experiment_result_from_dict(payload)

    def results_by_key(self) -> Dict[str, ExperimentResult]:
        """All persisted results, keyed by shard key (last record wins)."""
        return {key: result for key, result in self.iter_records()}

    def iter_keys(self, channel: str = "results") -> Iterator[str]:
        """Yield the record keys of one channel without building results.

        This is the resume fast path: no
        :class:`~repro.experiments.runner.ExperimentResult` (or any
        other domain object) is ever constructed, and a compacted
        channel answers straight from its segment footers.
        """
        view = self._column_view(channel)
        if view is not None:
            for key in view.iter_keys():
                yield key
            return
        for key, _ in self.iter_payloads(channel):
            yield key

    def completed_keys(self) -> Set[str]:
        """Keys of the shards already present in the store (key-only scan)."""
        return set(self.iter_keys("results"))

    def __contains__(self, key: str) -> bool:
        return key in self.completed_keys()

    def __len__(self) -> int:
        return len(self.completed_keys())

    # -- workload archive ---------------------------------------------- #
    def load_workload(self, key: str) -> List[PTG]:
        """Reload the archived PTGs of one shard."""
        path = self.workload_path(key)
        if not path.exists():
            raise CampaignError(f"no archived workload for shard {key!r}")
        return load_workload(str(path))

    # -- own-makespan cache -------------------------------------------- #
    def load_cache(self) -> OwnMakespanCache:
        """The persisted own-makespan cache (empty when absent)."""
        return OwnMakespanCache.load(str(self.cache_path))

    def save_cache(self, cache: OwnMakespanCache) -> None:
        """Persist the own-makespan cache."""
        cache.save(str(self.cache_path))

    # -- metadata ------------------------------------------------------ #
    def read_meta(self) -> Optional[Dict]:
        """The stored campaign metadata, or ``None`` for a fresh store."""
        if not self.meta_path.exists():
            return None
        with open(self.meta_path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    def write_meta(self, meta: Dict) -> None:
        """Record campaign metadata (signature + config summary)."""
        with open(self.meta_path, "w", encoding="utf-8") as handle:
            json.dump(meta, handle, indent=2, sort_keys=True)
