"""Multiprocessing fan-out of experiment shards.

:func:`run_shards` executes a list of
:class:`~repro.campaigns.shards.ExperimentShard` either inline
(``jobs=1``) or across a :class:`multiprocessing.Pool` of worker
processes, yielding one :class:`ShardOutcome` per shard *in shard
order* (``imap`` preserves submission order) so progress reporting and
result persistence stay deterministic regardless of which worker
finishes first.

Failures are captured, not propagated: a shard that raises returns a
:class:`ShardOutcome` carrying the formatted traceback, and the
remaining shards keep running.  A :class:`RetryPolicy` makes the worker
re-attempt a failing shard first -- capped exponential backoff with
deterministic, key-seeded jitter -- so transient crashes (a flaky
filesystem, an OOM-killed sibling) heal in place and only repeatedly
failing shards surface.  The orchestrator decides what to do with those
once every shard has had its chance (it quarantines them when it has a
store).

Workers are seeded with a snapshot of the own-makespan cache taken at
submission time and ship their fresh entries back in the outcome; the
orchestrator merges them so later submissions (and the persisted store)
benefit.  Entries computed concurrently by two workers are simply
computed twice -- correctness never depends on the cache.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
import traceback
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro.campaigns.cache import (
    OwnMakespanCache,
    compute_own_makespans_cached,
    platform_fingerprint,
)
from repro.campaigns.shards import ExperimentShard
from repro.constraints.registry import strategy
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.workload import make_workload
from repro.obs import trace
from repro.scenarios.run import build_pipeline


@dataclass(frozen=True)
class RetryPolicy:
    """How a worker re-attempts a failing shard before giving up.

    Backoff before retry ``n`` (1-based) is capped exponential --
    ``min(max_delay, base_delay * 2**(n-1))`` -- scaled by a
    deterministic jitter in ``[0.5, 1.0]`` derived from ``seed``, the
    shard key and the attempt number, so concurrent workers retrying
    different shards spread out while replays of the same campaign
    back off identically.
    """

    attempts: int = 3
    base_delay: float = 0.5
    max_delay: float = 8.0
    seed: int = 0

    def __post_init__(self) -> None:
        """Validate the policy's field values."""
        if not isinstance(self.attempts, int) or self.attempts < 1:
            raise ValueError(f"attempts must be a positive integer, got {self.attempts!r}")
        if self.base_delay <= 0 or self.max_delay <= 0:
            raise ValueError("base_delay and max_delay must be positive")
        if self.max_delay < self.base_delay:
            raise ValueError(
                f"max_delay ({self.max_delay}) must not undercut "
                f"base_delay ({self.base_delay})"
            )

    def delay(self, key: str, attempt: int) -> float:
        """Seconds to wait before retry *attempt* (1-based) of shard *key*."""
        cap = min(self.max_delay, self.base_delay * 2 ** (attempt - 1))
        digest = hashlib.sha256(f"{self.seed}:{key}:{attempt}".encode()).digest()
        unit = int.from_bytes(digest[:8], "big") / 2**64
        return cap * (0.5 + 0.5 * unit)


@dataclass
class ShardOutcome:
    """What came back from executing one shard.

    Exactly one of :attr:`result` and :attr:`error` is set.  The PTGs
    generated for the shard ride along so the orchestrator can archive
    them without regenerating the workload.
    """

    key: str
    label: str
    index: int
    result: Optional[ExperimentResult] = None
    error: Optional[str] = None
    workload: Optional[list] = None
    cache_entries: Dict[str, float] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    seconds: float = 0.0
    telemetry: Optional[Dict] = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        """True when the shard executed to completion."""
        return self.error is None


def default_jobs() -> int:
    """Default worker count: one per available CPU."""
    return os.cpu_count() or 1


def execute_shard(
    shard: ExperimentShard,
    cache_entries: Optional[Mapping[str, float]] = None,
    return_workload: bool = True,
    retry: Optional[RetryPolicy] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> ShardOutcome:
    """Execute one shard, re-attempting failures under *retry*.

    Without a policy the shard runs exactly once (the pre-hardening
    behaviour).  With one, a failing attempt sleeps the policy's
    backoff and re-runs, up to ``retry.attempts`` total attempts; the
    returned outcome's :attr:`ShardOutcome.attempts` records how many
    it took.  *sleep* is injectable so tests assert the backoff without
    waiting it out.
    """
    attempts = 1 if retry is None else retry.attempts
    outcome = _execute_shard_attempt(shard, cache_entries, return_workload)
    for attempt in range(1, attempts):
        if outcome.ok:
            break
        sleep(retry.delay(shard.key(), attempt))
        outcome = _execute_shard_attempt(shard, cache_entries, return_workload)
        outcome.attempts = attempt + 1
    return outcome


def _execute_shard_attempt(
    shard: ExperimentShard,
    cache_entries: Optional[Mapping[str, float]] = None,
    return_workload: bool = True,
) -> ShardOutcome:
    """Execute one shard from its self-describing fields, once.

    This is the pure worker function of the subsystem: the workload is
    regenerated from its seed, the strategies and the pipeline
    components are rebuilt from their registry names, and the result is
    a serialisable :class:`ExperimentResult` -- nothing depends on
    process state, so the same call runs inline, in a worker process,
    or on another host.
    """
    start = time.perf_counter()
    with ExitStack() as stack:
        # The shard starts its own telemetry session only when the caller
        # has not installed one (inline runs under ``repro trace`` keep
        # the CLI session so the whole run lands in a single trace).
        session = None
        if shard.telemetry is not None and not obs.enabled():
            session = stack.enter_context(obs.capture(shard.telemetry))
        try:
            with trace.span("campaign.shard", shard=shard.label()):
                ptgs = make_workload(shard.spec)
                strategies = [
                    strategy(name, family=shard.spec.family, mu=shard.pipeline.mu)
                    for name in shard.strategy_names
                ]
                allocator, mapper = build_pipeline(shard.pipeline)
                cache = OwnMakespanCache(cache_entries)
                own = compute_own_makespans_cached(
                    ptgs, shard.platform, cache,
                    platform_fp=platform_fingerprint(shard.platform),
                )
                result = run_experiment(
                    ptgs,
                    shard.platform,
                    strategies,
                    workload_label=shard.spec.label(),
                    own_makespans=own,
                    allocator=allocator,
                    mapper=mapper,
                )
            return ShardOutcome(
                key=shard.key(),
                label=shard.label(),
                index=shard.index,
                result=result,
                workload=ptgs if return_workload else None,
                cache_entries=dict(cache.new_entries),
                cache_hits=cache.hits,
                cache_misses=cache.misses,
                seconds=time.perf_counter() - start,
                telemetry=(
                    session.summary(labels={"shard": shard.label(), "key": shard.key()})
                    if session is not None
                    else None
                ),
            )
        except Exception:
            return ShardOutcome(
                key=shard.key(),
                label=shard.label(),
                index=shard.index,
                error=traceback.format_exc(),
                seconds=time.perf_counter() - start,
            )


#: Per-worker state installed by :func:`_init_worker`.  The cache
#: snapshot is shipped once per worker process (through the pool
#: initializer) instead of once per shard, which matters when resuming
#: a large campaign with a warm cache.
_WORKER_STATE: Dict[str, object] = {}


def _init_worker(
    cache_entries: Dict[str, float],
    return_workload: bool,
    retry: Optional[RetryPolicy],
) -> None:
    """Pool initializer: install the shared cache snapshot in the worker."""
    _WORKER_STATE["cache_entries"] = cache_entries
    _WORKER_STATE["return_workload"] = return_workload
    _WORKER_STATE["retry"] = retry


def _worker(shard: ExperimentShard) -> ShardOutcome:
    """Pool entry point (module-level so it pickles)."""
    return execute_shard(
        shard,
        _WORKER_STATE.get("cache_entries"),
        return_workload=bool(_WORKER_STATE.get("return_workload", True)),
        retry=_WORKER_STATE.get("retry"),
    )


def run_shards(
    shards: Sequence[ExperimentShard],
    jobs: Optional[int] = None,
    cache: Optional[OwnMakespanCache] = None,
    return_workload: bool = True,
    retry: Optional[RetryPolicy] = None,
) -> Iterator[ShardOutcome]:
    """Execute *shards*, yielding outcomes in shard order.

    Parameters
    ----------
    shards:
        The shards to run.
    jobs:
        Worker process count; ``None`` means one per CPU, ``1`` runs
        inline in the calling process (no multiprocessing at all, which
        also keeps single-job runs debuggable).
    cache:
        Own-makespan cache shared across shards.  Inline runs consult
        and update it between shards; parallel runs snapshot it at pool
        start and merge worker entries back as outcomes arrive.
    return_workload:
        Whether outcomes carry the generated PTGs.  Callers that will
        not archive workloads should pass ``False`` so workers skip
        pickling every graph back to the orchestrator.
    retry:
        Optional :class:`RetryPolicy`; failing shards are re-attempted
        in their worker (with backoff) before being reported failed.
    """
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    cache = cache if cache is not None else OwnMakespanCache()

    if jobs == 1 or len(shards) <= 1:
        for shard in shards:
            outcome = execute_shard(shard, cache.entries, return_workload, retry=retry)
            cache.merge(outcome.cache_entries)
            cache.hits += outcome.cache_hits
            cache.misses += outcome.cache_misses
            yield outcome
        return

    snapshot = dict(cache.entries)
    with multiprocessing.Pool(
        processes=jobs,
        initializer=_init_worker,
        initargs=(snapshot, return_workload, retry),
    ) as pool:
        for outcome in pool.imap(_worker, shards, chunksize=1):
            cache.merge(outcome.cache_entries)
            cache.hits += outcome.cache_hits
            cache.misses += outcome.cache_misses
            yield outcome
