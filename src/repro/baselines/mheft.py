"""M-HEFT: HEFT extended to moldable data-parallel tasks (Casanova et al.).

M-HEFT keeps HEFT's structure (rank tasks by upward rank, place them one
by one at their earliest finish time) but, for each task, it evaluates
several *processor counts* on every cluster instead of single processors.
The candidate counts are powers of two up to the cluster size (plus the
full cluster), which keeps the search cheap while covering the useful
range of the Amdahl speed-up curve.

M-HEFT was designed for a dedicated platform; applied naively to several
concurrent applications it behaves like the paper's selfish ``S``
strategy, which is why it appears in the ablation benchmarks as a
comparator rather than in the main pipeline.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.dag.graph import PTG
from repro.dag.task import Task
from repro.exceptions import MappingError
from repro.mapping.comm import CommunicationEstimator
from repro.mapping.schedule import Schedule, ScheduledTask
from repro.mapping.timeline import PlatformTimeline
from repro.platform.cluster import Cluster
from repro.platform.multicluster import MultiClusterPlatform


def _candidate_processor_counts(cluster: Cluster, cap: Optional[int] = None) -> List[int]:
    """Powers of two up to the cluster size (plus the size itself)."""
    limit = cluster.num_processors if cap is None else min(cap, cluster.num_processors)
    counts: List[int] = []
    p = 1
    while p <= limit:
        counts.append(p)
        p *= 2
    if limit not in counts:
        counts.append(limit)
    return counts


class MHEFTScheduler:
    """Moldable HEFT with earliest-finish-time allocation selection."""

    name = "MHEFT"

    def __init__(self, max_task_processors: Optional[int] = None) -> None:
        """*max_task_processors* optionally caps the per-task allocation.

        Capping to a fraction of the largest cluster is the standard fix
        (from the authors' ISPDC'07 comparison) for M-HEFT's tendency to
        allocate whole clusters to single tasks.
        """
        if max_task_processors is not None and max_task_processors < 1:
            raise MappingError("max_task_processors must be >= 1")
        self.max_task_processors = max_task_processors

    def upward_ranks(self, ptg: PTG, platform: MultiClusterPlatform) -> Dict[int, float]:
        """Upward rank with single-processor average execution times."""
        speeds = [c.speed_flops for c in platform]
        mean_speed = sum(speeds) / len(speeds)
        return ptg.bottom_levels(lambda task: task.execution_time(1, mean_speed))

    def schedule(
        self, ptgs: Sequence[PTG] | PTG, platform: MultiClusterPlatform
    ) -> Schedule:
        """Schedule one or several PTGs, choosing allocations greedily by EFT."""
        if isinstance(ptgs, PTG):
            ptgs = [ptgs]
        if not ptgs:
            raise MappingError("at least one PTG is required")
        for ptg in ptgs:
            ptg.validate()

        comm = CommunicationEstimator(platform)
        timelines = PlatformTimeline(platform)
        schedule = Schedule(platform.name)

        ordered: List[Tuple[float, int, str, int]] = []
        graphs: Dict[str, PTG] = {}
        for ptg in ptgs:
            graphs[ptg.name] = ptg
            ranks = self.upward_ranks(ptg, platform)
            topo = {tid: i for i, tid in enumerate(ptg.topological_order())}
            for task in ptg.tasks():
                ordered.append((-ranks[task.task_id], topo[task.task_id], ptg.name, task.task_id))
        ordered.sort()

        for _, _, name, task_id in ordered:
            ptg = graphs[name]
            task = ptg.task(task_id)
            best: Optional[Tuple[float, float, str, int, float]] = None
            for cluster in platform:
                ready = 0.0
                for pred in ptg.predecessors(task_id):
                    pred_entry = schedule.entry(name, pred)
                    transfer = comm.transfer_time(
                        ptg.edge_data(pred, task_id), pred_entry.cluster_name, cluster.name
                    )
                    ready = max(ready, pred_entry.finish + transfer)
                timeline = timelines.timeline(cluster.name)
                candidates = (
                    [1]
                    if task.is_synthetic
                    else _candidate_processor_counts(cluster, self.max_task_processors)
                )
                for procs in candidates:
                    start = timeline.earliest_start(procs, ready)
                    finish = start + task.execution_time(procs, cluster.speed_flops)
                    key = (finish, start, cluster.name, procs, ready)
                    if best is None or (finish, start, procs) < (best[0], best[1], best[3]):
                        best = key
            assert best is not None
            finish, start, cluster_name, procs, ready = best
            cluster = platform.cluster(cluster_name)
            timeline = timelines.timeline(cluster_name)
            indices, start, finish = timeline.reserve(
                procs, ready, task.execution_time(procs, cluster.speed_flops)
            )
            schedule.add(
                ScheduledTask(
                    ptg_name=name,
                    task_id=task_id,
                    cluster_name=cluster_name,
                    processors=tuple(indices),
                    start=start,
                    finish=finish,
                    reference_processors=procs,
                )
            )
        return schedule
