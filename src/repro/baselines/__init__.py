"""Baseline schedulers from the related work (Section 3 of the paper).

These comparators are not part of the paper's proposed heuristic but are
the algorithms the paper positions itself against, and they are exercised
by the ablation benchmarks:

* :class:`~repro.baselines.heft.HEFTScheduler` -- the classical HEFT list
  scheduler for DAGs of *sequential* tasks (every task runs on a single
  processor); it ignores data parallelism entirely.
* :class:`~repro.baselines.mheft.MHEFTScheduler` -- M-HEFT extends HEFT to
  data-parallel tasks by evaluating, for every task, several candidate
  processor counts on every cluster and keeping the earliest finish time.
  Like HCPA it was designed for a *dedicated* platform.
* :mod:`~repro.baselines.aggregation` -- scheduling multiple DAGs by
  aggregating them into a single composite DAG (Zhao & Sakellariou), the
  approach whose fairness issues motivate the paper's ready-list mapping.
"""

from repro.baselines.heft import HEFTScheduler
from repro.baselines.mheft import MHEFTScheduler
from repro.baselines.aggregation import (
    aggregate_ptgs,
    AggregationScheduler,
)

__all__ = [
    "HEFTScheduler",
    "MHEFTScheduler",
    "aggregate_ptgs",
    "AggregationScheduler",
]
