"""HEFT: Heterogeneous Earliest Finish Time (Topcuoglu et al.).

HEFT schedules DAGs of *sequential* tasks on heterogeneous processors:

1. compute the upward rank of every task (its execution time averaged over
   the platform's processors plus the maximum over successors of the edge
   communication cost plus the successor's rank),
2. consider tasks by decreasing upward rank,
3. place each task on the processor that minimises its finish time.

In this reproduction a "processor" is one processor of one cluster; a
task placed by HEFT always uses exactly one processor, so HEFT serves as
the pure task-parallel baseline that ignores the data parallelism the
mixed-parallel heuristics exploit.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.dag.graph import PTG
from repro.dag.task import Task
from repro.exceptions import MappingError
from repro.mapping.comm import CommunicationEstimator
from repro.mapping.schedule import Schedule, ScheduledTask
from repro.mapping.timeline import PlatformTimeline
from repro.platform.multicluster import MultiClusterPlatform


class HEFTScheduler:
    """List scheduling of sequential-task DAGs by decreasing upward rank."""

    name = "HEFT"

    def upward_ranks(self, ptg: PTG, platform: MultiClusterPlatform) -> Dict[int, float]:
        """Upward rank of every task (average one-processor execution times)."""
        comm = CommunicationEstimator(platform)
        speeds = [c.speed_flops for c in platform]
        mean_speed = sum(speeds) / len(speeds)

        def mean_exec(task: Task) -> float:
            return task.execution_time(1, mean_speed)

        def mean_comm(src: Task, dst: Task, data: float) -> float:
            names = platform.cluster_names()
            if len(names) == 1:
                return 0.0
            values = [
                comm.transfer_time(data, a, b) for a in names for b in names if a != b
            ]
            return sum(values) / len(values)

        return ptg.bottom_levels(mean_exec, mean_comm)

    def schedule(
        self, ptgs: Sequence[PTG] | PTG, platform: MultiClusterPlatform
    ) -> Schedule:
        """Schedule one or several DAGs with every task on a single processor."""
        if isinstance(ptgs, PTG):
            ptgs = [ptgs]
        if not ptgs:
            raise MappingError("at least one PTG is required")
        for ptg in ptgs:
            ptg.validate()

        comm = CommunicationEstimator(platform)
        timelines = PlatformTimeline(platform)
        schedule = Schedule(platform.name)

        ordered: List[Tuple[float, int, str, int]] = []
        graphs: Dict[str, PTG] = {}
        for ptg in ptgs:
            graphs[ptg.name] = ptg
            ranks = self.upward_ranks(ptg, platform)
            topo = {tid: i for i, tid in enumerate(ptg.topological_order())}
            for task in ptg.tasks():
                ordered.append((-ranks[task.task_id], topo[task.task_id], ptg.name, task.task_id))
        ordered.sort()

        for _, _, name, task_id in ordered:
            ptg = graphs[name]
            task = ptg.task(task_id)
            best = None
            for cluster in platform:
                ready = 0.0
                for pred in ptg.predecessors(task_id):
                    pred_entry = schedule.entry(name, pred)
                    transfer = comm.transfer_time(
                        ptg.edge_data(pred, task_id), pred_entry.cluster_name, cluster.name
                    )
                    ready = max(ready, pred_entry.finish + transfer)
                timeline = timelines.timeline(cluster.name)
                start = timeline.earliest_start(1, ready)
                finish = start + task.execution_time(1, cluster.speed_flops)
                if best is None or (finish, start) < (best[0], best[1]):
                    best = (finish, start, cluster.name, ready)
            assert best is not None
            _, _, cluster_name, ready = best
            timeline = timelines.timeline(cluster_name)
            cluster = platform.cluster(cluster_name)
            indices, start, finish = timeline.reserve(
                1, ready, task.execution_time(1, cluster.speed_flops)
            )
            schedule.add(
                ScheduledTask(
                    ptg_name=name,
                    task_id=task_id,
                    cluster_name=cluster_name,
                    processors=tuple(indices),
                    start=start,
                    finish=finish,
                    reference_processors=1,
                )
            )
        return schedule
