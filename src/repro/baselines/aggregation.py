"""Multi-DAG scheduling by aggregation (Zhao & Sakellariou style).

The first family of related work the paper discusses handles concurrent
applications by combining their task graphs "into a single graph to come
down to the classical problem of scheduling a single application".  This
module provides that comparator:

* :func:`aggregate_ptgs` merges several PTGs into one composite PTG by
  adding a common zero-cost entry task and a common zero-cost exit task
  (the simplest of the composition methods of Zhao & Sakellariou);
* :class:`AggregationScheduler` schedules the composite graph with a
  single-application heuristic (M-HEFT by default) and splits the result
  back into per-application schedules, so the fairness metrics can be
  computed exactly as for the paper's concurrent scheduler.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.mheft import MHEFTScheduler
from repro.dag.graph import PTG
from repro.dag.task import Task
from repro.exceptions import MappingError
from repro.mapping.schedule import Schedule, ScheduledTask
from repro.platform.multicluster import MultiClusterPlatform

#: Name given to the composite application.
COMPOSITE_NAME = "__composite__"


def aggregate_ptgs(ptgs: Sequence[PTG]) -> Tuple[PTG, Dict[int, Tuple[str, int]]]:
    """Merge *ptgs* into one composite PTG.

    Returns the composite graph and a mapping from composite task ids back
    to ``(original application name, original task id)`` (synthetic glue
    tasks are absent from the mapping).
    """
    if not ptgs:
        raise MappingError("at least one PTG is required")
    names = [p.name for p in ptgs]
    if len(set(names)) != len(names):
        raise MappingError(f"concurrent PTGs must have unique names, got {names}")

    composite = PTG(COMPOSITE_NAME)
    back_map: Dict[int, Tuple[str, int]] = {}
    next_id = 0
    id_of: Dict[Tuple[str, int], int] = {}

    for ptg in ptgs:
        ptg.validate()
        for task in ptg.tasks():
            clone = Task(
                task_id=next_id,
                flops=task.flops,
                alpha=task.alpha,
                data_elements=task.data_elements,
                complexity=task.complexity,
                name=f"{ptg.name}:{task.name}",
            )
            composite.add_task(clone)
            id_of[(ptg.name, task.task_id)] = next_id
            back_map[next_id] = (ptg.name, task.task_id)
            next_id += 1
        for src, dst, data in ptg.edges():
            composite.add_edge(id_of[(ptg.name, src)], id_of[(ptg.name, dst)], data)

    composite.ensure_single_entry_exit()
    composite.validate()
    return composite, back_map


class AggregationScheduler:
    """Schedule several PTGs by aggregating them into one composite DAG."""

    name = "aggregation"

    def __init__(self, inner=None) -> None:
        self.inner = inner or MHEFTScheduler()

    def schedule(
        self, ptgs: Sequence[PTG], platform: MultiClusterPlatform
    ) -> Schedule:
        """Schedule the composite graph and re-attribute tasks to their applications."""
        composite, back_map = aggregate_ptgs(ptgs)
        composite_schedule = self.inner.schedule(composite, platform)
        split = Schedule(platform.name)
        for entry in composite_schedule:
            origin = back_map.get(entry.task_id)
            if origin is None:
                continue  # synthetic glue task
            name, task_id = origin
            split.add(
                ScheduledTask(
                    ptg_name=name,
                    task_id=task_id,
                    cluster_name=entry.cluster_name,
                    processors=entry.processors,
                    start=entry.start,
                    finish=entry.finish,
                    reference_processors=entry.reference_processors,
                )
            )
        return split
