"""Table 1: the Grid'5000 multi-cluster subsets used in the evaluation."""

from __future__ import annotations

from typing import List, Tuple

from repro.platform.grid5000 import all_sites
from repro.utils.tables import format_table


def table1_rows() -> List[Tuple[str, str, int, float]]:
    """Rows ``(site, cluster, #proc, GFlop/s)`` of the paper's Table 1."""
    rows: List[Tuple[str, str, int, float]] = []
    for platform in all_sites():
        for cluster in platform:
            rows.append(
                (platform.name, cluster.name, cluster.num_processors, cluster.speed_gflops)
            )
    return rows


def site_summary_rows() -> List[Tuple[str, int, float, float]]:
    """Per-site totals quoted in the text of Section 2.

    Rows ``(site, total processors, total power GFlop/s, heterogeneity %)``;
    the paper quotes 99 / 167 / 229 / 180 processors and 20.2% / 6.1% /
    36.8% / 34.7% heterogeneity.
    """
    rows: List[Tuple[str, int, float, float]] = []
    for platform in all_sites():
        rows.append(
            (
                platform.name,
                platform.total_processors,
                platform.total_power_gflops,
                platform.heterogeneity_percent,
            )
        )
    return rows


def table1_text() -> str:
    """ASCII rendering of Table 1 plus the per-site summary."""
    detail = format_table(
        ["site", "cluster", "#proc", "GFlop/s"],
        table1_rows(),
        float_fmt=".3f",
        title="Table 1: multi-cluster subsets of the Grid'5000 platform",
    )
    summary = format_table(
        ["site", "total procs", "total GFlop/s", "heterogeneity %"],
        site_summary_rows(),
        float_fmt=".1f",
        title="Per-site totals (Section 2)",
    )
    return detail + "\n\n" + summary
