"""Figures 3, 4 and 5: comparison of the eight constraint strategies.

* Figure 3 -- randomly generated PTGs,
* Figure 4 -- FFT PTGs,
* Figure 5 -- Strassen PTGs (width-based strategies excluded because all
  Strassen graphs share the same maximal width).

Each figure has two panels: unfairness (left) and average relative
makespan (right), both as functions of the number of concurrent PTGs
(2, 4, 6, 8, 10), averaged over 25 workloads x 4 platforms per point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.experiments.runner import CampaignConfig, CampaignResult, run_campaign
from repro.platform.multicluster import MultiClusterPlatform

#: Mapping from the paper's figure number to the application family.
FIGURE_FAMILIES: Dict[int, str] = {3: "random", 4: "fft", 5: "strassen"}


@dataclass
class FigureResult:
    """Data of one figure: unfairness and relative makespan per strategy."""

    figure: int
    family: str
    ptg_counts: List[int]
    unfairness: Dict[str, List[float]]
    relative_makespan: Dict[str, List[float]]
    campaign: CampaignResult

    def strategies(self) -> List[str]:
        """Strategy names, in legend order."""
        return list(self.unfairness)

    def unfairness_at(self, strategy: str, n_ptgs: int) -> float:
        """Unfairness of one strategy at one PTG count."""
        return self.unfairness[strategy][self.ptg_counts.index(n_ptgs)]

    def relative_makespan_at(self, strategy: str, n_ptgs: int) -> float:
        """Average relative makespan of one strategy at one PTG count."""
        return self.relative_makespan[strategy][self.ptg_counts.index(n_ptgs)]

    def mean_unfairness(self, strategy: str) -> float:
        """Unfairness averaged over all PTG counts (used for rankings)."""
        series = self.unfairness[strategy]
        return sum(series) / len(series)

    def mean_relative_makespan(self, strategy: str) -> float:
        """Relative makespan averaged over all PTG counts."""
        series = self.relative_makespan[strategy]
        return sum(series) / len(series)


def figure_config(
    figure: int,
    ptg_counts: Sequence[int] = (2, 4, 6, 8, 10),
    workloads_per_point: int = 25,
    platforms: Optional[Sequence[MultiClusterPlatform]] = None,
    base_seed: int = 0,
    max_tasks: Optional[int] = None,
    strategy_names: Optional[Sequence[str]] = None,
    pipeline=None,
) -> CampaignConfig:
    """The campaign configuration of one of the paper's figures."""
    if figure not in FIGURE_FAMILIES:
        raise ConfigurationError(
            f"unknown figure {figure}; reproducible figures: {sorted(FIGURE_FAMILIES)}"
        )
    return CampaignConfig(
        family=FIGURE_FAMILIES[figure],
        ptg_counts=tuple(ptg_counts),
        workloads_per_point=workloads_per_point,
        platforms=tuple(platforms) if platforms else None,
        strategy_names=tuple(strategy_names) if strategy_names else None,
        base_seed=base_seed,
        max_tasks=max_tasks,
        pipeline=pipeline,
    )


def figure_scenarios(figure: int, **kwargs) -> list:
    """One of the paper's figures as a canned list of scenario specs.

    The specs enumerate the figure's campaign grid in campaign order
    (one :class:`repro.scenarios.spec.ScenarioSpec` per workload x
    platform cell); running them with
    :func:`repro.scenarios.run.run_scenarios` against a spec-keyed
    store reproduces the figure's experiments.  *kwargs* are those of
    :func:`figure_config`.
    """
    return figure_config(figure, **kwargs).scenario_specs()


def run_figure(
    figure: int,
    ptg_counts: Sequence[int] = (2, 4, 6, 8, 10),
    workloads_per_point: int = 25,
    platforms: Optional[Sequence[MultiClusterPlatform]] = None,
    base_seed: int = 0,
    max_tasks: Optional[int] = None,
    strategy_names: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    store: Optional[str] = None,
    resume: bool = False,
    pipeline=None,
) -> FigureResult:
    """Reproduce one of the paper's comparison figures (3, 4 or 5).

    When *jobs* or *store* is given the campaign goes through the
    orchestration subsystem (:mod:`repro.campaigns`): experiments fan out
    across *jobs* worker processes, results are persisted to the *store*
    directory as they complete, and *resume* continues an interrupted
    store without re-running finished experiments.  Aggregates are
    bit-identical to the serial path either way.

    *pipeline* optionally replaces the paper's SCRAP-MAX + ready-list
    pipeline with any registered pairing (a
    :class:`repro.scenarios.spec.PipelineSpec`), which turns the figure
    into an ablation over the full scenario space.
    """
    if resume and store is None:
        raise ConfigurationError(
            "resume requires a result store (pass store=/--store)"
        )
    config = figure_config(
        figure,
        ptg_counts=ptg_counts,
        workloads_per_point=workloads_per_point,
        platforms=platforms,
        base_seed=base_seed,
        max_tasks=max_tasks,
        strategy_names=strategy_names,
        pipeline=pipeline,
    )
    family = config.family
    if jobs is not None or store is not None:
        # Imported lazily: repro.campaigns itself imports the experiment
        # layer, so a top-level import here would be circular.
        from repro.campaigns.orchestrator import run_campaign_parallel

        campaign = run_campaign_parallel(config, store=store, jobs=jobs, resume=resume)
    else:
        campaign = run_campaign(config)
    return FigureResult(
        figure=figure,
        family=family,
        ptg_counts=campaign.ptg_counts(),
        unfairness=campaign.average_unfairness(),
        relative_makespan=campaign.average_relative_makespan(),
        campaign=campaign,
    )
