"""ASCII reporting of experiment results.

The reproduced figures are reported as plain-text series tables (one row
per x value, one column per strategy), which is the most faithful
plotting-free rendering of the paper's line plots and what the benchmark
harness prints.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.figures import FigureResult
from repro.experiments.mu_sweep import MuSweepResult
from repro.experiments.runner import CampaignResult
from repro.utils.tables import format_series, format_table


def render_figure(result: FigureResult) -> str:
    """Render one comparison figure (both panels) as text."""
    left = format_series(
        "#PTGs",
        result.ptg_counts,
        result.unfairness,
        title=f"Figure {result.figure} (left): unfairness, {result.family} PTGs",
    )
    right = format_series(
        "#PTGs",
        result.ptg_counts,
        result.relative_makespan,
        title=(
            f"Figure {result.figure} (right): average relative makespan, "
            f"{result.family} PTGs"
        ),
    )
    return left + "\n\n" + right


def render_mu_sweep(result: MuSweepResult) -> str:
    """Render the mu sweep (Figure 2) as text."""
    unfair = {
        f"{count} PTGs": result.unfairness[count] for count in result.ptg_counts
    }
    makespan = {
        f"{count} PTGs": result.average_makespan[count] for count in result.ptg_counts
    }
    left = format_series(
        "mu",
        result.mu_values,
        unfair,
        title=(
            f"Figure 2 (left): unfairness vs mu, WPS-{result.characteristic}, "
            f"{result.family} PTGs"
        ),
    )
    right = format_series(
        "mu",
        result.mu_values,
        makespan,
        title=(
            f"Figure 2 (right): average makespan vs mu, WPS-{result.characteristic}, "
            f"{result.family} PTGs"
        ),
        float_fmt=".1f",
    )
    return left + "\n\n" + right


def render_campaign_summary(result: CampaignResult) -> str:
    """One-row-per-strategy summary of a campaign (means over all points)."""
    unfairness = result.average_unfairness()
    relative = result.average_relative_makespan()
    rows: List[List] = []
    for name in result.strategy_names():
        mean_unfair = sum(unfairness[name]) / len(unfairness[name])
        mean_rel = sum(relative[name]) / len(relative[name])
        rows.append([name, mean_unfair, mean_rel])
    rows.sort(key=lambda row: row[1])
    return format_table(
        ["strategy", "mean unfairness", "mean relative makespan"],
        rows,
        title=f"Campaign summary ({result.config.family} PTGs, {len(result.experiments)} experiments)",
    )
