"""Experiment and campaign runners.

One *experiment* is: one platform, one workload (a set of concurrent
PTGs), a set of constraint strategies, and one pipeline (an allocation
procedure plus a concurrent mapper -- the paper's SCRAP-MAX + ready-list
by default, or any pairing selected through a
:class:`repro.scenarios.spec.PipelineSpec`).  For each strategy the
runner

1. schedules the workload with the concurrent scheduler,
2. executes the schedule on the discrete-event simulator,
3. computes the per-application slowdowns against the single-application
   reference makespans ``M_own`` (also simulated), the resulting
   unfairness, and the batch makespan.

A *campaign* runs many experiments (several workloads per PTG count,
several platforms) and aggregates them the way the paper's figures do:
average unfairness and average *relative* makespan per (strategy, number
of concurrent PTGs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.constraints.base import ConstraintStrategy
from repro.constraints.registry import paper_strategies
from repro.dag.graph import PTG
from repro.exceptions import ConfigurationError
from repro.experiments.workload import (
    PAPER_PTG_COUNTS,
    WorkloadSpec,
    make_workload,
    paper_workload_specs,
)
from repro.metrics.fairness import slowdowns, unfairness
from repro.metrics.makespan import average_relative_makespan
from repro.obs import trace
from repro.platform.grid5000 import all_sites
from repro.platform.multicluster import MultiClusterPlatform
from repro.scheduler.concurrent import ConcurrentScheduler
from repro.scheduler.single import SinglePTGScheduler
from repro.simulate.executor import ScheduleExecutor

#: Signature of campaign progress callbacks: called with a short,
#: human-readable string after each experiment (shared by the serial
#: runner and :mod:`repro.campaigns.orchestrator`).
ProgressCallback = Callable[[str], None]


@dataclass
class StrategyOutcome:
    """Measured outcome of one strategy on one experiment."""

    strategy: str
    betas: Dict[str, float]
    makespans: Dict[str, float]
    slowdowns: Dict[str, float]
    unfairness: float
    batch_makespan: float
    mean_application_makespan: float


@dataclass
class ExperimentResult:
    """Measured outcome of every strategy on one experiment."""

    platform: str
    workload: str
    n_ptgs: int
    own_makespans: Dict[str, float]
    outcomes: Dict[str, StrategyOutcome] = field(default_factory=dict)

    def unfairness_of(self, strategy_name: str) -> float:
        """Unfairness achieved by one strategy."""
        return self.outcomes[strategy_name].unfairness

    def batch_makespans(self) -> Dict[str, float]:
        """Batch (global) makespan of every strategy, for relative-makespan aggregation."""
        return {name: out.batch_makespan for name, out in self.outcomes.items()}


def compute_own_makespans(
    ptgs: Sequence[PTG],
    platform: MultiClusterPlatform,
    single_scheduler: Optional[SinglePTGScheduler] = None,
) -> Dict[str, float]:
    """Simulated makespan of each application when it has the platform alone."""
    scheduler = single_scheduler or SinglePTGScheduler()
    executor = ScheduleExecutor(platform)
    own: Dict[str, float] = {}
    with trace.span("experiment.own_makespans", apps=str(len(ptgs))):
        for ptg in ptgs:
            result = scheduler.schedule(ptg, platform)
            report = executor.execute([ptg], result.schedule)
            own[ptg.name] = report.makespan(ptg.name)
    return own


def run_experiment(
    ptgs: Sequence[PTG],
    platform: MultiClusterPlatform,
    strategies: Sequence[ConstraintStrategy],
    workload_label: str = "",
    own_makespans: Optional[Mapping[str, float]] = None,
    allocator=None,
    mapper=None,
) -> ExperimentResult:
    """Run one experiment: every strategy on one workload and one platform.

    *allocator* and *mapper* select the pipeline; ``None`` keeps the
    paper's defaults (SCRAP-MAX allocation, ready-list mapping with
    packing).  Instances are shared across the strategies of the
    experiment -- the built-in procedures are stateless per call.
    """
    if not ptgs:
        raise ConfigurationError("at least one PTG is required")
    if not strategies:
        raise ConfigurationError("at least one strategy is required")
    executor = ScheduleExecutor(platform)
    own = dict(own_makespans) if own_makespans else compute_own_makespans(ptgs, platform)

    result = ExperimentResult(
        platform=platform.name,
        workload=workload_label or f"workload-{len(ptgs)}",
        n_ptgs=len(ptgs),
        own_makespans=own,
    )
    for strat in strategies:
        scheduler = ConcurrentScheduler(strategy=strat, allocator=allocator, mapper=mapper)
        with trace.span(
            "experiment.strategy", strategy=strat.name, apps=str(len(ptgs))
        ):
            planned = scheduler.schedule(ptgs, platform)
            report = executor.execute(ptgs, planned.schedule)
        multi = report.makespans()
        sd = slowdowns(own, multi)
        result.outcomes[strat.name] = StrategyOutcome(
            strategy=strat.name,
            betas=dict(planned.betas),
            makespans=multi,
            slowdowns=sd,
            unfairness=unfairness(sd),
            batch_makespan=report.global_makespan(),
            mean_application_makespan=sum(multi.values()) / len(multi),
        )
    return result


@dataclass(frozen=True)
class CampaignConfig:
    """Configuration of a campaign (one figure of the paper).

    Parameters
    ----------
    family:
        Application family: ``"random"``, ``"fft"`` or ``"strassen"``.
    ptg_counts:
        Numbers of concurrent PTGs (x axis of the figures).
    workloads_per_point:
        Number of random workloads per PTG count (25 in the paper).
    platforms:
        Target platforms (the four Grid'5000 subsets in the paper).
    strategy_names:
        Names of the strategies to compare; defaults to the paper's set
        for the family (width-based strategies are dropped for Strassen).
    base_seed:
        Seed of the workload generation.
    max_tasks:
        Optional cap on random-PTG sizes (laptop-scale runs).
    pipeline:
        Optional :class:`repro.scenarios.spec.PipelineSpec` selecting
        the allocator / mapper / packing / mu by registry name;
        ``None`` keeps the paper's default pipeline.
    """

    family: str = "random"
    ptg_counts: Tuple[int, ...] = PAPER_PTG_COUNTS
    workloads_per_point: int = 25
    platforms: Optional[Tuple[MultiClusterPlatform, ...]] = None
    strategy_names: Optional[Tuple[str, ...]] = None
    base_seed: int = 0
    max_tasks: Optional[int] = None
    pipeline: Optional["PipelineSpec"] = None  # noqa: F821 - imported lazily

    def resolved_platforms(self) -> List[MultiClusterPlatform]:
        """The platforms of the campaign (default: the four Grid'5000 subsets)."""
        return list(self.platforms) if self.platforms else all_sites()

    def resolved_strategies(self) -> List[ConstraintStrategy]:
        """The strategy instances of the campaign."""
        mu = self.pipeline.mu if self.pipeline is not None else None
        include_width = self.family != "strassen"
        if self.strategy_names is None:
            if mu is None:
                return paper_strategies(self.family, include_width=include_width)
            from repro.constraints.registry import STRATEGY_NAMES

            names: Tuple[str, ...] = tuple(
                n for n in STRATEGY_NAMES if include_width or "width" not in n
            )
        else:
            names = self.strategy_names
        from repro.constraints.registry import strategy as make_strategy

        return [make_strategy(name, family=self.family, mu=mu) for name in names]

    def resolved_pipeline(self) -> "PipelineSpec":
        """The pipeline of the campaign (default: the paper's)."""
        if self.pipeline is not None:
            return self.pipeline
        # Imported lazily: repro.scenarios sits on the workload layer of
        # this package, so a top-level import here would be circular.
        from repro.scenarios.spec import PipelineSpec

        return PipelineSpec()

    def scenario_specs(self) -> List["ScenarioSpec"]:
        """The campaign grid as declarative scenario specs, in campaign order.

        One :class:`repro.scenarios.spec.ScenarioSpec` per (workload,
        platform) cell.  Every platform of the campaign must be
        addressable by name in the platform registry -- campaigns built
        on ad-hoc platform objects cannot be expressed declaratively.
        """
        from repro.scenarios.registry import PLATFORMS
        from repro.scenarios.spec import ScenarioSpec, WorkloadSpec2

        platforms = self.resolved_platforms()
        for platform in platforms:
            if platform.name not in PLATFORMS:
                raise ConfigurationError(
                    f"platform {platform.name!r} is not registered; register it "
                    f"in repro.scenarios.PLATFORMS to express this campaign as "
                    f"scenario specs (available: {PLATFORMS.names()})"
                )
        strategy_names = tuple(s.name for s in self.resolved_strategies())
        pipeline = self.resolved_pipeline()
        specs: List["ScenarioSpec"] = []
        for workload in paper_workload_specs(
            self.family,
            ptg_counts=self.ptg_counts,
            workloads_per_point=self.workloads_per_point,
            base_seed=self.base_seed,
            max_tasks=self.max_tasks,
        ):
            for platform in platforms:
                specs.append(
                    ScenarioSpec(
                        platform=platform.name,
                        workload=WorkloadSpec2.from_workload_spec(workload),
                        pipeline=pipeline,
                        strategies=strategy_names,
                    )
                )
        return specs


@dataclass
class CampaignResult:
    """Aggregated campaign results (one figure of the paper)."""

    config: CampaignConfig
    experiments: List[ExperimentResult] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # aggregation
    # ------------------------------------------------------------------ #
    def strategy_names(self) -> List[str]:
        """Strategies present in the results, in first-seen order."""
        names: Dict[str, None] = {}
        for exp in self.experiments:
            for name in exp.outcomes:
                names.setdefault(name, None)
        return list(names)

    def ptg_counts(self) -> List[int]:
        """Numbers of concurrent PTGs present in the results, sorted."""
        return sorted({exp.n_ptgs for exp in self.experiments})

    def _experiments_at(self, n_ptgs: int) -> List[ExperimentResult]:
        rows = [e for e in self.experiments if e.n_ptgs == n_ptgs]
        if not rows:
            raise ConfigurationError(f"no experiment with {n_ptgs} concurrent PTGs")
        return rows

    def average_unfairness(self) -> Dict[str, List[float]]:
        """Strategy -> unfairness averaged over experiments, ordered by PTG count."""
        counts = self.ptg_counts()
        result: Dict[str, List[float]] = {name: [] for name in self.strategy_names()}
        for count in counts:
            rows = self._experiments_at(count)
            for name in result:
                values = [r.unfairness_of(name) for r in rows]
                result[name].append(sum(values) / len(values))
        return result

    def average_relative_makespan(self) -> Dict[str, List[float]]:
        """Strategy -> average relative batch makespan, ordered by PTG count."""
        counts = self.ptg_counts()
        result: Dict[str, List[float]] = {name: [] for name in self.strategy_names()}
        for count in counts:
            rows = self._experiments_at(count)
            per_experiment = [r.batch_makespans() for r in rows]
            averaged = average_relative_makespan(per_experiment)
            for name in result:
                result[name].append(averaged[name])
        return result

    def average_mean_application_makespan(self) -> Dict[str, List[float]]:
        """Strategy -> plain average of the mean per-application makespan."""
        counts = self.ptg_counts()
        result: Dict[str, List[float]] = {name: [] for name in self.strategy_names()}
        for count in counts:
            rows = self._experiments_at(count)
            for name in result:
                values = [r.outcomes[name].mean_application_makespan for r in rows]
                result[name].append(sum(values) / len(values))
        return result


def run_campaign(
    config: CampaignConfig, progress: Optional[ProgressCallback] = None
) -> CampaignResult:
    """Run a full campaign: every workload on every platform.

    *progress*, when given, is called with a short string after each
    experiment (used by the CLI to show advancement).
    """
    platforms = config.resolved_platforms()
    strategies = config.resolved_strategies()
    allocator = mapper = None
    if config.pipeline is not None:
        from repro.scenarios.run import build_pipeline

        allocator, mapper = build_pipeline(config.pipeline)
    specs = paper_workload_specs(
        config.family,
        ptg_counts=config.ptg_counts,
        workloads_per_point=config.workloads_per_point,
        base_seed=config.base_seed,
        max_tasks=config.max_tasks,
    )
    result = CampaignResult(config=config)
    for spec in specs:
        ptgs = make_workload(spec)
        for platform in platforms:
            experiment = run_experiment(
                ptgs, platform, strategies, workload_label=spec.label(),
                allocator=allocator, mapper=mapper,
            )
            result.experiments.append(experiment)
            if progress is not None:
                progress(f"{spec.label()} on {platform.name}")
    return result
