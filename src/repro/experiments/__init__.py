"""Experiment harness reproducing the paper's evaluation (Section 7).

The harness is organised as:

* :mod:`repro.experiments.workload` -- generation of the three application
  families (random layered DAGs, FFT, Strassen) with the paper's
  parameters,
* :mod:`repro.experiments.runner` -- execution of one experiment
  (one platform + one workload + a set of constraint strategies) and of a
  whole campaign (several workloads x several platforms x several numbers
  of concurrent PTGs), producing unfairness and relative-makespan
  aggregates,
* :mod:`repro.experiments.mu_sweep` -- Figure 2: the effect of the ``mu``
  parameter of the WPS strategies,
* :mod:`repro.experiments.figures` -- Figures 3, 4 and 5: comparison of
  the eight constraint strategies on the three application families,
* :mod:`repro.experiments.tables` -- Table 1: the Grid'5000 platform
  subsets,
* :mod:`repro.experiments.reporting` -- ASCII rendering of every result.

Every harness function accepts a ``scale`` argument so that the same code
runs both the laptop-sized default campaign used by the benchmarks and
the full paper-sized campaign (``scale="paper"``).
"""

from repro.experiments.workload import (
    WorkloadSpec,
    make_workload,
    APPLICATION_FAMILIES,
)
from repro.experiments.runner import (
    ExperimentResult,
    CampaignConfig,
    CampaignResult,
    ProgressCallback,
    run_experiment,
    run_campaign,
)
from repro.experiments.mu_sweep import MuSweepResult, mu_sweep_scenarios, run_mu_sweep
from repro.experiments.figures import (
    FigureResult,
    figure_config,
    figure_scenarios,
    run_figure,
    FIGURE_FAMILIES,
)
from repro.experiments.tables import table1_rows, table1_text
from repro.experiments.reporting import render_figure, render_mu_sweep

__all__ = [
    "WorkloadSpec",
    "make_workload",
    "APPLICATION_FAMILIES",
    "ExperimentResult",
    "CampaignConfig",
    "CampaignResult",
    "ProgressCallback",
    "run_experiment",
    "run_campaign",
    "MuSweepResult",
    "run_mu_sweep",
    "mu_sweep_scenarios",
    "FigureResult",
    "run_figure",
    "figure_config",
    "figure_scenarios",
    "FIGURE_FAMILIES",
    "table1_rows",
    "table1_text",
    "render_figure",
    "render_mu_sweep",
]
