"""Figure 2: influence of the ``mu`` parameter of the WPS strategies.

"Figure 2 shows the evolution of the unfairness (left) and the average
makespan (right) when the mu parameter of the WPS-work strategy varies
from 0 to 1 for random PTGs."  Unfairness decreases with ``mu`` (closer to
an equal share) while the average makespan increases; the paper picks the
knee at ``mu = 0.7`` for WPS-work.

This module reproduces that sweep for any characteristic (work, cp,
width) and any application family, which also regenerates the data the
paper used to select ``mu = 0.5`` for WPS-cp and 0.3 / 0.5 for WPS-width.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.experiments.workload import WorkloadSpec, make_workload
from repro.platform.grid5000 import all_sites
from repro.platform.multicluster import MultiClusterPlatform

#: The mu values shown on the x axis of Figure 2.
PAPER_MU_VALUES = (0.0, 0.3, 0.5, 0.7, 0.8, 0.9, 1.0)

#: The characteristics a WPS strategy can proportion over.
WPS_CHARACTERISTICS = ("work", "cp", "width")


def _wps_strategy_name(characteristic: str) -> str:
    """The registry name of the WPS strategy over *characteristic*."""
    if characteristic not in WPS_CHARACTERISTICS:
        raise ConfigurationError(
            f"unknown characteristic {characteristic!r}; "
            f"available: {list(WPS_CHARACTERISTICS)}"
        )
    return f"WPS-{characteristic}"


@dataclass
class MuSweepResult:
    """Results of the mu sweep.

    ``unfairness[n_ptgs]`` and ``average_makespan[n_ptgs]`` are lists
    aligned with :attr:`mu_values` (one series per number of concurrent
    PTGs, exactly like the curves of Figure 2).
    """

    characteristic: str
    family: str
    mu_values: List[float]
    ptg_counts: List[int]
    unfairness: Dict[int, List[float]] = field(default_factory=dict)
    average_makespan: Dict[int, List[float]] = field(default_factory=dict)

    def recommended_mu(self, n_ptgs: Optional[int] = None) -> float:
        """The knee of the trade-off curve.

        Returns the smallest ``mu`` whose unfairness is within 10% of the
        best (largest-``mu``) unfairness -- i.e. "for mu >= knee there is
        only a little gain in terms of unfairness reduction while the
        average makespan increases more quickly".
        """
        counts = [n_ptgs] if n_ptgs is not None else self.ptg_counts
        knees: List[float] = []
        for count in counts:
            series = self.unfairness[count]
            best = min(series)
            span = max(series) - best
            threshold = best + 0.1 * span if span > 0 else best
            for mu, value in zip(self.mu_values, series):
                if value <= threshold:
                    knees.append(mu)
                    break
        return sum(knees) / len(knees)


def run_mu_sweep(
    characteristic: str = "work",
    family: str = "random",
    mu_values: Sequence[float] = PAPER_MU_VALUES,
    ptg_counts: Sequence[int] = (2, 4, 6, 8, 10),
    workloads_per_point: int = 25,
    platforms: Optional[Sequence[MultiClusterPlatform]] = None,
    base_seed: int = 0,
    max_tasks: Optional[int] = None,
) -> MuSweepResult:
    """Reproduce Figure 2 for one characteristic and one application family.

    Each (workload, platform, mu) cell resolves through the scenario
    plugin registries: the WPS strategy is selected by registry name,
    the cell's ``mu`` rides on a
    :class:`repro.scenarios.spec.PipelineSpec`, and the pipeline is
    instantiated by :func:`repro.scenarios.run.build_pipeline`.  The
    declarative counterpart (for registered platforms) is
    :func:`mu_sweep_scenarios`.
    """
    # Imported lazily: repro.scenarios sits on the workload layer of
    # this package, so a top-level import here would be circular.
    from repro.experiments.runner import run_experiment
    from repro.scenarios.registry import STRATEGIES
    from repro.scenarios.run import build_pipeline
    from repro.scenarios.spec import PipelineSpec

    strategy_name = _wps_strategy_name(characteristic)
    if not mu_values:
        raise ConfigurationError("mu_values must not be empty")
    if workloads_per_point < 1:
        raise ConfigurationError("workloads_per_point must be positive")
    platforms = list(platforms) if platforms else all_sites()
    result = MuSweepResult(
        characteristic=characteristic,
        family=family,
        mu_values=list(mu_values),
        ptg_counts=list(ptg_counts),
    )
    for count in ptg_counts:
        unfairness_series: List[float] = []
        makespan_series: List[float] = []
        # workloads and reference makespans are shared across mu values so
        # the sweep isolates the effect of mu
        scenario: List[Tuple] = []
        for index in range(workloads_per_point):
            spec = WorkloadSpec(
                family=family,
                n_ptgs=count,
                seed=base_seed + 1000 * count + index,
                max_tasks=max_tasks,
            )
            ptgs = make_workload(spec)
            for platform in platforms:
                scenario.append((spec, ptgs, platform))
        for mu in mu_values:
            pipeline = PipelineSpec(mu=float(mu))
            strategy = STRATEGIES.create(strategy_name, mu=pipeline.mu, family=family)
            allocator, mapper = build_pipeline(pipeline)
            unfairness_values: List[float] = []
            makespan_values: List[float] = []
            for spec, ptgs, platform in scenario:
                experiment = run_experiment(
                    ptgs, platform, [strategy], workload_label=spec.label(),
                    allocator=allocator, mapper=mapper,
                )
                outcome = experiment.outcomes[strategy.name]
                unfairness_values.append(outcome.unfairness)
                makespan_values.append(outcome.mean_application_makespan)
            unfairness_series.append(sum(unfairness_values) / len(unfairness_values))
            makespan_series.append(sum(makespan_values) / len(makespan_values))
        result.unfairness[count] = unfairness_series
        result.average_makespan[count] = makespan_series
    return result


def mu_sweep_scenarios(
    characteristic: str = "work",
    family: str = "random",
    mu_values: Sequence[float] = PAPER_MU_VALUES,
    ptg_counts: Sequence[int] = (2, 4, 6, 8, 10),
    workloads_per_point: int = 25,
    platform_names: Sequence[str] = ("lille", "nancy", "rennes", "sophia"),
    base_seed: int = 0,
    max_tasks: Optional[int] = None,
) -> List:
    """The mu sweep as a canned list of declarative scenario specs.

    One single-strategy :class:`repro.scenarios.spec.ScenarioSpec` per
    (PTG count, workload index, platform, mu) cell, in sweep order --
    the serialisable counterpart of :func:`run_mu_sweep` for
    registry-addressable platforms.  Because each cell's ``mu`` is part
    of its pipeline, every cell has a distinct content hash and a
    spec-keyed store resumes the sweep mid-way.
    """
    from repro.scenarios.builder import Scenario

    strategy_name = _wps_strategy_name(characteristic)
    specs: List = []
    for count in ptg_counts:
        for index in range(workloads_per_point):
            builder = Scenario.on("rennes").workload(
                family=family,
                n_ptgs=count,
                seed=base_seed + 1000 * count + index,
                max_tasks=max_tasks,
            ).pipeline(strategy=strategy_name)
            specs.extend(
                builder.sweep(platform=list(platform_names), mu=list(mu_values))
            )
    return specs
