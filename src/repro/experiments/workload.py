"""Workload generation for the experimental campaign.

The paper evaluates three application families:

* **random** -- layered DAGs of 10, 20 or 50 tasks with the width /
  regularity / density / jump parameters of Section 2,
* **fft** -- FFT PTGs of 4, 8 or 16 points (15 / 39 / 95 tasks),
* **strassen** -- Strassen PTGs (25 tasks, identical shape).

"We generate 25 random combinations for each number of concurrent PTGs
(2, 4, 6, 8 and 10).  As we target four different platforms, we thus have
100 different runs for each scenario."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.dag.fft import paper_fft_workload
from repro.dag.generator import generate_random_workload, RandomPTGConfig
from repro.dag.graph import PTG
from repro.dag.strassen import paper_strassen_workload
from repro.exceptions import ConfigurationError
from repro.utils.rng import ensure_rng

#: Families recognised by :func:`make_workload`.
APPLICATION_FAMILIES = ("random", "fft", "strassen")

#: Numbers of concurrent PTGs used in the paper's figures.
PAPER_PTG_COUNTS = (2, 4, 6, 8, 10)

#: Number of random workload combinations per PTG count in the paper.
PAPER_WORKLOADS_PER_POINT = 25


@dataclass(frozen=True)
class WorkloadSpec:
    """Description of one workload: a family, a size and a seed."""

    family: str = "random"
    n_ptgs: int = 4
    seed: int = 0
    #: Optional cap on the task count of random PTGs (smaller graphs make
    #: the laptop-scale benchmark campaign faster without changing the
    #: qualitative comparisons).
    max_tasks: Optional[int] = None

    def __post_init__(self) -> None:
        if self.family not in APPLICATION_FAMILIES:
            raise ConfigurationError(
                f"unknown application family {self.family!r}; "
                f"available: {APPLICATION_FAMILIES}"
            )
        if self.n_ptgs < 1:
            raise ConfigurationError(f"n_ptgs must be positive, got {self.n_ptgs}")

    def label(self) -> str:
        """Readable identifier used in logs and result records."""
        return f"{self.family}-x{self.n_ptgs}-seed{self.seed}"


def make_workload(spec: WorkloadSpec) -> List[PTG]:
    """Generate the PTGs described by *spec* (deterministic in the seed)."""
    rng = ensure_rng(spec.seed)
    prefix = f"{spec.family}{spec.seed}"
    if spec.family == "random":
        configs = None
        if spec.max_tasks is not None:
            counts = [n for n in (10, 20, 50) if n <= spec.max_tasks] or [spec.max_tasks]
            configs = [RandomPTGConfig(n_tasks=n) for n in counts]
        return generate_random_workload(
            rng, n_ptgs=spec.n_ptgs, configs=configs, name_prefix=prefix
        )
    if spec.family == "fft":
        return paper_fft_workload(rng, n_ptgs=spec.n_ptgs, name_prefix=prefix)
    if spec.family == "strassen":
        return paper_strassen_workload(rng, n_ptgs=spec.n_ptgs, name_prefix=prefix)
    raise ConfigurationError(f"unknown application family {spec.family!r}")


def paper_workload_specs(
    family: str,
    ptg_counts: Sequence[int] = PAPER_PTG_COUNTS,
    workloads_per_point: int = PAPER_WORKLOADS_PER_POINT,
    base_seed: int = 0,
    max_tasks: Optional[int] = None,
) -> List[WorkloadSpec]:
    """The workload grid of one figure of the paper.

    One :class:`WorkloadSpec` per (PTG count, workload index); seeds are
    derived deterministically from *base_seed* so campaigns are
    reproducible.
    """
    if workloads_per_point < 1:
        raise ConfigurationError("workloads_per_point must be positive")
    specs: List[WorkloadSpec] = []
    for count in ptg_counts:
        for index in range(workloads_per_point):
            specs.append(
                WorkloadSpec(
                    family=family,
                    n_ptgs=count,
                    seed=base_seed + 1000 * count + index,
                    max_tasks=max_tasks,
                )
            )
    return specs
