"""Workload generation for the experimental campaign.

The paper evaluates three application families:

* **random** -- layered DAGs of 10, 20 or 50 tasks with the width /
  regularity / density / jump parameters of Section 2,
* **fft** -- FFT PTGs of 4, 8 or 16 points (15 / 39 / 95 tasks),
* **strassen** -- Strassen PTGs (25 tasks, identical shape).

A fourth family, **mixed**, goes beyond the paper: the applications of
one batch cycle through random / FFT / Strassen, which exercises the
fairness strategies on heterogeneous competitor sets.

"We generate 25 random combinations for each number of concurrent PTGs
(2, 4, 6, 8 and 10).  As we target four different platforms, we thus have
100 different runs for each scenario."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.dag.fft import paper_fft_workload
from repro.dag.generator import generate_random_workload, RandomPTGConfig
from repro.dag.graph import PTG
from repro.dag.strassen import paper_strassen_workload
from repro.exceptions import ConfigurationError
from repro.utils.rng import ensure_rng

#: Families recognised by :func:`make_workload`.
APPLICATION_FAMILIES = ("random", "fft", "strassen", "mixed")

#: Family cycle of the ``mixed`` workload family: application ``i`` of a
#: mixed workload is drawn from ``MIXED_CYCLE[i % 3]``, so the batch
#: combines all three of the paper's application shapes.
MIXED_CYCLE = ("random", "fft", "strassen")

#: Numbers of concurrent PTGs used in the paper's figures.
PAPER_PTG_COUNTS = (2, 4, 6, 8, 10)

#: Number of random workload combinations per PTG count in the paper.
PAPER_WORKLOADS_PER_POINT = 25


def _plugin_families():
    """The family plugin registry, or ``None`` while it is bootstrapping.

    Imported lazily because :mod:`repro.scenarios.registry` imports this
    module to build its built-in entries; once that import completes,
    the registry is the authority on which families exist (including
    third-party ones registered through the plugin API).
    """
    try:
        from repro.scenarios.registry import FAMILIES
    except ImportError:  # pragma: no cover - only during bootstrap
        return None
    return FAMILIES


@dataclass(frozen=True)
class WorkloadSpec:
    """Description of one workload: a family, a size and a seed."""

    family: str = "random"
    n_ptgs: int = 4
    seed: int = 0
    #: Optional cap on the task count of random PTGs (smaller graphs make
    #: the laptop-scale benchmark campaign faster without changing the
    #: qualitative comparisons).
    max_tasks: Optional[int] = None

    def __post_init__(self) -> None:
        if self.family not in APPLICATION_FAMILIES:
            families = _plugin_families()
            if families is None or self.family not in families:
                available = list(families.names()) if families is not None \
                    else list(APPLICATION_FAMILIES)
                raise ConfigurationError(
                    f"unknown application family {self.family!r}; "
                    f"available: {available}"
                )
        if self.n_ptgs < 1:
            raise ConfigurationError(f"n_ptgs must be positive, got {self.n_ptgs}")

    def label(self) -> str:
        """Readable identifier used in logs and result records."""
        return f"{self.family}-x{self.n_ptgs}-seed{self.seed}"


def _random_configs(max_tasks: Optional[int]) -> Optional[List[RandomPTGConfig]]:
    """Configs for random PTGs under an optional task-count cap (``None``: paper grid)."""
    if max_tasks is None:
        return None
    counts = [n for n in (10, 20, 50) if n <= max_tasks] or [max_tasks]
    return [RandomPTGConfig(n_tasks=n) for n in counts]


def _mixed_workload(rng, spec: WorkloadSpec) -> List[PTG]:
    """Generate a mixed workload: applications cycle through :data:`MIXED_CYCLE`."""
    ptgs: List[PTG] = []
    for index in range(spec.n_ptgs):
        family = MIXED_CYCLE[index % len(MIXED_CYCLE)]
        prefix = f"{spec.family}{spec.seed}-{index}"
        if family == "random":
            ptgs.extend(
                generate_random_workload(
                    rng, n_ptgs=1,
                    configs=_random_configs(spec.max_tasks),
                    name_prefix=prefix,
                )
            )
        elif family == "fft":
            ptgs.extend(paper_fft_workload(rng, n_ptgs=1, name_prefix=prefix))
        else:
            ptgs.extend(paper_strassen_workload(rng, n_ptgs=1, name_prefix=prefix))
    return ptgs


def make_workload(spec: WorkloadSpec) -> List[PTG]:
    """Generate the PTGs described by *spec* (deterministic in the seed).

    The four built-in families are generated directly; any other family
    is dispatched to the :data:`repro.scenarios.registry.FAMILIES`
    plugin registry, so third-party families work everywhere a workload
    spec does (scenarios, campaigns, worker processes -- provided the
    plugin is registered in the executing process).
    """
    rng = ensure_rng(spec.seed)
    prefix = f"{spec.family}{spec.seed}"
    if spec.family == "random":
        return generate_random_workload(
            rng, n_ptgs=spec.n_ptgs,
            configs=_random_configs(spec.max_tasks),
            name_prefix=prefix,
        )
    if spec.family == "fft":
        return paper_fft_workload(rng, n_ptgs=spec.n_ptgs, name_prefix=prefix)
    if spec.family == "strassen":
        return paper_strassen_workload(rng, n_ptgs=spec.n_ptgs, name_prefix=prefix)
    if spec.family == "mixed":
        return _mixed_workload(rng, spec)
    families = _plugin_families()
    if families is None:
        raise ConfigurationError(f"unknown application family {spec.family!r}")
    return families.create(
        spec.family, n_ptgs=spec.n_ptgs, seed=spec.seed, max_tasks=spec.max_tasks
    )


def paper_workload_specs(
    family: str,
    ptg_counts: Sequence[int] = PAPER_PTG_COUNTS,
    workloads_per_point: int = PAPER_WORKLOADS_PER_POINT,
    base_seed: int = 0,
    max_tasks: Optional[int] = None,
) -> List[WorkloadSpec]:
    """The workload grid of one figure of the paper.

    One :class:`WorkloadSpec` per (PTG count, workload index); seeds are
    derived deterministically from *base_seed* so campaigns are
    reproducible.
    """
    if workloads_per_point < 1:
        raise ConfigurationError("workloads_per_point must be positive")
    specs: List[WorkloadSpec] = []
    for count in ptg_counts:
        for index in range(workloads_per_point):
            specs.append(
                WorkloadSpec(
                    family=family,
                    n_ptgs=count,
                    seed=base_seed + 1000 * count + index,
                    max_tasks=max_tasks,
                )
            )
    return specs
