"""Random number generator helpers.

All stochastic code in the library (DAG generation, cost sampling,
experiment workloads) accepts either an integer seed, an existing
:class:`numpy.random.Generator`, or ``None``.  These helpers normalise the
argument so that the rest of the code always works with a ``Generator``,
which keeps experiments reproducible and avoids any reliance on global
NumPy random state.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *rng*.

    Parameters
    ----------
    rng:
        ``None`` (fresh non-deterministic generator), an ``int`` seed, a
        :class:`numpy.random.SeedSequence`, or an existing ``Generator``
        (returned unchanged).

    Examples
    --------
    >>> g = ensure_rng(123)
    >>> h = ensure_rng(123)
    >>> float(g.random()) == float(h.random())
    True
    >>> g2 = ensure_rng(g)
    >>> g2 is g
    True
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(rng)
    raise TypeError(
        f"expected None, an int seed or a numpy Generator, got {type(rng).__name__}"
    )


def spawn_rngs(rng: RngLike, count: int) -> List[np.random.Generator]:
    """Derive *count* statistically independent generators from *rng*.

    Used by the experiment runner so that each (platform, workload, seed)
    combination gets its own stream and results do not depend on the order
    in which scenarios are executed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    base = ensure_rng(rng)
    seeds = base.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def sample_log_uniform(
    rng: np.random.Generator, low: float, high: float, size: Optional[int] = None
):
    """Sample from a log-uniform distribution on ``[low, high]``.

    Data sizes in the paper span more than an order of magnitude
    (4M to 121M elements); a log-uniform draw spreads samples evenly
    across that range in relative terms.
    """
    if low <= 0 or high <= 0:
        raise ValueError("log-uniform bounds must be positive")
    if low > high:
        raise ValueError(f"low ({low}) must not exceed high ({high})")
    return np.exp(rng.uniform(np.log(low), np.log(high), size=size))


def sample_choice(rng: np.random.Generator, options: Iterable):
    """Pick one element of *options* uniformly at random (as a Python object)."""
    options = list(options)
    if not options:
        raise ValueError("cannot choose from an empty sequence")
    idx = int(rng.integers(0, len(options)))
    return options[idx]
