"""Minimal ASCII table rendering.

The experiment harness reports every reproduced table and figure as plain
text (rows of numbers) so the output can be compared against the paper
without plotting dependencies.  The two helpers here are deliberately
small: a column-aligned table and a "series" formatter that prints one row
per x-value with one column per labelled series (the textual equivalent of
the paper's line plots).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Union

Number = Union[int, float]


def _fmt_cell(value, float_fmt: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    float_fmt: str = ".3f",
    title: str = "",
) -> str:
    """Render *rows* as a column-aligned ASCII table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of rows; every row must have ``len(headers)`` entries.
    float_fmt:
        ``format()`` spec applied to float cells.
    title:
        Optional title printed above the table.

    Examples
    --------
    >>> print(format_table(["a", "b"], [[1, 2.5]], float_fmt=".1f"))
    a  b
    -----
    1  2.5
    """
    rows = [list(r) for r in rows]
    for r in rows:
        if len(r) != len(headers):
            raise ValueError(
                f"row has {len(r)} cells but table has {len(headers)} columns"
            )
    cells = [[_fmt_cell(c, float_fmt) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line) + " ")
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence,
    series: Mapping[str, Sequence[Number]],
    float_fmt: str = ".3f",
    title: str = "",
) -> str:
    """Render labelled series (one column per label) against *x_values*.

    This is the textual rendering used for the paper's figures: the x axis
    is typically the number of concurrent PTGs or the ``mu`` parameter and
    each series is one constraint-determination strategy.
    """
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} values for {len(x_values)} x points"
            )
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows, float_fmt=float_fmt, title=title)


def series_from_records(
    records: Iterable[Mapping], x_key: str, series_key: str, value_key: str
) -> Dict[str, List[float]]:
    """Pivot flat result records into ``{series: [values ordered by x]}``.

    ``records`` is an iterable of mappings (one per measurement).  The
    x-values are sorted in natural order, and missing combinations raise a
    ``KeyError`` so silent gaps in an experiment sweep cannot go unnoticed.
    """
    records = list(records)
    xs = sorted({r[x_key] for r in records})
    names = sorted({r[series_key] for r in records})
    index = {(r[series_key], r[x_key]): r[value_key] for r in records}
    out: Dict[str, List[float]] = {}
    for name in names:
        out[name] = []
        for x in xs:
            if (name, x) not in index:
                raise KeyError(f"missing record for series {name!r} at {x_key}={x!r}")
            out[name].append(index[(name, x)])
    return out
