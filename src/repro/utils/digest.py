"""Canonical content digests shared by campaigns and scenarios.

Both the campaign shard keys (:mod:`repro.campaigns.shards`) and the
scenario content hashes (:mod:`repro.scenarios.spec`) are SHA-256
digests of the canonical JSON serialisation of a payload describing the
*content* of a computation.  The helpers live here, in the
dependency-light :mod:`repro.utils` layer, so both subsystems derive
their keys from exactly the same scheme without importing each other.
"""

from __future__ import annotations

import hashlib
import json

from repro.platform.multicluster import MultiClusterPlatform


def content_digest(payload: object) -> str:
    """SHA-256 hex digest of the canonical JSON serialisation of *payload*.

    Keys are sorted and separators fixed, so the digest is independent of
    dict insertion order and of the process that computes it.

    Examples
    --------
    >>> content_digest({"b": 1, "a": 2}) == content_digest({"a": 2, "b": 1})
    True
    """
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def platform_fingerprint(platform: MultiClusterPlatform) -> str:
    """Content fingerprint of a platform (clusters, speeds and network).

    Two platform objects share a fingerprint exactly when they describe
    the same clusters and topology, independent of object identity.
    """
    topology = platform.topology
    payload = {
        "clusters": [
            {
                "name": c.name,
                "processors": c.num_processors,
                "speed_gflops": c.speed_gflops,
            }
            for c in platform.clusters
        ],
        "switches": [
            {"name": s.name, "bandwidth": s.bandwidth, "latency": s.latency}
            for s in topology.switches
        ],
        "attachment": dict(topology.attachment),
        "link_bandwidth": topology.link_bandwidth,
        "link_latency": topology.link_latency,
    }
    return content_digest(payload)
