"""Argument validation helpers.

These raise :class:`repro.exceptions.ConfigurationError` with uniform,
informative messages.  Centralising the checks keeps the algorithmic code
readable and guarantees consistent error reporting across the package.
"""

from __future__ import annotations

from numbers import Real

from repro.exceptions import ConfigurationError


def check_positive(name: str, value: Real) -> None:
    """Require ``value > 0``."""
    if not isinstance(value, Real) or not value > 0:
        raise ConfigurationError(f"{name} must be a positive number, got {value!r}")


def check_non_negative(name: str, value: Real) -> None:
    """Require ``value >= 0``."""
    if not isinstance(value, Real) or value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value!r}")


def check_in_unit_interval(name: str, value: Real, *, closed_low: bool = True) -> None:
    """Require ``value`` in ``[0, 1]`` (or ``(0, 1]`` when *closed_low* is False)."""
    if not isinstance(value, Real):
        raise ConfigurationError(f"{name} must be a number in [0, 1], got {value!r}")
    low_ok = value >= 0 if closed_low else value > 0
    if not (low_ok and value <= 1):
        interval = "[0, 1]" if closed_low else "(0, 1]"
        raise ConfigurationError(f"{name} must be in {interval}, got {value!r}")


def check_fraction(name: str, value: Real) -> None:
    """Require a resource fraction in ``(0, 1]`` (the domain of ``beta``)."""
    check_in_unit_interval(name, value, closed_low=False)


def check_int_at_least(name: str, value, minimum: int) -> None:
    """Require an integer ``value >= minimum``."""
    if not isinstance(value, (int,)) or isinstance(value, bool) or value < minimum:
        raise ConfigurationError(
            f"{name} must be an integer >= {minimum}, got {value!r}"
        )
