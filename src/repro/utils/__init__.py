"""Small shared utilities used across the :mod:`repro` package.

The submodules are intentionally dependency-free (only the standard
library and NumPy) so they can be imported from anywhere in the package
without creating import cycles:

* :mod:`repro.utils.rng` -- helpers to normalise random-number-generator
  arguments (seed, ``numpy.random.Generator`` or ``None``).
* :mod:`repro.utils.tables` -- minimal ASCII table rendering used by the
  experiment reporting code and the command line interface.
* :mod:`repro.utils.validation` -- argument validation helpers that raise
  the package's own exception types with informative messages.
"""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.tables import format_table, format_series
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_in_unit_interval,
    check_fraction,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "format_table",
    "format_series",
    "check_positive",
    "check_non_negative",
    "check_in_unit_interval",
    "check_fraction",
]
