"""Evaluation metrics (Section 7 of the paper).

* :func:`slowdown` -- per-application slowdown ``M_own / M_multi``
  (Eq. 3): the ratio of the makespan the application achieves when it has
  the platform on its own to the makespan it achieves in presence of
  concurrency.  A value of 1 means the application is not affected by the
  competition; smaller values mean it is slowed down.
* :func:`average_slowdown` (Eq. 4) and :func:`unfairness` (Eq. 5) -- the
  unfairness of a schedule is the summed absolute deviation of the
  per-application slowdowns from their mean; a low value means every
  application experiences a similar slowdown, i.e. the schedule is fair.
* :func:`relative_makespans` / :func:`average_relative_makespan` -- for a
  given experiment the makespan achieved by each strategy is divided by
  the best makespan achieved by any strategy on that experiment, so
  extreme values are not smoothed away by averaging across experiments.
* :mod:`repro.metrics.utilisation` -- platform usage diagnostics
  (parallel efficiency / resource waste) used by the ablation studies.
* :mod:`repro.metrics.windows` -- windowed / time-sliding metrics for
  online runs: rolling utilisation, per-window fairness and throughput,
  per-tenant stall times.
"""

from repro.metrics.fairness import slowdown, average_slowdown, unfairness, slowdowns
from repro.metrics.makespan import (
    relative_makespans,
    average_relative_makespan,
    best_makespan,
)
from repro.metrics.utilisation import schedule_utilisation, work_efficiency
from repro.metrics.windows import (
    WindowedMetrics,
    rolling_utilisation,
    tenant_stall_times,
    window_edges,
    window_fairness,
    windowed_metrics,
)

__all__ = [
    "slowdown",
    "slowdowns",
    "average_slowdown",
    "unfairness",
    "relative_makespans",
    "average_relative_makespan",
    "best_makespan",
    "schedule_utilisation",
    "work_efficiency",
    "WindowedMetrics",
    "windowed_metrics",
    "window_edges",
    "window_fairness",
    "rolling_utilisation",
    "tenant_stall_times",
]
