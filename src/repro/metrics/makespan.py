"""Makespan-based metrics.

"As a simple average over a large range of experiments can smooth results
and thus hide some extreme values, we consider the average relative
makespan instead.  For each experiment [...] the makespan achieved by each
strategy [...] is divided by the best makespan achieved for this
experiment."  (paper, Section 7)
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence

from repro.exceptions import ConfigurationError


def best_makespan(per_strategy: Mapping[str, float]) -> float:
    """Smallest makespan achieved by any strategy on one experiment."""
    if not per_strategy:
        raise ConfigurationError("at least one strategy result is required")
    best = min(per_strategy.values())
    if best <= 0:
        raise ConfigurationError(f"makespans must be positive, got {per_strategy}")
    return best


def relative_makespans(per_strategy: Mapping[str, float]) -> Dict[str, float]:
    """Makespan of each strategy divided by the best makespan of the experiment.

    The best strategy of the experiment gets exactly 1.0; every other
    strategy gets a value >= 1.0.
    """
    best = best_makespan(per_strategy)
    return {name: value / best for name, value in per_strategy.items()}


def average_relative_makespan(
    per_experiment: Sequence[Mapping[str, float]]
) -> Dict[str, float]:
    """Average the per-experiment relative makespans of each strategy.

    Every experiment must report the same strategy set; this mirrors the
    paper's aggregation over "100 runs" (25 workloads x 4 platforms).
    """
    experiments = list(per_experiment)
    if not experiments:
        raise ConfigurationError("at least one experiment is required")
    names = set(experiments[0])
    for exp in experiments:
        if set(exp) != names:
            raise ConfigurationError(
                "every experiment must report the same strategies; "
                f"expected {sorted(names)}, got {sorted(exp)}"
            )
    totals: Dict[str, float] = {name: 0.0 for name in names}
    for exp in experiments:
        rel = relative_makespans(exp)
        for name, value in rel.items():
            totals[name] += value
    return {name: totals[name] / len(experiments) for name in names}


def average_makespan(per_experiment: Sequence[Mapping[str, float]]) -> Dict[str, float]:
    """Plain average of the absolute makespans of each strategy.

    Used for the mu-sweep of Figure 2, where "we do not use the average
    relative makespan [...] but a simple average over the 100 runs as only
    one scheduling heuristic is studied."
    """
    experiments = list(per_experiment)
    if not experiments:
        raise ConfigurationError("at least one experiment is required")
    names = set(experiments[0])
    for exp in experiments:
        if set(exp) != names:
            raise ConfigurationError("every experiment must report the same strategies")
    return {
        name: sum(exp[name] for exp in experiments) / len(experiments) for name in names
    }
