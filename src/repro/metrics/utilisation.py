"""Resource usage diagnostics.

These metrics are not plotted in the paper's figures but quantify the
"wasting of resources" the ES strategy is criticised for and the
"parallel efficiency" trade-off HCPA targets; the ablation benchmarks use
them.
"""

from __future__ import annotations

from typing import Dict

from repro.exceptions import ConfigurationError
from repro.mapping.schedule import Schedule
from repro.platform.multicluster import MultiClusterPlatform


def schedule_utilisation(schedule: Schedule, platform: MultiClusterPlatform) -> float:
    """Fraction of the platform's processor time kept busy by *schedule*.

    Computed over the horizon ``[0, global makespan]``.
    """
    horizon = schedule.global_makespan()
    if horizon <= 0:
        return 0.0
    busy = sum(schedule.work_on(cluster.name) for cluster in platform)
    return busy / (horizon * platform.total_processors)


def work_efficiency(
    total_work_flops: float, schedule: Schedule, platform: MultiClusterPlatform
) -> float:
    """Useful flops divided by the flops the platform could deliver.

    ``total_work_flops`` is the sequential work of the scheduled
    applications; the denominator is the aggregate platform power times
    the schedule's global makespan.  Low values indicate either idle
    processors or inefficient (over-)parallelisation of tasks.
    """
    if total_work_flops < 0:
        raise ConfigurationError("total_work_flops must be non-negative")
    horizon = schedule.global_makespan()
    if horizon <= 0:
        return 0.0
    capacity = platform.total_power_flops * horizon
    return total_work_flops / capacity


def per_cluster_utilisation(
    schedule: Schedule, platform: MultiClusterPlatform
) -> Dict[str, float]:
    """Utilisation of each cluster over the schedule horizon."""
    horizon = schedule.global_makespan()
    result: Dict[str, float] = {}
    for cluster in platform:
        if horizon <= 0:
            result[cluster.name] = 0.0
        else:
            result[cluster.name] = schedule.work_on(cluster.name) / (
                horizon * cluster.num_processors
            )
    return result
