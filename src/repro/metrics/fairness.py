"""Slowdown and unfairness metrics (Equations 3-5 of the paper)."""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from repro.exceptions import ConfigurationError


def slowdown(makespan_own: float, makespan_multi: float) -> float:
    """Slowdown of one application (Eq. 3): ``M_own / M_multi``.

    ``M_own`` is the makespan achieved when the application has the
    resources on its own, ``M_multi`` the makespan achieved in presence of
    concurrency.  Since concurrency can only delay an application,
    ``M_multi >= M_own`` and the slowdown lies in ``(0, 1]`` (up to noise
    in the simulation: a marginally larger value can appear when the
    concurrent mapping happens to find a slightly better placement).
    """
    if makespan_own <= 0:
        raise ConfigurationError(f"makespan_own must be positive, got {makespan_own}")
    if makespan_multi <= 0:
        raise ConfigurationError(
            f"makespan_multi must be positive, got {makespan_multi}"
        )
    return makespan_own / makespan_multi


def slowdowns(
    own: Mapping[str, float], multi: Mapping[str, float]
) -> Dict[str, float]:
    """Per-application slowdowns for two makespan dictionaries keyed by name."""
    missing = set(own) ^ set(multi)
    if missing:
        raise ConfigurationError(
            f"own and multi makespans must cover the same applications; differ on {sorted(missing)}"
        )
    if not own:
        raise ConfigurationError("at least one application is required")
    return {name: slowdown(own[name], multi[name]) for name in own}


def average_slowdown(values: Mapping[str, float] | Sequence[float]) -> float:
    """Average slowdown over the set of applications (Eq. 4)."""
    seq = list(values.values()) if isinstance(values, Mapping) else list(values)
    if not seq:
        raise ConfigurationError("at least one slowdown value is required")
    return sum(seq) / len(seq)


def unfairness(values: Mapping[str, float] | Sequence[float]) -> float:
    """Unfairness of a schedule (Eq. 5).

    Sum of the absolute deviations of the per-application slowdowns from
    the average slowdown.  Zero means perfectly fair (every application
    experiences exactly the same slowdown); the value grows both with the
    spread of the slowdowns and with the number of applications.
    """
    seq = list(values.values()) if isinstance(values, Mapping) else list(values)
    if not seq:
        raise ConfigurationError("at least one slowdown value is required")
    avg = sum(seq) / len(seq)
    return sum(abs(s - avg) for s in seq)
