"""Windowed / time-sliding metrics for online (streaming) runs.

The batch metrics of the paper summarise one closed experiment; a
streaming run needs the time dimension: how fair and how loaded was the
platform *per window of time* while the arrival stream was flowing.
This module bins a :class:`~repro.streaming.engine.StreamResult` into
fixed-width windows and computes

* **rolling utilisation** -- the fraction of platform processor-seconds
  kept busy within each window (exact interval-overlap accounting, not
  sampling);
* **window fairness** -- the paper's unfairness (Eq. 5) evaluated per
  window over the applications *completing* in that window, using the
  streaming slowdown proxy ``service / response`` (service = completion
  minus first task start, response = completion minus submission; the
  proxy avoids re-simulating every application alone, which a
  thousand-submission stream cannot afford);
* **throughput counters** -- arrivals and completions per window;
* **per-tenant stall time** -- the total time each tenant's submissions
  spent queued before their first task started.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.mapping.schedule import Schedule
from repro.metrics.fairness import unfairness
from repro.platform.multicluster import MultiClusterPlatform

#: Number of windows used when no window width is requested.
DEFAULT_WINDOW_COUNT = 20


@dataclass
class WindowedMetrics:
    """Per-window view of one streaming run.

    All series share the bin layout of :attr:`edges` (``len(edges) - 1``
    windows covering ``[0, horizon]``).
    """

    window: float
    edges: List[float]
    utilisation: List[float]
    arrivals: List[int]
    completions: List[int]
    fairness: List[float]
    mean_response: List[float]

    @property
    def n_windows(self) -> int:
        """Number of windows of the series."""
        return len(self.edges) - 1

    def to_dict(self) -> Dict:
        """Plain-JSON representation (inverse of :meth:`from_dict`)."""
        return {
            "window": self.window,
            "edges": list(self.edges),
            "utilisation": list(self.utilisation),
            "arrivals": list(self.arrivals),
            "completions": list(self.completions),
            "fairness": list(self.fairness),
            "mean_response": list(self.mean_response),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "WindowedMetrics":
        """Rebuild the series from :meth:`to_dict` output."""
        return cls(
            window=float(payload["window"]),
            edges=[float(v) for v in payload["edges"]],
            utilisation=[float(v) for v in payload["utilisation"]],
            arrivals=[int(v) for v in payload["arrivals"]],
            completions=[int(v) for v in payload["completions"]],
            fairness=[float(v) for v in payload["fairness"]],
            mean_response=[float(v) for v in payload["mean_response"]],
        )


def window_edges(horizon: float, window: float) -> np.ndarray:
    """Bin edges covering ``[0, horizon]`` in steps of *window*.

    The grid keeps every window *window* seconds wide; the last edge is
    the first grid point at or beyond the horizon (nudged up to the
    horizon itself when rounding would leave it short), so every
    instant of the run falls in exactly one window.
    """
    if window <= 0:
        raise ConfigurationError(f"window must be positive, got {window}")
    if horizon <= 0:
        return np.array([0.0, window])
    count = max(1, int(np.ceil(horizon / window - 1e-9)))
    edges = np.arange(count + 1, dtype=float) * window
    edges[-1] = max(edges[-1], horizon)
    return edges


def rolling_utilisation(
    schedule: Schedule,
    platform: MultiClusterPlatform,
    edges: Sequence[float],
) -> List[float]:
    """Busy fraction of the platform per window (exact overlap).

    For each window the busy processor-seconds are the summed overlaps
    of every reservation with the window, divided by the platform's
    processor-seconds in that window.
    """
    edges = np.asarray(edges, dtype=float)
    if edges.ndim != 1 or edges.size < 2:
        raise ConfigurationError("at least one window (two edges) is required")
    entries = list(schedule)
    if not entries:
        return [0.0] * (edges.size - 1)
    starts = np.array([e.start for e in entries])
    finishes = np.array([e.finish for e in entries])
    procs = np.array([e.num_processors for e in entries], dtype=float)
    lo = np.maximum(starts[:, None], edges[None, :-1])
    hi = np.minimum(finishes[:, None], edges[None, 1:])
    overlap = np.clip(hi - lo, 0.0, None) * procs[:, None]
    widths = np.diff(edges)
    capacity = widths * platform.total_processors
    return (overlap.sum(axis=0) / capacity).tolist()


def _slowdown_proxy(
    arrival: float, first_start: float, completion: float
) -> float:
    """Streaming slowdown proxy ``service / response`` of one application.

    Lies in ``(0, 1]``: 1 means the application started the instant it
    was submitted; smaller values mean it spent a larger share of its
    response time stalled behind competitors.  Degenerate zero-length
    applications count as unslowed.
    """
    response = completion - arrival
    if response <= 0:
        return 1.0
    return (completion - first_start) / response


def window_fairness(
    arrival_times: Dict[str, float],
    first_starts: Dict[str, float],
    completion_times: Dict[str, float],
    edges: Sequence[float],
) -> Tuple[List[float], List[float]]:
    """Per-window unfairness and mean response over completing applications.

    Applications are attributed to the window their completion falls in;
    a window with no completions scores 0 unfairness and 0 mean
    response.  Unfairness is the paper's Eq. 5 evaluated over the
    streaming slowdown proxies of the window's applications.
    """
    edges = np.asarray(edges, dtype=float)
    bins: List[List[str]] = [[] for _ in range(edges.size - 1)]
    for name, completion in completion_times.items():
        index = int(np.searchsorted(edges, completion, side="right")) - 1
        index = min(max(index, 0), len(bins) - 1)
        bins[index].append(name)
    fairness: List[float] = []
    mean_response: List[float] = []
    for names in bins:
        if not names:
            fairness.append(0.0)
            mean_response.append(0.0)
            continue
        proxies = [
            _slowdown_proxy(
                arrival_times[name], first_starts[name], completion_times[name]
            )
            for name in names
        ]
        fairness.append(unfairness(proxies))
        responses = [completion_times[n] - arrival_times[n] for n in names]
        mean_response.append(sum(responses) / len(responses))
    return fairness, mean_response


def tenant_stall_times(
    arrival_times: Dict[str, float],
    first_starts: Dict[str, float],
    tenants: Dict[str, str],
) -> Dict[str, float]:
    """Total stall time per tenant (first task start minus submission).

    Applications without a tenant label are aggregated under ``""``.
    """
    stalls: Dict[str, float] = {}
    for name, arrival in arrival_times.items():
        tenant = tenants.get(name, "")
        stalls[tenant] = stalls.get(tenant, 0.0) + (first_starts[name] - arrival)
    return stalls


def windowed_metrics(
    result,
    platform: Optional[MultiClusterPlatform] = None,
    window: Optional[float] = None,
) -> WindowedMetrics:
    """Bin a :class:`~repro.streaming.engine.StreamResult` into windows.

    Parameters
    ----------
    result:
        The streaming result (anything exposing ``schedule``,
        ``arrival_times``, ``first_starts``, ``completion_times`` and
        ``horizon()``).
    platform:
        The platform the run targeted; defaults to ``result.platform``.
    window:
        Window width in seconds; ``None`` splits the horizon into
        :data:`DEFAULT_WINDOW_COUNT` equal windows.
    """
    platform = platform if platform is not None else result.platform
    horizon = result.horizon()
    if window is None:
        window = horizon / DEFAULT_WINDOW_COUNT if horizon > 0 else 1.0
    edges = window_edges(horizon, window)
    arrivals = np.histogram(
        list(result.arrival_times.values()), bins=edges
    )[0].tolist()
    fairness, mean_response = window_fairness(
        result.arrival_times, result.first_starts, result.completion_times, edges
    )
    completions = np.histogram(
        list(result.completion_times.values()), bins=edges
    )[0].tolist()
    return WindowedMetrics(
        window=float(window),
        edges=edges.tolist(),
        utilisation=rolling_utilisation(result.schedule, platform, edges),
        arrivals=[int(v) for v in arrivals],
        completions=[int(v) for v in completions],
        fairness=fairness,
        mean_response=mean_response,
    )
