"""Declarative, serialisable description of an online arrival stream.

An :class:`ArrivalSpec` is the ``arrivals`` section of a
:class:`~repro.scenarios.spec.ScenarioSpec`: it selects the arrival
process by :data:`~repro.scenarios.registry.ARRIVALS` registry name, the
application family by :data:`~repro.scenarios.registry.FAMILIES` name,
and fixes the stream length, the seed and the multi-tenant labelling --
so a JSON file fully determines a streaming workload, exactly like the
offline workload section determines a batch one.

:func:`generate_arrivals` materialises the stream: the submission
instants come from the seeded process, the graphs from the same
deterministic workload generator the offline harness uses (equal seeds
produce bit-identical graphs), and tenants are assigned round-robin.

Examples
--------
>>> spec = ArrivalSpec.from_dict({"process": "poisson", "rate": 0.1,
...                               "n_arrivals": 4, "family": "fft"})
>>> spec.process, spec.n_arrivals
('poisson', 4)
>>> ArrivalSpec.from_dict(spec.to_dict()) == spec
True
>>> arrivals = generate_arrivals(spec)
>>> [a.ptg.n_tasks > 0 for a in arrivals]
[True, True, True, True]
>>> all(a.time <= b.time for a, b in zip(arrivals, arrivals[1:]))
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.experiments.workload import WorkloadSpec, make_workload
from repro.scenarios.registry import ARRIVALS, FAMILIES
from repro.streaming.arrivals import ArrivalProcess
from repro.streaming.engine import Arrival
from repro.utils.rng import ensure_rng

#: Stream length used when a spec names neither ``n_arrivals`` nor a trace.
DEFAULT_N_ARRIVALS = 16

#: Keys an ``arrivals`` JSON section may carry.
_ARRIVAL_KEYS = (
    "process",
    "rate",
    "n_arrivals",
    "seed",
    "family",
    "max_tasks",
    "tenants",
    "burst",
    "dwell",
    "trace",
)


@dataclass(frozen=True)
class ArrivalSpec:
    """Declarative arrival stream: a process, a family, a size, a seed.

    Parameters
    ----------
    process:
        Name in :data:`~repro.scenarios.registry.ARRIVALS`
        (``poisson`` / ``mmpp`` / ``trace`` built in).
    rate:
        Mean arrival rate in applications per second (quiet-phase rate
        for ``mmpp``; unused by ``trace``).
    n_arrivals:
        Stream length; ``None`` means the trace length for ``trace``
        processes and :data:`DEFAULT_N_ARRIVALS` otherwise (the value is
        canonicalised to an integer, so hashing is stable).
    seed:
        Seed of both the submission instants and the generated graphs.
    family:
        Application family in
        :data:`~repro.scenarios.registry.FAMILIES`; each arrival draws
        the next application of the family's deterministic sequence.
    max_tasks:
        Optional cap on random-PTG sizes, as in the offline workloads.
    tenants:
        Number of tenants; arrival ``i`` is labelled
        ``tenant-{i mod tenants}`` (round-robin), feeding the per-tenant
        stall metrics.
    burst:
        Burst-phase rate multiplier of the ``mmpp`` process.
    dwell:
        Mean phase dwell time (seconds) of the ``mmpp`` process;
        ``None`` uses the process default.
    trace:
        Explicit submission instants for the ``trace`` process
        (:func:`repro.streaming.arrivals.load_trace` reads them from a
        file).
    """

    process: str = "poisson"
    rate: float = 1.0
    n_arrivals: Optional[int] = None
    seed: int = 0
    family: str = "random"
    max_tasks: Optional[int] = None
    tenants: int = 1
    burst: float = 4.0
    dwell: Optional[float] = None
    trace: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        """Validate and canonicalise the field values."""
        object.__setattr__(self, "process", ARRIVALS.canonical(self.process))
        object.__setattr__(self, "family", FAMILIES.canonical(self.family))
        if not isinstance(self.seed, int):
            raise ConfigurationError(f"seed must be an integer, got {self.seed!r}")
        rate = float(self.rate)
        if rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {self.rate!r}")
        object.__setattr__(self, "rate", rate)
        burst = float(self.burst)
        if burst < 1:
            raise ConfigurationError(
                f"burst must be at least 1, got {self.burst!r}"
            )
        object.__setattr__(self, "burst", burst)
        if self.dwell is not None:
            dwell = float(self.dwell)
            if dwell <= 0:
                raise ConfigurationError(
                    f"dwell must be positive, got {self.dwell!r}"
                )
            object.__setattr__(self, "dwell", dwell)
        if not isinstance(self.tenants, int) or self.tenants < 1:
            raise ConfigurationError(
                f"tenants must be a positive integer, got {self.tenants!r}"
            )
        if self.max_tasks is not None and (
            not isinstance(self.max_tasks, int) or self.max_tasks < 1
        ):
            raise ConfigurationError(
                f"max_tasks must be a positive integer or null, got "
                f"{self.max_tasks!r}"
            )
        if self.trace is not None:
            trace = tuple(float(t) for t in self.trace)
            if not trace:
                raise ConfigurationError("a trace must hold at least one instant")
            object.__setattr__(self, "trace", trace)
        if self.process == "trace" and self.trace is None:
            raise ConfigurationError(
                "a 'trace' arrival process needs the trace field (e.g. loaded "
                "with repro.streaming.load_trace)"
            )
        n = self.n_arrivals
        if n is None:
            n = len(self.trace) if self.trace is not None else DEFAULT_N_ARRIVALS
        if not isinstance(n, int) or n < 1:
            raise ConfigurationError(
                f"n_arrivals must be a positive integer, got {self.n_arrivals!r}"
            )
        object.__setattr__(self, "n_arrivals", n)

    # ------------------------------------------------------------------ #
    # labels and serialisation
    # ------------------------------------------------------------------ #
    def label(self) -> str:
        """Readable identifier used in logs and result records."""
        return (
            f"{self.process}-x{self.n_arrivals}-rate{self.rate:g}-"
            f"{self.family}-seed{self.seed}"
        )

    def to_dict(self) -> Dict:
        """Plain-JSON representation (inverse of :meth:`from_dict`)."""
        return {
            "process": self.process,
            "rate": self.rate,
            "n_arrivals": self.n_arrivals,
            "seed": self.seed,
            "family": self.family,
            "max_tasks": self.max_tasks,
            "tenants": self.tenants,
            "burst": self.burst,
            "dwell": self.dwell,
            "trace": list(self.trace) if self.trace is not None else None,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "ArrivalSpec":
        """Build a spec from a plain dict; unknown keys raise."""
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"an arrivals spec must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        unknown = sorted(set(payload) - set(_ARRIVAL_KEYS))
        if unknown:
            raise ConfigurationError(
                f"unknown key(s) {unknown} in arrivals spec; allowed: "
                f"{sorted(_ARRIVAL_KEYS)}"
            )
        kwargs = dict(payload)
        if kwargs.get("trace") is not None:
            kwargs["trace"] = tuple(float(t) for t in kwargs["trace"])
        return cls(**kwargs)

    def hash_payload(self) -> Dict:
        """The canonical content this spec contributes to a scenario hash."""
        return self.to_dict()

    # ------------------------------------------------------------------ #
    # materialisation
    # ------------------------------------------------------------------ #
    def to_workload_spec(self) -> WorkloadSpec:
        """The workload spec generating the stream's application graphs."""
        return WorkloadSpec(
            family=self.family,
            n_ptgs=self.n_arrivals,
            seed=self.seed,
            max_tasks=self.max_tasks,
        )


def build_process(spec: ArrivalSpec) -> ArrivalProcess:
    """Instantiate the arrival process an :class:`ArrivalSpec` names.

    Every factory registered on :data:`~repro.scenarios.registry.ARRIVALS`
    receives the uniform keyword set and picks what it needs.
    """
    return ARRIVALS.create(
        spec.process,
        rate=spec.rate,
        burst=spec.burst,
        dwell=spec.dwell,
        trace=spec.trace,
    )


def generate_arrivals(spec: ArrivalSpec) -> List[Arrival]:
    """Materialise the arrival stream a spec describes (deterministic).

    The submission instants come from the seeded process, the graphs
    from :func:`repro.experiments.workload.make_workload` under the same
    seed (bit-identical to an offline workload of equal family / size /
    seed), and tenants are assigned round-robin.
    """
    times = build_process(spec).times(spec.n_arrivals, ensure_rng(spec.seed))
    ptgs = make_workload(spec.to_workload_spec())
    return [
        Arrival(ptg, float(time), tenant=f"tenant-{index % spec.tenants}")
        for index, (ptg, time) in enumerate(zip(ptgs, times))
    ]
