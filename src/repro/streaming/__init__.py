"""Multi-tenant online workload engine: arrival streams + event-driven scheduling.

This package opens the workload dimension the ROADMAP calls "heavy
traffic": instead of replaying a fixed, hand-written arrival list, a
seeded arrival process generates a reproducible stream of submissions
that an incremental, event-driven scheduler consumes -- thousands of PTG
submissions without quadratic re-scans.

* :mod:`repro.streaming.arrivals` -- Poisson, bursty (MMPP) and
  trace-driven arrival-time processes, pluggable through the
  :data:`repro.scenarios.ARRIVALS` registry axis;
* :mod:`repro.streaming.engine` -- :class:`StreamSession`, the
  incremental scheduler interleaving arrivals and completions on the
  placement core of :mod:`repro.mapping` (also the implementation
  behind :class:`repro.scheduler.OnlineConcurrentScheduler`);
* :mod:`repro.streaming.spec` -- the declarative, serialisable
  :class:`ArrivalSpec` wired into
  :class:`repro.scenarios.ScenarioSpec` (optional ``arrivals``
  section, JSON round-trip, content hash);
* :mod:`repro.streaming.run` -- scenario execution with windowed
  metrics, schedule validation, campaign-store persistence and
  resume (``repro-ptg stream``).

``spec`` and ``run`` are imported lazily (they sit on top of the
scenario layer, which itself registers the arrival processes of this
package), so ``import repro.streaming`` stays cycle-free.
"""

from __future__ import annotations

from repro.streaming.arrivals import (
    ArrivalProcess,
    MMPPProcess,
    PoissonProcess,
    TraceProcess,
    load_trace,
)
from repro.streaming.engine import (
    Arrival,
    OnlineScheduleResult,
    StreamEvent,
    StreamResult,
    StreamSession,
)

#: Names resolved lazily from the spec / run layers (PEP 562): importing
#: them eagerly would cycle through repro.scenarios, which imports this
#: package's arrival processes while building its registries.
_LAZY = {
    "ArrivalSpec": "repro.streaming.spec",
    "generate_arrivals": "repro.streaming.spec",
    "build_process": "repro.streaming.spec",
    "StreamOutcome": "repro.streaming.run",
    "StreamScenarioResult": "repro.streaming.run",
    "run_stream_scenario": "repro.streaming.run",
    "run_stream_scenarios": "repro.streaming.run",
}

__all__ = [
    "ArrivalProcess",
    "PoissonProcess",
    "MMPPProcess",
    "TraceProcess",
    "load_trace",
    "Arrival",
    "OnlineScheduleResult",
    "StreamEvent",
    "StreamResult",
    "StreamSession",
    "ArrivalSpec",
    "generate_arrivals",
    "build_process",
    "StreamOutcome",
    "StreamScenarioResult",
    "run_stream_scenario",
    "run_stream_scenarios",
]


def __getattr__(name: str):
    """Resolve the lazily exported spec / run names (PEP 562)."""
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target), name)
