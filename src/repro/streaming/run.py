"""Execute streaming scenarios: windowed metrics, persistence, resume.

:func:`run_stream_scenario` turns one streaming
:class:`~repro.scenarios.spec.ScenarioSpec` (a spec with an ``arrivals``
section) into a :class:`StreamScenarioResult`: the arrival stream is
regenerated from its seed, every component is instantiated from its
registry name, and each strategy of the scenario drives one
:class:`~repro.streaming.engine.StreamSession` over the stream.  Each
run is summarised as a :class:`StreamOutcome` -- per-application
response / waiting times, windowed metrics, per-tenant stalls, overall
utilisation -- validated with the schedule-invariant validator, and
serialised *including the full schedule*, so a stored streaming record
can be re-validated later (``repro-ptg validate``) against arrivals
regenerated from the stored spec.

:func:`run_stream_scenarios` runs many streaming specs with the campaign
machinery: one scenario is one shard, keyed by its
:meth:`~repro.scenarios.spec.ScenarioSpec.content_hash`, fanned out over
worker processes and persisted to the ``stream`` channel of a
:class:`~repro.campaigns.store.CampaignStore` -- so an interrupted
online sweep resumes exactly like a batch campaign does.
"""

from __future__ import annotations

import multiprocessing
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.campaigns.store import CampaignStore
from repro.exceptions import CampaignError, ConfigurationError
from repro.experiments.runner import ProgressCallback
from repro.faults.repair import repair_schedule
from repro.faults.spec import compile_timeline
from repro.mapping.schedule import Schedule, ScheduledTask
from repro.obs import trace
from repro.obs.export import TELEMETRY_CHANNEL
from repro.metrics.utilisation import schedule_utilisation
from repro.metrics.windows import WindowedMetrics, tenant_stall_times, windowed_metrics
from repro.scenarios.registry import ALLOCATORS, PLATFORMS, STRATEGIES
from repro.scenarios.spec import ScenarioSpec
from repro.simulate.executor import ScheduleExecutor
from repro.streaming.engine import Arrival, StreamResult, StreamSession
from repro.streaming.spec import generate_arrivals
from repro.validate import validate_schedule

#: Store channel holding streaming scenario records.
STREAM_CHANNEL = "stream"


# ---------------------------------------------------------------------- #
# schedule (de)serialisation
# ---------------------------------------------------------------------- #
def schedule_to_rows(schedule: Schedule) -> List[List]:
    """Compact row form of a schedule (one list per placed task)."""
    return [
        [
            entry.ptg_name,
            entry.task_id,
            entry.cluster_name,
            list(entry.processors),
            entry.start,
            entry.finish,
            entry.reference_processors,
        ]
        for entry in schedule
    ]


def schedule_from_rows(rows: Sequence[Sequence], platform_name: str = "") -> Schedule:
    """Rebuild a schedule from :func:`schedule_to_rows` output."""
    schedule = Schedule(platform_name)
    for name, task_id, cluster, procs, start, finish, reference in rows:
        schedule.add(
            ScheduledTask(
                ptg_name=str(name),
                task_id=int(task_id),
                cluster_name=str(cluster),
                processors=tuple(int(p) for p in procs),
                start=float(start),
                finish=float(finish),
                reference_processors=int(reference),
            )
        )
    return schedule


# ---------------------------------------------------------------------- #
# outcomes
# ---------------------------------------------------------------------- #
@dataclass
class StreamOutcome:
    """Measured outcome of one strategy over one arrival stream.

    Everything is plain JSON-serialisable: the per-application series,
    the windowed metrics, the validator verdict, and (by default) the
    full schedule in row form so stored records stay re-validatable.
    """

    strategy: str
    n_arrivals: int
    horizon: float
    utilisation: float
    mean_response: float
    max_response: float
    mean_waiting: float
    betas: Dict[str, float]
    response_times: Dict[str, float]
    waiting_times: Dict[str, float]
    completion_times: Dict[str, float]
    arrival_times: Dict[str, float]
    tenant_stall: Dict[str, float]
    windowed: WindowedMetrics
    packed_tasks: int = 0
    valid: Optional[bool] = None
    schedule_rows: List[List] = field(default_factory=list)
    #: Fault-injection summary, present only when the scenario carries a
    #: ``faults`` section: the plan label, the failures observed when
    #: replaying the planned schedule under the fault timeline, the
    #: repair's degradation metrics, the perturbed-platform validator
    #: verdict on the repaired schedule and (with ``keep_schedule``) the
    #: repaired schedule in row form.
    faults: Optional[Dict] = None

    def to_dict(self) -> Dict:
        """Plain-JSON representation (inverse of :meth:`from_dict`)."""
        payload = {
            "strategy": self.strategy,
            "n_arrivals": self.n_arrivals,
            "horizon": self.horizon,
            "utilisation": self.utilisation,
            "mean_response": self.mean_response,
            "max_response": self.max_response,
            "mean_waiting": self.mean_waiting,
            "betas": dict(self.betas),
            "response_times": dict(self.response_times),
            "waiting_times": dict(self.waiting_times),
            "completion_times": dict(self.completion_times),
            "arrival_times": dict(self.arrival_times),
            "tenant_stall": dict(self.tenant_stall),
            "windowed": self.windowed.to_dict(),
            "packed_tasks": self.packed_tasks,
            "valid": self.valid,
            "schedule_rows": self.schedule_rows,
        }
        if self.faults is not None:
            payload["faults"] = self.faults
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "StreamOutcome":
        """Rebuild an outcome from :meth:`to_dict` output."""
        try:
            return cls(
                strategy=str(payload["strategy"]),
                n_arrivals=int(payload["n_arrivals"]),
                horizon=float(payload["horizon"]),
                utilisation=float(payload["utilisation"]),
                mean_response=float(payload["mean_response"]),
                max_response=float(payload["max_response"]),
                mean_waiting=float(payload["mean_waiting"]),
                betas={str(k): float(v) for k, v in payload["betas"].items()},
                response_times={
                    str(k): float(v) for k, v in payload["response_times"].items()
                },
                waiting_times={
                    str(k): float(v) for k, v in payload["waiting_times"].items()
                },
                completion_times={
                    str(k): float(v) for k, v in payload["completion_times"].items()
                },
                arrival_times={
                    str(k): float(v) for k, v in payload["arrival_times"].items()
                },
                tenant_stall={
                    str(k): float(v) for k, v in payload["tenant_stall"].items()
                },
                windowed=WindowedMetrics.from_dict(payload["windowed"]),
                packed_tasks=int(payload.get("packed_tasks", 0)),
                valid=payload.get("valid"),
                schedule_rows=payload.get("schedule_rows") or [],
                faults=payload.get("faults"),
            )
        except KeyError as exc:
            raise CampaignError(f"stream outcome record misses field {exc}") from None

    def schedule(self, platform_name: str = "") -> Schedule:
        """The stored schedule, rebuilt from its row form."""
        if not self.schedule_rows:
            raise CampaignError(
                f"outcome of {self.strategy!r} was stored without its schedule"
            )
        return schedule_from_rows(self.schedule_rows, platform_name)

    def repaired_schedule(self, platform_name: str = "") -> Schedule:
        """The stored repaired schedule (fault-injection runs only)."""
        rows = (self.faults or {}).get("schedule_rows")
        if not rows:
            raise CampaignError(
                f"outcome of {self.strategy!r} carries no repaired schedule"
            )
        return schedule_from_rows(rows, platform_name)


@dataclass
class StreamScenarioResult:
    """Outcome of one streaming scenario: the spec plus one outcome per strategy."""

    spec: ScenarioSpec
    outcomes: Dict[str, StreamOutcome] = field(default_factory=dict)
    #: Live results of a fresh in-process run (empty when reloaded from a
    #: store): strategy name -> :class:`StreamResult` with the schedule
    #: object and the arrival list.
    results: Dict[str, StreamResult] = field(default_factory=dict)
    #: Telemetry summary captured by the run, when the spec asked for one
    #: (``spec.telemetry``); a plain-JSON document from
    #: :func:`repro.obs.export.telemetry_summary`.
    telemetry: Optional[Dict] = None

    @property
    def key(self) -> str:
        """The scenario's content hash (the store/shard key)."""
        return self.spec.content_hash()

    def to_record(self) -> Dict:
        """The JSON record persisted in the store's stream channel.

        The ``telemetry`` key is present only when a summary was
        captured, mirroring the spec's own serialisation.
        """
        record = {
            "spec": self.spec.to_dict(),
            "outcomes": {
                name: outcome.to_dict() for name, outcome in self.outcomes.items()
            },
        }
        if self.telemetry is not None:
            record["telemetry"] = self.telemetry
        return record

    @classmethod
    def from_record(cls, payload: Dict) -> "StreamScenarioResult":
        """Rebuild a (schedule-rows-only) result from a stored record."""
        try:
            spec = ScenarioSpec.from_dict(payload["spec"])
            outcomes = {
                str(name): StreamOutcome.from_dict(out)
                for name, out in payload["outcomes"].items()
            }
        except KeyError as exc:
            raise CampaignError(f"stream record misses field {exc}") from None
        return cls(spec=spec, outcomes=outcomes, telemetry=payload.get("telemetry"))


# ---------------------------------------------------------------------- #
# execution
# ---------------------------------------------------------------------- #
def _summarise(
    strategy_name: str,
    result: StreamResult,
    packed_tasks: int,
    window: Optional[float],
    validate: bool,
    keep_schedule: bool,
) -> StreamOutcome:
    """Condense one finished stream run into its serialisable outcome."""
    responses = result.makespans()
    waits = result.waiting_times()
    platform = result.platform
    report = None
    if validate:
        report = validate_schedule(
            result.schedule,
            ptgs=[arrival.ptg for arrival in result.arrivals],
            platform=platform,
            releases=dict(result.arrival_times),
        )
    return StreamOutcome(
        strategy=strategy_name,
        n_arrivals=len(result.arrivals),
        horizon=result.horizon(),
        utilisation=schedule_utilisation(result.schedule, platform),
        mean_response=sum(responses.values()) / len(responses),
        max_response=max(responses.values()),
        mean_waiting=sum(waits.values()) / len(waits),
        betas=dict(result.betas),
        response_times=responses,
        waiting_times=waits,
        completion_times=dict(result.completion_times),
        arrival_times=dict(result.arrival_times),
        tenant_stall=tenant_stall_times(
            result.arrival_times, result.first_starts, result.tenants
        ),
        windowed=windowed_metrics(result, platform, window=window),
        packed_tasks=packed_tasks,
        valid=None if report is None else report.ok,
        schedule_rows=schedule_to_rows(result.schedule) if keep_schedule else [],
    )


def _fault_summary(
    spec: ScenarioSpec,
    timeline,
    result: StreamResult,
    validate: bool,
    keep_schedule: bool,
) -> Dict:
    """Perturb, repair and summarise one stream run under a fault timeline.

    The planned schedule is replayed through the perturbed executor (so
    the summary records which tasks the faults actually killed, starved
    or blocked), then repaired with
    :func:`repro.faults.repair.repair_schedule`; the repaired schedule
    is checked with the validator's perturbed-platform mode.
    """
    ptgs = [arrival.ptg for arrival in result.arrivals]
    releases = dict(result.arrival_times)
    report = ScheduleExecutor(result.platform).execute(
        ptgs, result.schedule, releases=releases, faults=timeline
    )
    repair = repair_schedule(
        ptgs,
        result.schedule,
        result.platform,
        timeline,
        releases=releases,
        enable_packing=spec.pipeline.packing,
    )
    valid: Optional[bool] = None
    if validate:
        verdict = validate_schedule(
            repair.schedule,
            ptgs=ptgs,
            platform=result.platform,
            releases=releases,
            faults=timeline,
        )
        valid = verdict.ok
    return {
        "plan": spec.faults.label(),
        "failures": [
            [f.ptg_name, f.task_id, f.cluster_name, f.time, f.reason]
            for f in report.failures
        ],
        "metrics": repair.metrics(),
        "valid": valid,
        "schedule_rows": schedule_to_rows(repair.schedule) if keep_schedule else [],
    }


def run_stream_scenario(
    spec: ScenarioSpec,
    platform=None,
    arrivals: Optional[Sequence[Arrival]] = None,
    window: Optional[float] = None,
    validate: bool = True,
    keep_schedule: bool = True,
) -> StreamScenarioResult:
    """Run one streaming scenario and return its result.

    Parameters
    ----------
    spec:
        A scenario spec with an ``arrivals`` section.
    platform:
        Optional platform object overriding the spec's registry name
        (the escape hatch unit tests use for synthetic platforms).
    arrivals:
        Optional pre-generated arrival stream (must match the spec's
        seed to keep results reproducible).
    window:
        Window width of the windowed metrics (``None``: the horizon is
        split into 20 equal windows).
    validate:
        Whether to run the schedule-invariant validator on every
        produced schedule (recorded in
        :attr:`StreamOutcome.valid`).
    keep_schedule:
        Whether outcomes carry the schedule in row form (needed for
        later ``repro-ptg validate`` runs on the store).
    """
    if not spec.is_streaming:
        raise ConfigurationError(
            f"scenario {spec.label()!r} has no arrivals section: run it with "
            f"repro.scenarios.run_scenario instead"
        )
    if spec.pipeline.mapper != "ready-list":
        # the online engine places tasks with EFT in bottom-level order
        # per admitted application (the ready-list discipline); silently
        # running another mapper name would store a second, bit-identical
        # result under a different content hash.
        raise ConfigurationError(
            f"streaming scenarios always map with the ready-list discipline; "
            f"got pipeline.mapper={spec.pipeline.mapper!r}"
        )
    target = platform if platform is not None else PLATFORMS.create(spec.platform)
    stream = list(arrivals) if arrivals is not None else generate_arrivals(spec.arrivals)
    timeline = None
    if spec.faults is not None:
        timeline = compile_timeline(spec.faults, target)
    scenario = StreamScenarioResult(spec=spec)
    # The scenario starts its own telemetry session only when the caller
    # has not installed one (so ``repro trace`` keeps a single session).
    obs_session = None
    if spec.telemetry is not None and not obs.enabled():
        obs_session = obs.enable(spec.telemetry)
    try:
        for name in spec.resolved_strategy_names():
            strategy = STRATEGIES.create(
                name, mu=spec.pipeline.mu, family=spec.arrivals.family
            )
            allocator = ALLOCATORS.create(spec.pipeline.allocator)
            session = StreamSession(
                target,
                strategy=strategy,
                allocator=allocator,
                enable_packing=spec.pipeline.packing,
            )
            with trace.span("stream.run", strategy=name, arrivals=str(len(stream))):
                session.feed(stream)
            result = session.result()
            scenario.results[name] = result
            outcome = _summarise(
                name,
                result,
                packed_tasks=session.engine.packed_tasks,
                window=window,
                validate=validate,
                keep_schedule=keep_schedule,
            )
            if timeline is not None:
                outcome.faults = _fault_summary(
                    spec, timeline, result, validate, keep_schedule
                )
            scenario.outcomes[name] = outcome
    finally:
        if obs_session is not None:
            obs.disable()
    if obs_session is not None:
        scenario.telemetry = obs_session.summary(
            labels={"scenario": spec.label(), "key": scenario.key}
        )
    return scenario


# ---------------------------------------------------------------------- #
# fan-out with persistence and resume
# ---------------------------------------------------------------------- #
def _stream_worker(payload: Tuple[int, Dict]) -> Tuple[int, str, Optional[Dict], Optional[str]]:
    """Pool entry point: run one streaming spec from its dict form.

    Returns ``(index, key, record, error)``; exactly one of *record*
    and *error* is set.  Module-level so it pickles.
    """
    index, spec_dict = payload
    try:
        spec = ScenarioSpec.from_dict(spec_dict)
        key = spec.content_hash()
        scenario = run_stream_scenario(spec)
        return index, key, scenario.to_record(), None
    except Exception:
        return index, spec_dict.get("platform", "?"), None, traceback.format_exc()


def run_stream_scenarios(
    specs: Sequence[ScenarioSpec],
    jobs: Optional[int] = None,
    store: Optional[Union[str, CampaignStore]] = None,
    resume: bool = True,
    progress: Optional[ProgressCallback] = None,
) -> List[StreamScenarioResult]:
    """Run many streaming scenarios with fan-out, persistence and resume.

    One scenario is one shard: its content hash is the record key in the
    store's ``stream`` channel, completed scenarios are skipped on
    resume, and every new record is appended (crash-safe) as it
    arrives.  Results come back in input order; scenarios reloaded from
    the store carry their stored outcomes but no live
    :class:`StreamResult` objects.
    """
    specs = list(specs)
    if not specs:
        raise ConfigurationError("at least one streaming scenario is required")
    for spec in specs:
        if not spec.is_streaming:
            raise ConfigurationError(
                f"scenario {spec.label()!r} has no arrivals section; mixed "
                f"sweeps route batch specs through run_scenarios"
            )
    if isinstance(store, (str, bytes)) or hasattr(store, "__fspath__"):
        store = CampaignStore(store)

    keys = [spec.content_hash() for spec in specs]
    stored: Dict[str, Dict] = {}
    if store is not None:
        stored = store.payloads_by_key(STREAM_CHANNEL)
        if stored and not resume:
            raise CampaignError(
                f"store {store.root} already holds {len(stored)} streaming "
                f"record(s); pass resume=True (--resume) to continue it or "
                f"point at a fresh directory"
            )

    seen = set(stored)
    pending: List[Tuple[int, Dict]] = []
    for index, (spec, key) in enumerate(zip(specs, keys)):
        if key not in seen:
            seen.add(key)
            pending.append((index, spec.to_dict()))
    if progress is not None and len(specs) != len(pending):
        progress(f"resuming: {len(specs) - len(pending)}/{len(specs)} already done")

    records: Dict[str, Dict] = dict(stored)
    failures: List[Tuple[str, str]] = []

    def _consume(index: int, key: str, record: Optional[Dict], error: Optional[str]):
        if error is not None:
            failures.append((specs[index].label(), error))
            if progress is not None:
                progress(f"FAILED {specs[index].label()}")
            return
        records[key] = record
        if store is not None:
            telemetry = record.get("telemetry")
            if telemetry is not None:
                # summaries live in their own channel (``repro metrics``
                # reads it) so stream records stay lean on reload
                store.append_payload(TELEMETRY_CHANNEL, key, telemetry)
                record = {k: v for k, v in record.items() if k != "telemetry"}
            store.append_payload(STREAM_CHANNEL, key, record)
        if progress is not None:
            progress(specs[index].label())

    if jobs is None:
        from repro.campaigns.pool import default_jobs

        jobs = default_jobs()
    if jobs <= 1 or len(pending) <= 1:
        for item in pending:
            _consume(*_stream_worker(item))
    else:
        with multiprocessing.Pool(processes=max(1, int(jobs))) as pool:
            for outcome in pool.imap(_stream_worker, pending, chunksize=1):
                _consume(*outcome)

    if failures:
        label, error = failures[0]
        raise CampaignError(
            f"{len(failures)} streaming scenario(s) failed; first failure on "
            f"{label}:\n{error}"
        )
    return [
        StreamScenarioResult.from_record(records[key])
        for key in keys
    ]
