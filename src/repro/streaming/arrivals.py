"""Arrival-process generators for online workload streams.

The streaming engine consumes a sequence of submission instants.  Three
process families generate them, all reproducible from a seeded
:class:`numpy.random.Generator`:

* :class:`PoissonProcess` -- memoryless arrivals at a constant rate,
  the standard open-system workload model;
* :class:`MMPPProcess` -- a two-phase Markov-modulated Poisson process:
  the stream alternates between a *quiet* phase at the base rate and a
  *burst* phase at ``burst`` times the base rate, with exponentially
  distributed phase dwell times.  This models the flash crowds a
  multi-tenant platform must absorb;
* :class:`TraceProcess` -- replay of explicit submission instants, e.g.
  read from a production trace file with :func:`load_trace`.

Each process is registered under the :data:`repro.scenarios.ARRIVALS`
plugin axis, so a serialisable
:class:`~repro.streaming.spec.ArrivalSpec` selects it by name.  The
registered factories all accept the same keyword set (``rate``,
``burst``, ``dwell``, ``trace``) and ignore what they do not need,
which is the contract third-party processes must follow too.
"""

from __future__ import annotations

import abc
import json
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import RngLike, ensure_rng


class ArrivalProcess(abc.ABC):
    """Interface of the arrival-time generators."""

    #: Process name used in labels and reports.
    name: str = "abstract"

    @abc.abstractmethod
    def times(self, n: int, rng: RngLike = None) -> np.ndarray:
        """*n* non-decreasing, non-negative submission instants (seconds)."""

    @staticmethod
    def _check_count(n: int) -> None:
        """Reject non-positive stream lengths."""
        if n < 1:
            raise ConfigurationError(f"at least one arrival is required, got {n}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class PoissonProcess(ArrivalProcess):
    """Memoryless arrivals at a constant *rate* (arrivals per second)."""

    name = "poisson"

    def __init__(self, rate: float = 1.0) -> None:
        """Create the process; *rate* must be positive."""
        if rate <= 0:
            raise ConfigurationError(f"arrival rate must be positive, got {rate}")
        self.rate = float(rate)

    def times(self, n: int, rng: RngLike = None) -> np.ndarray:
        """Cumulative sums of exponential inter-arrival gaps."""
        self._check_count(n)
        generator = ensure_rng(rng)
        return np.cumsum(generator.exponential(1.0 / self.rate, size=n))


class MMPPProcess(ArrivalProcess):
    """Two-phase Markov-modulated Poisson process (bursty arrivals).

    The stream alternates between a quiet phase at the base *rate* and a
    burst phase at ``rate * burst``; the dwell time in each phase is
    exponential with mean *dwell* seconds (default: ten mean quiet
    inter-arrival times, so a typical burst delivers a handful of
    back-to-back submissions).
    """

    name = "mmpp"

    def __init__(
        self, rate: float = 1.0, burst: float = 4.0, dwell: Optional[float] = None
    ) -> None:
        """Create the process; *rate* and *dwell* positive, *burst* >= 1."""
        if rate <= 0:
            raise ConfigurationError(f"arrival rate must be positive, got {rate}")
        if burst < 1:
            raise ConfigurationError(
                f"burst factor must be at least 1, got {burst}"
            )
        self.rate = float(rate)
        self.burst = float(burst)
        self.dwell = 10.0 / self.rate if dwell is None else float(dwell)
        if self.dwell <= 0:
            raise ConfigurationError(f"dwell must be positive, got {dwell}")

    def times(self, n: int, rng: RngLike = None) -> np.ndarray:
        """Simulate the modulated process until *n* arrivals accumulated."""
        self._check_count(n)
        generator = ensure_rng(rng)
        rates = (self.rate, self.rate * self.burst)
        phase = 0
        now = 0.0
        phase_end = generator.exponential(self.dwell)
        out: List[float] = []
        while len(out) < n:
            gap = generator.exponential(1.0 / rates[phase])
            if now + gap < phase_end:
                now += gap
                out.append(now)
            else:
                # no arrival before the phase flips: restart the
                # memoryless draw at the boundary under the other rate
                now = phase_end
                phase = 1 - phase
                phase_end = now + generator.exponential(self.dwell)
        return np.asarray(out, dtype=float)


class TraceProcess(ArrivalProcess):
    """Replay of explicit submission instants (e.g. a production trace)."""

    name = "trace"

    def __init__(self, trace: Optional[Sequence[float]] = None, **_ignored) -> None:
        """Create the process from non-decreasing, non-negative instants."""
        if not trace:
            raise ConfigurationError(
                "a trace process needs at least one submission instant"
            )
        values = [float(t) for t in trace]
        if any(t < 0 for t in values):
            raise ConfigurationError("trace instants must be non-negative")
        if any(b < a for a, b in zip(values, values[1:])):
            raise ConfigurationError("trace instants must be non-decreasing")
        self.trace = tuple(values)

    def times(self, n: int, rng: RngLike = None) -> np.ndarray:
        """The first *n* instants of the trace (the RNG is unused)."""
        self._check_count(n)
        if n > len(self.trace):
            raise ConfigurationError(
                f"trace holds {len(self.trace)} instants but {n} arrivals "
                f"were requested"
            )
        return np.asarray(self.trace[:n], dtype=float)


# ---------------------------------------------------------------------- #
# registry factories (uniform keyword contract)
# ---------------------------------------------------------------------- #
def poisson_process(
    rate: float = 1.0, **_ignored
) -> PoissonProcess:
    """Factory for :data:`~repro.scenarios.ARRIVALS`: constant-rate Poisson."""
    return PoissonProcess(rate=rate)


def mmpp_process(
    rate: float = 1.0,
    burst: float = 4.0,
    dwell: Optional[float] = None,
    **_ignored,
) -> MMPPProcess:
    """Factory for :data:`~repro.scenarios.ARRIVALS`: bursty two-phase MMPP."""
    return MMPPProcess(rate=rate, burst=burst, dwell=dwell)


def trace_process(
    trace: Optional[Sequence[float]] = None, **_ignored
) -> TraceProcess:
    """Factory for :data:`~repro.scenarios.ARRIVALS`: trace replay."""
    return TraceProcess(trace=trace)


def load_trace(path: str) -> List[float]:
    """Read submission instants from a trace file.

    Two formats are accepted: a JSON array of numbers, or plain text
    with one instant per line (blank lines and ``#`` comments ignored).
    The instants are validated by :class:`TraceProcess` when the spec is
    built, not here.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ConfigurationError(f"cannot read trace file: {exc}") from None
    stripped = text.lstrip()
    if stripped.startswith("["):
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"{path} is not valid JSON: {exc}") from None
        if not isinstance(payload, list):
            raise ConfigurationError(f"{path}: a JSON trace must be an array")
        return [float(t) for t in payload]
    values: List[float] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            values.append(float(line))
        except ValueError:
            raise ConfigurationError(
                f"{path}:{lineno}: not a number: {line!r}"
            ) from None
    return values
