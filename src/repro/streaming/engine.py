"""Event-driven online scheduling engine for multi-tenant arrival streams.

The paper's future-work section sketches the online problem where the
concurrent applications do *not* arrive together: "this implies that the
resource constraints have to be modified on the arrival of a new
application in the system".  :class:`StreamSession` implements that
first-come-first-served design point on top of the incremental placement
core of :mod:`repro.mapping`:

* applications are admitted in arrival order;
* at each arrival the engine first retires every application whose
  planned completion lies at or before the arrival instant (a
  lazily-invalidated completion heap interleaves the two event kinds),
  then computes the resource constraint of the *new* application with
  the chosen strategy over the set of applications still present plus
  the new one;
* the new application is allocated under that constraint and mapped --
  without disturbing the reservations of the applications already
  scheduled -- using earliest-finish-time placement with allocation
  packing, its tasks ordered by bottom level and released no earlier
  than the submission time.

Unlike the batch replay it replaces (preserved verbatim in
:mod:`repro.scheduler._reference`), the session is **incremental**:

* per-application completion times are tracked while the tasks are
  placed, so admitting application ``n`` costs ``O(tasks(n))`` instead
  of a full re-scan of the ``O(sum tasks(1..n))`` entries placed so far
  (the re-scan makes the replay quadratic on long streams);
* :meth:`StreamSession.feed` accepts arrival batches at any time, so a
  growing stream (a live submission queue, a resumed sweep) is continued
  from the in-memory state instead of being re-replayed from scratch.

``tests/test_scheduler_online_golden.py`` asserts that a session fed a
fixed arrival list is bit-identical to the preserved replay, chunking
included.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.allocation.base import Allocation, AllocationProcedure
from repro.allocation.reference import ReferenceCluster
from repro.allocation.scrap import ScrapMaxAllocator
from repro.allocation.state import discard_allocation_tables, prepare_allocation_tables
from repro.constraints.base import ConstraintStrategy
from repro.constraints.strategies import EqualShareStrategy
from repro.dag.arrays import compile_arrays_batch
from repro.dag.graph import PTG
from repro.exceptions import ConfigurationError, MappingError, ReproError
from repro.mapping.base import AllocatedPTG
from repro.mapping.eft import PlacementEngine
from repro.mapping.schedule import Schedule
from repro.obs import meters, trace
from repro.platform.multicluster import MultiClusterPlatform

#: Arrival batches are compiled in chunks of this many graphs: large
#: enough to amortize the batched-kernel dispatch, small enough to keep
#: the transient stacked buffers off the high-water mark.
BATCH_COMPILE_CHUNK = 128


@dataclass(frozen=True)
class Arrival:
    """One application submission: the graph, its instant, its tenant.

    The optional *tenant* label groups submissions of one user /
    workload class; the windowed metrics aggregate stall times per
    tenant.  An empty label means "no tenant information".
    """

    ptg: PTG
    time: float = 0.0
    tenant: str = ""

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError(
                f"submission time must be non-negative, got {self.time}"
            )


@dataclass(frozen=True)
class StreamEvent:
    """One event of the online run: an arrival or a planned completion."""

    time: float
    kind: str
    name: str


@dataclass
class OnlineScheduleResult:
    """Outcome of an online scheduling run."""

    platform: MultiClusterPlatform
    arrivals: Sequence[Arrival]
    betas: Dict[str, float]
    active_at_admission: Dict[str, List[str]]
    allocations: Dict[str, Allocation]
    schedule: Schedule
    strategy_name: str = ""

    @property
    def application_names(self) -> List[str]:
        """Names of the applications, in arrival order."""
        return [a.ptg.name for a in self.arrivals]

    def completion_time(self, name: str) -> float:
        """Absolute completion time of one application."""
        try:
            return self.schedule.makespan(name)
        except MappingError:
            raise ConfigurationError(
                f"no application named {name!r} in this result"
            ) from None

    def makespan(self, name: str) -> float:
        """Makespan measured from the application's own submission time."""
        for arrival in self.arrivals:
            if arrival.ptg.name == name:
                return self.completion_time(name) - arrival.time
        raise ConfigurationError(f"no application named {name!r} in this result")

    def makespans(self) -> Dict[str, float]:
        """Per-application makespans measured from their submission times."""
        return {name: self.makespan(name) for name in self.application_names}


@dataclass
class StreamResult(OnlineScheduleResult):
    """Outcome of a streaming run, with O(1) per-application accessors.

    Extends :class:`OnlineScheduleResult` with the quantities the
    session tracked incrementally -- completion times, first task
    starts, submission times and tenant labels -- so that reading the
    per-application metrics of a long stream never re-scans the
    schedule.
    """

    completion_times: Dict[str, float] = field(default_factory=dict)
    first_starts: Dict[str, float] = field(default_factory=dict)
    arrival_times: Dict[str, float] = field(default_factory=dict)
    tenants: Dict[str, str] = field(default_factory=dict)

    def _lookup(self, table: Dict[str, float], name: str) -> float:
        """One tracked quantity of one application, with the error contract.

        Every accessor funnels through this helper so an unknown
        application name always surfaces as a
        :class:`~repro.exceptions.ConfigurationError` naming the
        application -- never a raw ``KeyError``.
        """
        try:
            return table[name]
        except KeyError:
            raise ConfigurationError(
                f"no application named {name!r} in this result"
            ) from None

    def completion_time(self, name: str) -> float:
        """Absolute completion time of one application (O(1))."""
        return self._lookup(self.completion_times, name)

    def makespan(self, name: str) -> float:
        """Makespan measured from the application's own submission (O(1))."""
        return self._lookup(self.completion_times, name) - self._lookup(
            self.arrival_times, name
        )

    def makespans(self) -> Dict[str, float]:
        """Per-application makespans measured from their submission times."""
        return {
            name: self.completion_times[name] - self.arrival_times[name]
            for name in self.completion_times
        }

    def waiting_time(self, name: str) -> float:
        """Stall of one application: first task start minus submission."""
        return self._lookup(self.first_starts, name) - self._lookup(
            self.arrival_times, name
        )

    def waiting_times(self) -> Dict[str, float]:
        """Per-application stall times (first task start minus submission)."""
        return {name: self.waiting_time(name) for name in self.first_starts}

    def horizon(self) -> float:
        """Completion time of the last application of the stream."""
        return max(self.completion_times.values()) if self.completion_times else 0.0

    def events(self) -> List[StreamEvent]:
        """The arrival/completion event timeline, in time order.

        Completions are the *planned* ones (the instants the session's
        event loop retires applications at).  Ties are ordered
        completion-before-arrival -- exactly the order the admission
        loop processes them in (a completion at the arrival instant
        leaves the active set before the constraint is computed).
        """
        rows = [
            StreamEvent(time, "completion", name)
            for name, time in self.completion_times.items()
        ]
        rows += [
            StreamEvent(arrival.time, "arrival", arrival.ptg.name)
            for arrival in self.arrivals
        ]
        kind_rank = {"completion": 0, "arrival": 1}
        return sorted(rows, key=lambda e: (e.time, kind_rank[e.kind], e.name))


class StreamSession:
    """Incremental first-come-first-served scheduler for arrival streams.

    A session holds the live state of an online run -- the platform
    timelines, the schedule under construction, the completion heap and
    the per-application bookkeeping -- and admits arrivals one batch at
    a time.  Batches must not travel back in time: every arrival of a
    :meth:`feed` call must be at or after the latest arrival already
    admitted (equal instants are ordered by application name, matching
    the batch replay's global sort).

    Parameters
    ----------
    platform:
        The target multi-cluster platform.
    strategy:
        Constraint strategy re-evaluated at each admission over the
        applications still in the system (default: equal share).
    allocator:
        Constrained allocation procedure (default: SCRAP-MAX, the
        paper's choice).
    enable_packing:
        Whether the mapper may shrink delayed allocations (paper: on).
    delta:
        Whether the placement engine uses the delta-EFT fast path
        (default) or the full per-cluster evaluation; both are
        bit-identical, the flag exists as the golden fallback.
    batch_compile:
        Whether :meth:`feed` batch-compiles the arrival chunk's graph
        arrays and allocation tables through the stacked multi-PTG
        kernels before admitting (bit-identical; golden fallback).
    """

    def __init__(
        self,
        platform: MultiClusterPlatform,
        strategy: Optional[ConstraintStrategy] = None,
        allocator: Optional[AllocationProcedure] = None,
        enable_packing: bool = True,
        delta: bool = True,
        batch_compile: bool = True,
    ) -> None:
        self.platform = platform
        self.strategy = strategy or EqualShareStrategy()
        self.allocator = allocator or ScrapMaxAllocator()
        self.enable_packing = enable_packing
        self.delta = delta
        self.batch_compile = batch_compile
        self.engine = PlacementEngine(
            platform, enable_packing=enable_packing, delta=delta
        )
        self.schedule = Schedule(platform.name)
        # reference view + allocation cap of this platform, precomputed
        # once for the batched allocation-table preparation of ``feed``
        self._reference = ReferenceCluster.of(platform)
        self._allocation_cap = self._reference.max_allocation(platform)
        self._arrivals: List[Arrival] = []
        self._betas: Dict[str, float] = {}
        self._allocations: Dict[str, Allocation] = {}
        self._active_log: Dict[str, List[str]] = {}
        self._completions: Dict[str, float] = {}
        self._first_starts: Dict[str, float] = {}
        self._arrival_times: Dict[str, float] = {}
        self._tenants: Dict[str, str] = {}
        # Min-heap of (completion time, name) of admitted applications,
        # lazily invalidated; the insertion-ordered ``_active`` dict
        # keeps the arrival order the constraint strategies see.
        self._running: List[Tuple[float, str]] = []
        self._active: Dict[str, PTG] = {}
        self._last_key: Optional[Tuple[float, str]] = None

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def admitted(self) -> int:
        """Number of applications admitted so far."""
        return len(self._arrivals)

    @property
    def active_applications(self) -> List[str]:
        """Applications still in the system at the last admission instant."""
        return list(self._active)

    @property
    def arrivals(self) -> Tuple[Arrival, ...]:
        """The admitted arrivals, in admission order.

        This is the session's checkpoint hook: re-feeding these
        arrivals through a fresh session reproduces the live state
        bit-identically (the engine is deterministic), which is how the
        admission daemon (:mod:`repro.service`) restores tenants.
        """
        return tuple(self._arrivals)

    @property
    def completions(self) -> Dict[str, float]:
        """Planned completion time of every admitted application (a copy)."""
        return dict(self._completions)

    @property
    def last_admission(self) -> Optional[Tuple[float, str]]:
        """``(time, name)`` of the latest admission, or ``None``.

        Feeding an arrival that sorts before this key raises -- the
        service layer mirrors the check at submit time so clients get
        an HTTP 409 instead of a failed admission.
        """
        return self._last_key

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #
    def feed(self, arrivals: Iterable[Arrival]) -> None:
        """Admit a batch of arrivals, in ``(time, name)`` order.

        The batch is sorted internally; it may be empty.  Feeding an
        arrival earlier than one already admitted raises a
        :class:`~repro.exceptions.ConfigurationError` -- an online
        scheduler cannot revisit the past.
        """
        batch = sorted(arrivals, key=lambda a: (a.time, a.ptg.name))
        if self.batch_compile and len(batch) > 1:
            self._prepare_batch([arrival.ptg for arrival in batch])
        for arrival in batch:
            self.admit(arrival)

    def _prepare_batch(self, ptgs: List[PTG]) -> None:
        """Batch-compile the graphs of one feed chunk (pure warm-up).

        Stacks the chunk's graphs into shared-arena
        :class:`~repro.dag.arrays.DagArrays` and prebuilds their
        allocation tables in one vectorized pass each, so the admission
        loop below finds everything cached.  Invalid graphs are skipped
        here -- :meth:`admit` raises for them at the right arrival, with
        the session state it would have had without batching.
        """
        fresh = []
        for ptg in ptgs:
            try:
                ptg.validate()
            except ReproError:
                continue
            fresh.append(ptg)
        for begin in range(0, len(fresh), BATCH_COMPILE_CHUNK):
            chunk = fresh[begin : begin + BATCH_COMPILE_CHUNK]
            compile_arrays_batch(chunk)
            prepare_allocation_tables(chunk, self._reference, self._allocation_cap)

    def admit(self, arrival: Arrival) -> float:
        """Admit one application and return its planned completion time.

        Runs one iteration of the event loop: retire every application
        whose planned completion is at or before the arrival instant,
        compute the newcomer's constraint over the remaining active set,
        allocate, and place its tasks (released no earlier than the
        submission time) without touching existing reservations.

        Admission is **transactional**: every per-application bookkeeping
        write (and the retirement of completed applications) is staged on
        copies, the timeline reservations run inside a rollback-capable
        transaction, and everything is committed only after the mapping
        succeeded.  A raising constraint strategy, allocator or placement
        therefore leaves the session bit-identical to one that never saw
        the arrival -- which is what lets the degraded-mode service drain
        worker retry a failed admission against a clean session.
        """
        name = arrival.ptg.name
        key = (arrival.time, name)
        if self._last_key is not None and key < self._last_key:
            raise ConfigurationError(
                f"arrival {name!r} at t={arrival.time} is in the past: the "
                f"session already admitted {self._last_key[1]!r} at "
                f"t={self._last_key[0]}"
            )
        if name in self._arrival_times:
            raise ConfigurationError(
                f"submitted applications must have unique names, got a "
                f"second {name!r}"
            )
        arrival.ptg.validate()

        # admission latency (wall time of this call) only ticks while a
        # metrics registry is active; disabled cost is one None check
        registry = meters.active()
        started = time.perf_counter() if registry is not None else 0.0

        with trace.span("stream.admit", app=name, tenant=arrival.tenant):
            now = arrival.time
            # stage the retirement of completed applications on copies:
            # committing it only with the admission keeps a failed admit
            # from changing what a later retry (at the same instant)
            # observes
            staged_running: Optional[List[Tuple[float, str]]] = None
            active_apps = self._active
            if self._running and self._running[0][0] <= now:
                staged_running = self._running[:]
                retired = set()
                while staged_running and staged_running[0][0] <= now:
                    _, expired = heapq.heappop(staged_running)
                    retired.add(expired)
                active_apps = {
                    app_name: ptg
                    for app_name, ptg in self._active.items()
                    if app_name not in retired
                }
            # applications still in the system at this instant, in arrival
            # order (the order the constraint strategies see)
            active = list(active_apps.values())
            concurrent = active + [arrival.ptg]
            strategy_betas = self.strategy.compute_betas(concurrent, self.platform)
            beta = strategy_betas[name]

            allocation = self.allocator.allocate(arrival.ptg, self.platform, beta=beta)
            first_start, done = self._map_transactional(
                AllocatedPTG(arrival.ptg, allocation), now
            )

            # ---- commit: the mapping succeeded, publish everything ----
            if staged_running is not None:
                self._running = staged_running
                self._active = active_apps
            self._betas[name] = beta
            self._active_log[name] = [p.name for p in active]
            self._allocations[name] = allocation
            self._completions[name] = done
            self._first_starts[name] = first_start
            self._arrival_times[name] = now
            self._tenants[name] = arrival.tenant
            self._arrivals.append(arrival)
            heapq.heappush(self._running, (done, name))
            self._active[name] = arrival.ptg
            self._last_key = key
            # the batched allocation tables served their one admission;
            # drop them so a long stream's high-water mark stays flat
            discard_allocation_tables(arrival.ptg)

        if registry is not None:
            registry.histogram("stream.admission_latency").observe(
                time.perf_counter() - started
            )
            registry.counter("stream.admissions").inc()
            registry.gauge("stream.active_applications").set(len(self._active))
            registry.gauge("stream.running_depth").set(len(self._running))
        return done

    def _map_transactional(
        self, allocated: AllocatedPTG, release_time: float
    ) -> Tuple[float, float]:
        """Run :meth:`_map_application` inside a timeline transaction.

        On any failure the timeline reservations, the engine's packing
        counter and the partially placed schedule entries are all rolled
        back before the exception propagates.
        """
        engine = self.engine
        packed_before = engine.packed_tasks
        engine.timelines.begin_transaction()
        try:
            result = self._map_application(allocated, release_time)
        except BaseException:
            engine.timelines.rollback_transaction()
            engine.packed_tasks = packed_before
            self.schedule.remove_application(allocated.name)
            raise
        engine.timelines.commit_transaction()
        return result

    def _map_application(
        self, allocated: AllocatedPTG, release_time: float
    ) -> Tuple[float, float]:
        """Place one application (bottom-level order, FCFS).

        Returns ``(first task start, last task finish)``, tracked while
        placing -- the incremental alternative to re-scanning the whole
        schedule for the application's makespan.
        """
        ptg = allocated.ptg
        levels = allocated.bottom_levels()
        topo_index = {tid: i for i, tid in enumerate(ptg.topological_order())}
        order = sorted(
            ptg.task_ids(), key=lambda tid: (-levels[tid], topo_index[tid])
        )
        first_start = float("inf")
        last_finish = 0.0
        engine = self.engine
        schedule = self.schedule
        allocation = allocated.allocation
        with trace.span("stream.map", app=ptg.name, tasks=str(ptg.n_tasks)):
            for tid in order:
                predecessors = [
                    (pred, ptg.edge_data(pred, tid)) for pred in ptg.predecessors(tid)
                ]
                entry = engine.place(
                    ptg_name=ptg.name,
                    task=ptg.task(tid),
                    allocation=allocation,
                    predecessors=predecessors,
                    schedule=schedule,
                    not_before=release_time,
                )
                if entry.start < first_start:
                    first_start = entry.start
                if entry.finish > last_finish:
                    last_finish = entry.finish
        return first_start, last_finish

    # ------------------------------------------------------------------ #
    # results
    # ------------------------------------------------------------------ #
    def result(self) -> StreamResult:
        """Snapshot of the run so far as a :class:`StreamResult`.

        The session stays usable afterwards: more arrivals can be fed
        and a later snapshot taken.  The snapshot shares the session's
        live schedule object (it is not copied), so treat it as
        read-only while the session is still being fed.
        """
        if not self._arrivals:
            raise ConfigurationError("at least one arrival is required")
        return StreamResult(
            platform=self.platform,
            arrivals=list(self._arrivals),
            betas=dict(self._betas),
            active_at_admission=dict(self._active_log),
            allocations=dict(self._allocations),
            schedule=self.schedule,
            strategy_name=self.strategy.name,
            completion_times=dict(self._completions),
            first_starts=dict(self._first_starts),
            arrival_times=dict(self._arrival_times),
            tenants=dict(self._tenants),
        )
