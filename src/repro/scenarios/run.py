"""Execute scenario specs on the existing scheduling and campaign machinery.

:func:`run_scenario` turns one
:class:`~repro.scenarios.spec.ScenarioSpec` into a
:class:`ScenarioResult`: the workload is regenerated from its seed, every
component is instantiated from its registry name, and the experiment runs
through :func:`repro.experiments.runner.run_experiment` -- so a default
spec reproduces the pre-scenario harness bit for bit.

:func:`run_scenarios` runs many specs with the campaign machinery:
multiprocessing fan-out (:mod:`repro.campaigns.pool`), an optional
spec-keyed persistent store (:mod:`repro.campaigns.store`) and
resume-after-interrupt -- each spec's
:meth:`~repro.scenarios.spec.ScenarioSpec.content_hash` is its shard key,
so a rerun of an already-stored spec is skipped, even from a different
process or a different sweep that happens to contain the same spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.allocation.base import AllocationProcedure
from repro.constraints.base import ConstraintStrategy
from repro.dag.graph import PTG
from repro.exceptions import CampaignError, ConfigurationError
from repro.experiments.runner import ExperimentResult, ProgressCallback, run_experiment
from repro.experiments.workload import make_workload
from repro.mapping.base import Mapper
from repro.platform.multicluster import MultiClusterPlatform
from repro.scenarios.registry import ALLOCATORS, MAPPERS, PLATFORMS, STRATEGIES
from repro.scenarios.spec import PipelineSpec, ScenarioSpec


def build_pipeline(pipeline: PipelineSpec) -> Tuple[AllocationProcedure, Mapper]:
    """Instantiate the (allocator, mapper) pair a pipeline spec names."""
    allocator = ALLOCATORS.create(pipeline.allocator)
    mapper = MAPPERS.create(pipeline.mapper, enable_packing=pipeline.packing)
    return allocator, mapper


def build_strategies(spec: ScenarioSpec) -> List[ConstraintStrategy]:
    """Instantiate the strategy set of a scenario.

    Strategies are built with the workload family (which selects the
    paper's ``mu`` defaults) and the pipeline's optional ``mu``
    override.
    """
    return [
        STRATEGIES.create(name, mu=spec.pipeline.mu, family=spec.workload.family)
        for name in spec.resolved_strategy_names()
    ]


def scenario_workload(spec: ScenarioSpec) -> List[PTG]:
    """Generate the PTGs of a scenario (deterministic in the seed).

    Non-built-in families dispatch through the
    :data:`~repro.scenarios.registry.FAMILIES` plugin registry inside
    :func:`~repro.experiments.workload.make_workload`.
    """
    return make_workload(spec.workload.to_workload_spec())


@dataclass
class ScenarioResult:
    """Outcome of one scenario: the spec plus the measured experiment.

    The experiment is a plain
    :class:`~repro.experiments.runner.ExperimentResult`, so every
    aggregation that works on harness results works here unchanged.
    """

    spec: ScenarioSpec
    experiment: ExperimentResult
    #: Telemetry summary captured by the run, when the spec asked for one
    #: (``spec.telemetry``); a plain-JSON document from
    #: :func:`repro.obs.export.telemetry_summary`.
    telemetry: Optional[Dict] = None

    @property
    def key(self) -> str:
        """The scenario's content hash (the store/shard key)."""
        return self.spec.content_hash()

    def unfairness_of(self, strategy_name: str) -> float:
        """Unfairness achieved by one strategy of the scenario."""
        return self.experiment.unfairness_of(strategy_name)

    def batch_makespans(self) -> Dict[str, float]:
        """Batch makespan of every strategy of the scenario."""
        return self.experiment.batch_makespans()


def run_scenario(
    spec: ScenarioSpec,
    platform: Optional[MultiClusterPlatform] = None,
    ptgs: Optional[Sequence[PTG]] = None,
    own_makespans: Optional[Dict[str, float]] = None,
) -> ScenarioResult:
    """Run one scenario and return its :class:`ScenarioResult`.

    Parameters
    ----------
    spec:
        The scenario to run.
    platform:
        Optional platform *object* overriding the spec's registry name
        -- the escape hatch for platforms that are not registered (the
        mu-sweep harness and the unit tests use it to reuse synthetic
        platforms).
    ptgs:
        Optional pre-generated workload (must match the spec's seed to
        keep results reproducible); sweeps that share one workload
        across many pipelines pass it to avoid regeneration.
    own_makespans:
        Optional precomputed single-application reference makespans,
        e.g. from the campaign cache.
    """
    if spec.is_streaming:
        raise ConfigurationError(
            f"scenario {spec.label()!r} has an arrivals section: run it with "
            f"repro.streaming.run_stream_scenario (CLI: repro-ptg stream / "
            f"repro-ptg run routes it automatically)"
        )
    if spec.faults is not None:
        raise ConfigurationError(
            f"scenario {spec.label()!r} has a faults section but no arrivals: "
            f"fault injection runs on the streaming path (add an arrivals "
            f"section, or drop the faults section for a plain batch run)"
        )
    target = platform if platform is not None else PLATFORMS.create(spec.platform)
    # The scenario starts its own telemetry session only when the caller
    # has not installed one (so ``repro trace`` keeps a single session).
    obs_session = None
    if spec.telemetry is not None and not obs.enabled():
        obs_session = obs.enable(spec.telemetry)
    try:
        workload = list(ptgs) if ptgs is not None else scenario_workload(spec)
        strategies = build_strategies(spec)
        allocator, mapper = build_pipeline(spec.pipeline)
        experiment = run_experiment(
            workload,
            target,
            strategies,
            workload_label=spec.workload.label(),
            own_makespans=own_makespans,
            allocator=allocator,
            mapper=mapper,
        )
    finally:
        if obs_session is not None:
            obs.disable()
    result = ScenarioResult(spec=spec, experiment=experiment)
    if obs_session is not None:
        result.telemetry = obs_session.summary(
            labels={"scenario": spec.label(), "key": result.key}
        )
    return result


def run_scenarios(
    specs: Sequence[ScenarioSpec],
    jobs: Optional[int] = None,
    store: Optional[Union[str, "object"]] = None,
    resume: bool = True,
    progress: Optional[ProgressCallback] = None,
) -> List[ScenarioResult]:
    """Run many scenarios with fan-out, persistence and resume.

    Parameters
    ----------
    specs:
        The scenarios to run (e.g. a :meth:`Scenario.sweep` expansion).
        Duplicate specs (same content hash) are executed once.
    jobs:
        Worker processes (``None``: one per CPU; ``1``: inline).
    store:
        A :class:`~repro.campaigns.store.CampaignStore` or directory
        path.  Results are keyed by spec content hash: completed specs
        are skipped on resume and every new result is appended as it
        arrives.  Unlike campaign stores, a scenario store is not bound
        to one fixed spec list -- the content-derived keys make mixing
        sweeps safe.
    resume:
        Whether an already-populated store may be continued; a populated
        store with ``resume=False`` raises, mirroring the campaign
        orchestrator.
    progress:
        Called with a short string after each scenario completes.

    Returns
    -------
    list of ScenarioResult
        One result per input spec, in input order (duplicates share the
        same experiment object).
    """
    # Imported lazily: repro.campaigns sits on the experiment layer and
    # its shard module imports repro.scenarios.spec, so a top-level
    # import here would be circular.
    from repro.campaigns.pool import run_shards
    from repro.campaigns.shards import make_shards_from_specs
    from repro.campaigns.store import CampaignStore

    specs = list(specs)
    if not specs:
        raise ConfigurationError("at least one scenario spec is required")
    if isinstance(store, (str, bytes)) or hasattr(store, "__fspath__"):
        store = CampaignStore(store)

    shards = make_shards_from_specs(specs)
    keys = [shard.key() for shard in shards]

    results: Dict[str, ExperimentResult] = {}
    cache = None
    if store is not None:
        results = store.results_by_key()
        if results and not resume:
            raise CampaignError(
                f"store {store.root} already holds {len(results)} result(s); pass "
                f"resume=True (--resume) to continue it or point at a fresh directory"
            )
        cache = store.load_cache()

    seen = set(results)
    pending = []
    for shard, key in zip(shards, keys):
        if key not in seen:
            seen.add(key)
            pending.append(shard)
    if progress is not None and len(shards) != len(pending):
        progress(f"resuming: {len(shards) - len(pending)}/{len(shards)} already done")

    failures: Dict[str, str] = {}
    for outcome in run_shards(pending, jobs=jobs, cache=cache, return_workload=False):
        if not outcome.ok:
            failures[outcome.label] = outcome.error or ""
            if progress is not None:
                progress(f"FAILED {outcome.label}")
            continue
        results[outcome.key] = outcome.result
        if store is not None:
            store.append(outcome.key, outcome.result)
            if outcome.telemetry is not None:
                from repro.obs.export import TELEMETRY_CHANNEL

                store.append_payload(TELEMETRY_CHANNEL, outcome.key, outcome.telemetry)
            if outcome.cache_entries:
                store.save_cache(cache)
        if progress is not None:
            progress(outcome.label)

    if failures:
        first_label, first_error = next(iter(failures.items()))
        raise CampaignError(
            f"{len(failures)} scenario(s) failed; first failure on "
            f"{first_label}:\n{first_error}"
        )
    return [
        ScenarioResult(spec=spec, experiment=_in_spec_order(spec, results[key]))
        for spec, key in zip(specs, keys)
    ]


def _in_spec_order(spec: ScenarioSpec, experiment: ExperimentResult) -> ExperimentResult:
    """Reorder the experiment's outcomes to the spec's strategy order.

    Records reloaded from a store have their outcome keys in canonical
    JSON (sorted) order; freshly executed ones are in strategy order.
    Normalising to the spec's order keeps fresh and resumed runs
    rendering identically.
    """
    order = [
        name for name in spec.resolved_strategy_names() if name in experiment.outcomes
    ]
    order += [name for name in experiment.outcomes if name not in order]
    experiment.outcomes = {name: experiment.outcomes[name] for name in order}
    return experiment
