"""Fluent scenario builder with cross-product sweeps.

:class:`Scenario` builds :class:`~repro.scenarios.spec.ScenarioSpec`
objects readably::

    spec = (
        Scenario.on("rennes")
        .workload(family="fft", n_ptgs=8)
        .pipeline(allocator="scrap", strategy="WPS-width", mapper="ready-list")
        .build()
    )

and :meth:`Scenario.sweep` expands named axes into the cross-product of
specs, which is how "8 strategies x 1 pipeline" becomes a full scenario
space (allocator x strategy x mapper x packing x platform x family)::

    specs = (
        Scenario.on("rennes")
        .workload(family="fft", n_ptgs=8)
        .sweep(strategy=["S", "ES"], allocator=["hcpa", "scrap-max"])
    )

Examples
--------
>>> spec = Scenario.on("lille").workload(family="strassen", n_ptgs=4).build()
>>> spec.platform, spec.workload.family
('lille', 'strassen')
>>> specs = Scenario.on("lille").sweep(allocator=["hcpa", "scrap"], packing=[True, False])
>>> len(specs)
4
>>> [(s.pipeline.allocator, s.pipeline.packing) for s in specs]
[('hcpa', True), ('hcpa', False), ('scrap', True), ('scrap', False)]
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Union

from repro.exceptions import ConfigurationError
from repro.scenarios.spec import PipelineSpec, ScenarioSpec, WorkloadSpec2

#: Sweepable axes, in the (fixed, documented) cross-product order:
#: earlier axes vary slowest.
SWEEP_AXES = (
    "platform",
    "family",
    "n_ptgs",
    "seed",
    "max_tasks",
    "allocator",
    "strategy",
    "mapper",
    "packing",
    "mu",
)


class Scenario:
    """Fluent builder of :class:`~repro.scenarios.spec.ScenarioSpec` objects.

    Builder state is plain keyword dictionaries; nothing is validated
    until :meth:`build` constructs the frozen spec, so axes can be set
    in any order and overridden freely.
    """

    def __init__(self, platform: str = "rennes") -> None:
        """Start a builder targeting *platform* (a registry name)."""
        self._platform = platform
        self._workload: Dict = {}
        self._pipeline: Dict = {}
        self._strategies: Optional[Union[str, Sequence[str]]] = None

    @classmethod
    def on(cls, platform: str) -> "Scenario":
        """Start a builder targeting *platform* (reads fluently)."""
        return cls(platform)

    # ------------------------------------------------------------------ #
    # axis setters
    # ------------------------------------------------------------------ #
    def workload(
        self,
        family: Optional[str] = None,
        n_ptgs: Optional[int] = None,
        seed: Optional[int] = None,
        max_tasks: Optional[int] = None,
    ) -> "Scenario":
        """Set workload fields; only the given keywords are overridden."""
        if family is not None:
            self._workload["family"] = family
        if n_ptgs is not None:
            self._workload["n_ptgs"] = n_ptgs
        if seed is not None:
            self._workload["seed"] = seed
        if max_tasks is not None:
            self._workload["max_tasks"] = max_tasks
        return self

    def pipeline(
        self,
        allocator: Optional[str] = None,
        strategy: Optional[Union[str, Sequence[str]]] = None,
        mapper: Optional[str] = None,
        packing: Optional[bool] = None,
        mu: Optional[float] = None,
    ) -> "Scenario":
        """Set pipeline fields; *strategy* takes one name or a sequence."""
        if allocator is not None:
            self._pipeline["allocator"] = allocator
        if mapper is not None:
            self._pipeline["mapper"] = mapper
        if packing is not None:
            self._pipeline["packing"] = packing
        if mu is not None:
            self._pipeline["mu"] = mu
        if strategy is not None:
            self._strategies = strategy
        return self

    def strategies(self, *names: str) -> "Scenario":
        """Select the strategy set to compare (explicit alternative to ``pipeline``)."""
        self._strategies = names
        return self

    # ------------------------------------------------------------------ #
    # terminal operations
    # ------------------------------------------------------------------ #
    def build(self) -> ScenarioSpec:
        """Construct (and thereby validate) the spec described so far."""
        return ScenarioSpec(
            platform=self._platform,
            workload=WorkloadSpec2(**self._workload),
            pipeline=PipelineSpec(**self._pipeline),
            strategies=self._strategies,
        )

    def sweep(self, **axes) -> List[ScenarioSpec]:
        """Expand named axes into the cross-product of specs.

        Each keyword names one of :data:`SWEEP_AXES` and takes a
        sequence of values (a scalar is treated as a one-element
        sequence).  The ``strategy`` axis accepts either single names
        (one strategy per spec -- the common per-strategy sweep) or
        tuples of names (one strategy *set* per spec).  Axes not swept
        keep the builder's current value; the expansion order is
        :data:`SWEEP_AXES` order with earlier axes varying slowest, so
        the resulting list is deterministic.
        """
        unknown = sorted(set(axes) - set(SWEEP_AXES))
        if unknown:
            raise ConfigurationError(
                f"unknown sweep axis/axes {unknown}; sweepable: {list(SWEEP_AXES)}"
            )
        names = [axis for axis in SWEEP_AXES if axis in axes]
        values = []
        for axis in names:
            axis_values = axes[axis]
            if isinstance(axis_values, (str, bytes)) or not isinstance(
                axis_values, (list, tuple)
            ):
                axis_values = [axis_values]
            if not axis_values:
                raise ConfigurationError(f"sweep axis {axis!r} has no values")
            values.append(list(axis_values))

        specs: List[ScenarioSpec] = []
        for combo in itertools.product(*values):
            clone = self._clone()
            for axis, value in zip(names, combo):
                clone._apply_axis(axis, value)
            specs.append(clone.build())
        return specs

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _clone(self) -> "Scenario":
        """An independent copy of the builder state."""
        clone = Scenario(self._platform)
        clone._workload = dict(self._workload)
        clone._pipeline = dict(self._pipeline)
        clone._strategies = self._strategies
        return clone

    def _apply_axis(self, axis: str, value) -> None:
        """Apply one sweep-axis value to this builder."""
        if axis == "platform":
            self._platform = value
        elif axis in ("family", "n_ptgs", "seed", "max_tasks"):
            self._workload[axis] = value
        elif axis == "strategy":
            self._strategies = value
        else:  # allocator, mapper, packing, mu
            self._pipeline[axis] = value
