"""Declarative, serializable scenario specifications.

A :class:`ScenarioSpec` is the one declarative description of an
experiment: it selects the platform, the workload family and size, the
allocation procedure, the constraint strategies, the mapper and the
packing mode -- all **by registry name**, so the whole spec round-trips
through JSON and a single file fully determines a computation.

Three frozen dataclasses compose a scenario:

* :class:`WorkloadSpec2` -- which applications compete (family, count,
  seed, optional size cap).  The ``2`` distinguishes it from the older
  :class:`repro.experiments.workload.WorkloadSpec` it wraps; the two
  describe identical workloads, but this one validates its family
  against the plugin registry (so ``mixed`` and third-party families
  work) and serialises itself.
* :class:`PipelineSpec` -- how the two-step pipeline is assembled
  (allocator, mapper, packing, optional ``mu`` override for the WPS
  strategies).
* :class:`ScenarioSpec` -- platform + workload + pipeline + the
  strategy set to compare.

Every spec has ``to_dict`` / ``from_dict`` (JSON round-trip is
identity), actionable validation errors naming the registry's available
entries, and a stable :meth:`ScenarioSpec.content_hash` that
:mod:`repro.campaigns.shards` uses as the shard key -- two scenarios
share a hash exactly when they describe the same computation.

Examples
--------
>>> spec = ScenarioSpec.from_dict({
...     "platform": "lille",
...     "workload": {"family": "fft", "n_ptgs": 2},
...     "pipeline": {"allocator": "hcpa"},
...     "strategies": ["S", "ES"],
... })
>>> spec.pipeline.allocator
'hcpa'
>>> ScenarioSpec.from_dict(spec.to_dict()) == spec
True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.constraints.registry import STRATEGY_NAMES
from repro.exceptions import ConfigurationError
from repro.faults.spec import FaultSpec
from repro.obs.config import TelemetrySpec
from repro.scenarios.registry import ALLOCATORS, FAMILIES, MAPPERS, PLATFORMS, STRATEGIES
from repro.service.spec import ServiceSpec
from repro.streaming.spec import ArrivalSpec
from repro.utils.digest import content_digest, platform_fingerprint

#: Version stamp of the spec serialisation format.
SPEC_FORMAT_VERSION = 1

#: Version stamp of the content-hash payload.  Shared with the campaign
#: shard keys (:data:`repro.campaigns.shards.SHARD_KEY_VERSION`): a
#: scenario's hash equals the key of the shard it expands to.
SPEC_HASH_VERSION = 2


def _check_known_keys(payload: Dict, allowed: Sequence[str], where: str) -> None:
    """Reject non-objects and unknown keys with an error naming the allowed ones."""
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"a {where} must be a JSON object, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise ConfigurationError(
            f"unknown key(s) {unknown} in {where}; allowed: {sorted(allowed)}"
        )


@dataclass(frozen=True)
class WorkloadSpec2:
    """Declarative workload selection: a registered family, a size, a seed.

    Identical content to :class:`repro.experiments.workload.WorkloadSpec`
    (the harness regenerates bit-identical PTGs from either), but the
    family is validated against the :data:`~repro.scenarios.registry.FAMILIES`
    plugin registry and the spec serialises itself.
    """

    family: str = "random"
    n_ptgs: int = 4
    seed: int = 0
    max_tasks: Optional[int] = None

    def __post_init__(self) -> None:
        """Validate and canonicalise the field values."""
        object.__setattr__(self, "family", FAMILIES.canonical(self.family))
        if not isinstance(self.n_ptgs, int) or self.n_ptgs < 1:
            raise ConfigurationError(
                f"n_ptgs must be a positive integer, got {self.n_ptgs!r}"
            )
        if self.max_tasks is not None and (
            not isinstance(self.max_tasks, int) or self.max_tasks < 1
        ):
            raise ConfigurationError(
                f"max_tasks must be a positive integer or null, got {self.max_tasks!r}"
            )
        if not isinstance(self.seed, int):
            raise ConfigurationError(f"seed must be an integer, got {self.seed!r}")

    def label(self) -> str:
        """Readable identifier used in logs and result records."""
        return f"{self.family}-x{self.n_ptgs}-seed{self.seed}"

    def to_dict(self) -> Dict:
        """Plain-JSON representation (inverse of :meth:`from_dict`)."""
        return {
            "family": self.family,
            "n_ptgs": self.n_ptgs,
            "seed": self.seed,
            "max_tasks": self.max_tasks,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "WorkloadSpec2":
        """Build a spec from a plain dict; unknown keys raise."""
        _check_known_keys(
            payload, ("family", "n_ptgs", "seed", "max_tasks"), "workload spec"
        )
        return cls(**payload)

    def to_workload_spec(self):
        """The equivalent harness :class:`repro.experiments.workload.WorkloadSpec`."""
        from repro.experiments.workload import WorkloadSpec

        return WorkloadSpec(
            family=self.family,
            n_ptgs=self.n_ptgs,
            seed=self.seed,
            max_tasks=self.max_tasks,
        )

    @classmethod
    def from_workload_spec(cls, spec) -> "WorkloadSpec2":
        """Build from a harness :class:`repro.experiments.workload.WorkloadSpec`."""
        return cls(
            family=spec.family,
            n_ptgs=spec.n_ptgs,
            seed=spec.seed,
            max_tasks=spec.max_tasks,
        )


@dataclass(frozen=True)
class PipelineSpec:
    """How the two-step pipeline is assembled, every component by name.

    Parameters
    ----------
    allocator:
        Name in :data:`~repro.scenarios.registry.ALLOCATORS`
        (paper default: ``scrap-max``).
    mapper:
        Name in :data:`~repro.scenarios.registry.MAPPERS`
        (paper default: ``ready-list``).
    packing:
        Whether the mapper may pack allocations down to fit earlier
        holes (the paper's mapping runs with packing on).
    mu:
        Optional override of the WPS weighting parameter, applied to
        every WPS strategy of the scenario; ``None`` uses the paper's
        per-family values.
    """

    allocator: str = "scrap-max"
    mapper: str = "ready-list"
    packing: bool = True
    mu: Optional[float] = None

    def __post_init__(self) -> None:
        """Validate and canonicalise the field values."""
        object.__setattr__(self, "allocator", ALLOCATORS.canonical(self.allocator))
        object.__setattr__(self, "mapper", MAPPERS.canonical(self.mapper))
        if not isinstance(self.packing, bool):
            raise ConfigurationError(
                f"packing must be a boolean, got {self.packing!r}"
            )
        if self.mu is not None:
            mu = float(self.mu)
            if not 0.0 <= mu <= 1.0:
                raise ConfigurationError(f"mu must be in [0, 1], got {self.mu!r}")
            object.__setattr__(self, "mu", mu)

    def label(self) -> str:
        """Readable identifier (e.g. ``hcpa+ready-list,nopack,mu=0.5``).

        Used in progress reports and failure summaries so that shards
        differing only in their pipeline stay distinguishable.
        """
        text = f"{self.allocator}+{self.mapper}"
        if not self.packing:
            text += ",nopack"
        if self.mu is not None:
            text += f",mu={self.mu:g}"
        return text

    def to_dict(self) -> Dict:
        """Plain-JSON representation (inverse of :meth:`from_dict`)."""
        return {
            "allocator": self.allocator,
            "mapper": self.mapper,
            "packing": self.packing,
            "mu": self.mu,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "PipelineSpec":
        """Build a spec from a plain dict; unknown keys raise."""
        _check_known_keys(
            payload, ("allocator", "mapper", "packing", "mu"), "pipeline spec"
        )
        return cls(**payload)


def _normalise_strategies(
    value: Optional[Union[str, Sequence[str]]],
) -> Optional[Tuple[str, ...]]:
    """Canonicalise a strategy selection: a name, a comma list, or a sequence."""
    if value is None:
        return None
    if isinstance(value, str):
        value = [part.strip() for part in value.split(",") if part.strip()]
    names = tuple(STRATEGIES.canonical(name) for name in value)
    if not names:
        raise ConfigurationError(
            f"strategies must name at least one strategy; available: "
            f"{STRATEGIES.names()}"
        )
    return names


@dataclass(frozen=True)
class ScenarioSpec:
    """The complete declarative description of one experiment.

    Every axis is selected by registry name, so the spec is fully
    serialisable and a JSON file determines the computation.  The
    *strategies* field may be ``None``, meaning the paper's strategy
    set for the workload family (the width-based strategies are
    dropped for Strassen workloads, as in the paper's Figure 5).
    """

    platform: str = "rennes"
    workload: WorkloadSpec2 = field(default_factory=WorkloadSpec2)
    pipeline: PipelineSpec = field(default_factory=PipelineSpec)
    strategies: Optional[Tuple[str, ...]] = None
    arrivals: Optional[ArrivalSpec] = None
    telemetry: Optional[TelemetrySpec] = None
    service: Optional[ServiceSpec] = None
    faults: Optional[FaultSpec] = None

    def __post_init__(self) -> None:
        """Validate and canonicalise the field values."""
        object.__setattr__(self, "platform", PLATFORMS.canonical(self.platform))
        if not isinstance(self.workload, WorkloadSpec2):
            raise ConfigurationError(
                f"workload must be a WorkloadSpec2, got {type(self.workload).__name__}"
            )
        if not isinstance(self.pipeline, PipelineSpec):
            raise ConfigurationError(
                f"pipeline must be a PipelineSpec, got {type(self.pipeline).__name__}"
            )
        if self.arrivals is not None and not isinstance(self.arrivals, ArrivalSpec):
            raise ConfigurationError(
                f"arrivals must be an ArrivalSpec or None, got "
                f"{type(self.arrivals).__name__}"
            )
        if self.telemetry is not None and not isinstance(self.telemetry, TelemetrySpec):
            raise ConfigurationError(
                f"telemetry must be a TelemetrySpec or None, got "
                f"{type(self.telemetry).__name__}"
            )
        if self.service is not None and not isinstance(self.service, ServiceSpec):
            raise ConfigurationError(
                f"service must be a ServiceSpec or None, got "
                f"{type(self.service).__name__}"
            )
        if self.faults is not None and not isinstance(self.faults, FaultSpec):
            raise ConfigurationError(
                f"faults must be a FaultSpec or None, got "
                f"{type(self.faults).__name__}"
            )
        object.__setattr__(
            self, "strategies", _normalise_strategies(self.strategies)
        )

    @property
    def is_streaming(self) -> bool:
        """Whether the scenario describes an online arrival stream.

        Streaming scenarios run through
        :func:`repro.streaming.run.run_stream_scenario`; the ``workload``
        section is unused for them (the arrivals spec carries its own
        family / size / seed).
        """
        return self.arrivals is not None

    # ------------------------------------------------------------------ #
    # resolution helpers
    # ------------------------------------------------------------------ #
    def resolved_strategy_names(self) -> Tuple[str, ...]:
        """The strategy names the scenario compares.

        An explicit selection is returned as-is; the default (``None``)
        is the paper's set for the workload family, without the
        width-based strategies for Strassen workloads (all Strassen
        graphs share the same width, so proportioning over it is
        meaningless -- the paper's Figure 5 legend).
        """
        if self.strategies is not None:
            return self.strategies
        names = STRATEGY_NAMES
        if self.resolved_family() == "strassen":
            names = [n for n in names if "width" not in n]
        return tuple(names)

    def resolved_family(self) -> str:
        """The application family of the scenario's workload.

        Streaming scenarios carry it in their arrivals section, batch
        scenarios in their workload section.
        """
        if self.arrivals is not None:
            return self.arrivals.family
        return self.workload.family

    def label(self) -> str:
        """Readable identifier used in logs and progress reports."""
        if self.arrivals is not None:
            return f"{self.arrivals.label()} on {self.platform}"
        return f"{self.workload.label()} on {self.platform}"

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        """Plain-JSON representation (inverse of :meth:`from_dict`)."""
        payload = {
            "format_version": SPEC_FORMAT_VERSION,
            "platform": self.platform,
            "workload": self.workload.to_dict(),
            "pipeline": self.pipeline.to_dict(),
            "strategies": list(self.strategies) if self.strategies else None,
        }
        if self.arrivals is not None:
            payload["arrivals"] = self.arrivals.to_dict()
        if self.telemetry is not None:
            payload["telemetry"] = self.telemetry.to_dict()
        if self.service is not None:
            payload["service"] = self.service.to_dict()
        if self.faults is not None:
            payload["faults"] = self.faults.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "ScenarioSpec":
        """Build a spec from a plain dict (e.g. a parsed JSON file).

        Missing sections fall back to their defaults; unknown keys and
        unknown registry names raise a
        :class:`~repro.exceptions.ConfigurationError` naming the
        allowed keys / available entries.
        """
        _check_known_keys(
            payload,
            (
                "format_version",
                "platform",
                "workload",
                "pipeline",
                "strategies",
                "arrivals",
                "telemetry",
                "service",
                "faults",
            ),
            "scenario spec",
        )
        version = payload.get("format_version", SPEC_FORMAT_VERSION)
        if version != SPEC_FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported scenario spec format_version {version!r} "
                f"(this build reads version {SPEC_FORMAT_VERSION})"
            )
        kwargs: Dict = {}
        if "platform" in payload:
            kwargs["platform"] = payload["platform"]
        if "workload" in payload:
            kwargs["workload"] = WorkloadSpec2.from_dict(payload["workload"] or {})
        if "pipeline" in payload:
            kwargs["pipeline"] = PipelineSpec.from_dict(payload["pipeline"] or {})
        if "strategies" in payload:
            kwargs["strategies"] = payload["strategies"]
        if payload.get("arrivals") is not None:
            kwargs["arrivals"] = ArrivalSpec.from_dict(payload["arrivals"])
        if payload.get("telemetry") is not None:
            telemetry = payload["telemetry"]
            # {"telemetry": true} is the shorthand for "all defaults on"
            if telemetry is True:
                telemetry = {}
            kwargs["telemetry"] = TelemetrySpec.from_dict(telemetry)
        if payload.get("service") is not None:
            service = payload["service"]
            # {"service": true} is the shorthand for "all defaults on"
            if service is True:
                service = {}
            kwargs["service"] = ServiceSpec.from_dict(service)
        if payload.get("faults") is not None:
            faults = payload["faults"]
            # {"faults": true} is the shorthand for "all defaults on"
            if faults is True:
                faults = {}
            kwargs["faults"] = FaultSpec.from_dict(faults)
        return cls(**kwargs)

    # ------------------------------------------------------------------ #
    # content hash
    # ------------------------------------------------------------------ #
    def content_hash(self) -> str:
        """Stable content-derived key of the scenario.

        The hash is a SHA-256 digest of a canonical payload covering the
        workload content, the *resolved* platform fingerprint (clusters,
        speeds, topology -- not just the name), the resolved strategy
        set and the pipeline.  It is independent of process, dict key
        order and platform object identity, and it equals the campaign
        shard key of the shard the scenario expands to, which is what
        makes spec-keyed stores resumable.
        """
        platform_obj = PLATFORMS.create(self.platform)
        return content_digest(
            scenario_hash_payload(
                family=self.workload.family,
                n_ptgs=self.workload.n_ptgs,
                seed=self.workload.seed,
                max_tasks=self.workload.max_tasks,
                platform_fp=platform_fingerprint(platform_obj),
                strategy_names=self.resolved_strategy_names(),
                pipeline=self.pipeline,
                arrivals=self.arrivals,
                telemetry=self.telemetry,
                service=self.service,
                faults=self.faults,
            )
        )


def scenario_hash_payload(
    family: str,
    n_ptgs: int,
    seed: int,
    max_tasks: Optional[int],
    platform_fp: str,
    strategy_names: Sequence[str],
    pipeline: PipelineSpec,
    arrivals: Optional[ArrivalSpec] = None,
    telemetry: Optional[TelemetrySpec] = None,
    service: Optional[ServiceSpec] = None,
    faults: Optional[FaultSpec] = None,
) -> Dict:
    """The canonical payload both spec hashes and shard keys digest.

    Kept as one shared function so
    :meth:`ScenarioSpec.content_hash` and
    :meth:`repro.campaigns.shards.ExperimentShard.key` can never drift
    apart: equal content produces equal keys on both paths.  The
    ``arrivals``, ``telemetry``, ``service`` and ``faults`` keys are
    only present when set, so the hashes of plain batch scenarios (and
    every pre-existing store) are unchanged.
    """
    payload = {
        "version": SPEC_HASH_VERSION,
        "workload": {
            "family": family,
            "n_ptgs": n_ptgs,
            "seed": seed,
            "max_tasks": max_tasks,
        },
        "platform": platform_fp,
        "strategies": list(strategy_names),
        "pipeline": {
            "allocator": pipeline.allocator,
            "mapper": pipeline.mapper,
            "packing": pipeline.packing,
            "mu": pipeline.mu,
        },
    }
    if arrivals is not None:
        payload["arrivals"] = arrivals.hash_payload()
    if telemetry is not None:
        payload["telemetry"] = telemetry.hash_payload()
    if service is not None:
        payload["service"] = service.hash_payload()
    if faults is not None:
        payload["faults"] = faults.hash_payload()
    return payload


def load_specs(payload: Union[Dict, List]) -> List[ScenarioSpec]:
    """Parse a JSON payload holding one spec or a list of specs.

    This is what ``repro-ptg run <spec.json>`` feeds a parsed file
    through: a single object yields a one-element list.
    """
    if isinstance(payload, dict):
        payload = [payload]
    if not isinstance(payload, list):
        raise ConfigurationError(
            f"a scenario file must hold an object or a list of objects, "
            f"got {type(payload).__name__}"
        )
    return [ScenarioSpec.from_dict(entry) for entry in payload]
