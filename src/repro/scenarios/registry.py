"""Name-based plugin registries for every axis of a scenario.

The paper's two-step approach is modular by construction: any
constrained allocation procedure can be paired with any constraint
strategy and any concurrent mapping procedure, on any platform, against
any workload family.  This module makes every one of those axes
*name-addressable* through one generic :class:`Registry` type, so a
serialisable :class:`~repro.scenarios.spec.ScenarioSpec` can select all
of them by string and third parties can plug in their own entries:

* :data:`ALLOCATORS` -- ``cpa`` / ``hcpa`` / ``scrap`` / ``scrap-max``,
* :data:`MAPPERS` -- ``ready-list`` / ``global-order`` (both accept
  ``enable_packing``),
* :data:`STRATEGIES` -- the eight constraint strategies of the paper,
  folded in from :mod:`repro.constraints.registry` behind the same
  interface,
* :data:`PLATFORMS` -- the four Grid'5000 sites plus the composed
  multi-site testbed,
* :data:`FAMILIES` -- the ``random`` / ``fft`` / ``strassen`` / ``mixed``
  workload families,
* :data:`ARRIVALS` -- the ``poisson`` / ``mmpp`` / ``trace`` arrival
  processes of the online (streaming) scenarios,
* :data:`FAULTS` -- the ``none`` / ``single-node`` / ``rolling`` /
  ``correlated-cluster`` fault plans of the perturbed-platform
  scenarios.

Lookups are case-insensitive and an unknown name always raises a
:class:`~repro.exceptions.ConfigurationError` that lists the available
entries.

Examples
--------
>>> ALLOCATORS.names()
['cpa', 'hcpa', 'scrap', 'scrap-max']
>>> type(ALLOCATORS.create("scrap-max")).__name__
'ScrapMaxAllocator'
>>> "READY-LIST" in MAPPERS
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.allocation.cpa import CPAAllocator
from repro.allocation.hcpa import HCPAAllocator
from repro.allocation.scrap import ScrapAllocator, ScrapMaxAllocator
from repro.constraints.registry import STRATEGY_NAMES, strategy
from repro.exceptions import ConfigurationError
from repro.experiments.workload import (
    APPLICATION_FAMILIES,
    WorkloadSpec,
    make_workload,
)
from repro.faults.timeline import (
    correlated_cluster_plan,
    none_plan,
    rolling_plan,
    single_node_plan,
)
from repro.mapping.global_order import GlobalOrderMapper
from repro.mapping.ready_list import ReadyListMapper
from repro.platform import grid5000
from repro.streaming.arrivals import mmpp_process, poisson_process, trace_process


@dataclass(frozen=True)
class RegistryEntry:
    """One named plugin: a factory plus a human-readable description."""

    name: str
    factory: Callable[..., Any]
    description: str = ""


class Registry:
    """A generic, case-insensitive, name-based plugin registry.

    Every pluggable axis of a scenario (allocators, mappers, strategies,
    platforms, workload families) is an instance of this class.  Third
    parties extend an axis by registering a factory under a new name --
    either directly or as a decorator::

        @PLATFORMS.register("my-lab", description="our local cluster")
        def _my_lab():
            return heterogeneous_platform((32, 64), (3.0, 4.0), name="my-lab")

    -- after which the name is valid anywhere a scenario selects that
    axis (spec files, the builder, the ``repro-ptg run`` CLI).
    """

    def __init__(self, kind: str) -> None:
        """Create an empty registry for entries of the given *kind* (e.g. ``"allocator"``)."""
        self.kind = kind
        self._entries: Dict[str, RegistryEntry] = {}

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register(
        self,
        name: str,
        factory: Optional[Callable[..., Any]] = None,
        *,
        description: str = "",
        replace: bool = False,
    ):
        """Register *factory* under *name*; usable directly or as a decorator.

        Parameters
        ----------
        name:
            The public name of the entry (looked up case-insensitively).
        factory:
            Callable building the entry.  When omitted, ``register``
            returns a decorator that registers the decorated callable.
        description:
            One-line description shown by ``repro-ptg list``.
        replace:
            Whether an existing entry of the same name may be replaced;
            accidental redefinition raises otherwise.
        """
        if factory is None:
            def decorator(func: Callable[..., Any]) -> Callable[..., Any]:
                self.register(name, func, description=description, replace=replace)
                return func

            return decorator
        key = name.strip().lower()
        if not key:
            raise ConfigurationError(f"{self.kind} name must be a non-empty string")
        if key in self._entries and not replace:
            raise ConfigurationError(
                f"{self.kind} {name!r} is already registered; pass replace=True "
                f"to override it"
            )
        self._entries[key] = RegistryEntry(
            name=name.strip(), factory=factory, description=description
        )
        return factory

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def canonical(self, name: str) -> str:
        """The registered spelling of *name*, raising on unknown names."""
        return self.entry(name).name

    def entry(self, name: str) -> RegistryEntry:
        """The :class:`RegistryEntry` called *name* (case-insensitive)."""
        key = str(name).strip().lower()
        try:
            return self._entries[key]
        except KeyError:
            raise ConfigurationError(
                f"unknown {self.kind} {name!r}; available: {self.names()}"
            ) from None

    def create(self, name: str, **kwargs) -> Any:
        """Instantiate the entry called *name* with keyword arguments."""
        return self.entry(name).factory(**kwargs)

    def names(self) -> List[str]:
        """Registered names, in registration order."""
        return [entry.name for entry in self._entries.values()]

    def describe(self) -> Dict[str, str]:
        """Mapping of registered name to description, in registration order."""
        return {entry.name: entry.description for entry in self._entries.values()}

    def __contains__(self, name: str) -> bool:
        """Whether *name* (case-insensitive) is registered."""
        return str(name).strip().lower() in self._entries

    def __iter__(self) -> Iterator[str]:
        """Iterate over the registered names."""
        return iter(self.names())

    def __len__(self) -> int:
        """Number of registered entries."""
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Registry({self.kind!r}, entries={self.names()})"


# ---------------------------------------------------------------------- #
# built-in registries
# ---------------------------------------------------------------------- #

#: Allocation procedures, by the names used in the paper.
ALLOCATORS = Registry("allocator")
ALLOCATORS.register(
    "cpa", CPAAllocator,
    description="Critical Path and Area balance (homogeneous single cluster)",
)
ALLOCATORS.register(
    "hcpa", HCPAAllocator,
    description="Heterogeneous CPA on the reference cluster",
)
ALLOCATORS.register(
    "scrap", ScrapAllocator,
    description="constrained allocation, global area constraint",
)
ALLOCATORS.register(
    "scrap-max", ScrapMaxAllocator,
    description="constrained allocation, per-precedence-level constraint (paper default)",
)

#: Concurrent mapping procedures.  Both accept ``enable_packing``.
MAPPERS = Registry("mapper")
MAPPERS.register(
    "ready-list", ReadyListMapper,
    description="event-driven list scheduling over the ready tasks (paper default)",
)
MAPPERS.register(
    "global-order", GlobalOrderMapper,
    description="single global bottom-level ordering (the Figure 1 baseline)",
)

#: Constraint strategies, folded in from :mod:`repro.constraints.registry`.
STRATEGIES = Registry("strategy")

_STRATEGY_DESCRIPTIONS = {
    "S": "selfish: every application takes the whole platform",
    "ES": "equal share: beta = 1 / n applications",
    "PS-cp": "share proportional to critical path length",
    "PS-width": "share proportional to maximal width",
    "PS-work": "share proportional to total work",
    "WPS-cp": "weighted proportional share over critical path (mu-damped)",
    "WPS-width": "weighted proportional share over width (mu-damped)",
    "WPS-work": "weighted proportional share over work (mu-damped)",
}


def _register_strategies() -> None:
    """Fold the constraint-strategy registry into the scenario interface."""
    def make_factory(strategy_name: str) -> Callable[..., Any]:
        def factory(mu: Optional[float] = None, family: str = "default"):
            return strategy(strategy_name, mu=mu, family=family)

        return factory

    for name in STRATEGY_NAMES:
        STRATEGIES.register(
            name, make_factory(name), description=_STRATEGY_DESCRIPTIONS[name]
        )


_register_strategies()

#: Target platforms: the paper's four Grid'5000 sites plus the composed
#: multi-site testbed.  Factories take no arguments.
PLATFORMS = Registry("platform")
PLATFORMS.register(
    "lille", grid5000.lille,
    description="Grid'5000 Lille subset: 3 clusters, 99 processors",
)
PLATFORMS.register(
    "nancy", grid5000.nancy,
    description="Grid'5000 Nancy subset: 2 clusters, 167 processors",
)
PLATFORMS.register(
    "rennes", grid5000.rennes,
    description="Grid'5000 Rennes subset: 3 clusters, 229 processors",
)
PLATFORMS.register(
    "sophia", grid5000.sophia,
    description="Grid'5000 Sophia subset: 3 clusters, 180 processors",
)
PLATFORMS.register(
    "grid5000", grid5000.composed,
    description="all four sites composed: 11 clusters, 675 processors",
)

#: Workload families.  Factories take ``(n_ptgs, seed, max_tasks)`` and
#: return the generated PTGs, delegating to
#: :func:`repro.experiments.workload.make_workload` so scenario-built
#: workloads are bit-identical to harness-built ones.
FAMILIES = Registry("workload family")

_FAMILY_DESCRIPTIONS = {
    "random": "layered random DAGs (10/20/50 tasks, paper shape parameters)",
    "fft": "FFT PTGs of 4/8/16 points (15/39/95 tasks)",
    "strassen": "Strassen PTGs (25 tasks, identical shape)",
    "mixed": "applications cycle through random / FFT / Strassen",
}


def _register_families() -> None:
    """Expose every application family as a workload factory."""
    def make_factory(family: str) -> Callable[..., Any]:
        def factory(n_ptgs: int = 4, seed: int = 0, max_tasks: Optional[int] = None):
            return make_workload(
                WorkloadSpec(family=family, n_ptgs=n_ptgs, seed=seed, max_tasks=max_tasks)
            )

        return factory

    for name in APPLICATION_FAMILIES:
        FAMILIES.register(
            name, make_factory(name), description=_FAMILY_DESCRIPTIONS[name]
        )


_register_families()

#: Arrival-time processes for online (streaming) scenarios.  Factories
#: follow the uniform keyword contract of
#: :mod:`repro.streaming.arrivals`: they accept ``rate`` / ``burst`` /
#: ``dwell`` / ``trace`` keywords and ignore what they do not need, so
#: an :class:`~repro.streaming.spec.ArrivalSpec` can instantiate any of
#: them (built-in or third-party) the same way.
ARRIVALS = Registry("arrival process")
ARRIVALS.register(
    "poisson", poisson_process,
    description="memoryless arrivals at a constant rate",
)
ARRIVALS.register(
    "mmpp", mmpp_process,
    description="bursty two-phase Markov-modulated Poisson process",
)
ARRIVALS.register(
    "trace", trace_process,
    description="replay of explicit submission instants (trace-driven)",
)

#: Fault plans for perturbed-platform scenarios.  Factories follow the
#: uniform keyword contract of :mod:`repro.faults.timeline`: they accept
#: ``platform`` / ``rng`` / ``count`` / ``start`` / ``duration`` /
#: ``gap`` / ``nodes`` / ``bandwidth`` / ``slowdown`` keywords and
#: ignore what they do not need, so a
#: :class:`~repro.faults.spec.FaultSpec` can instantiate any of them
#: (built-in or third-party) the same way.
FAULTS = Registry("fault plan")
FAULTS.register(
    "none", none_plan,
    description="no faults: the static platform of the paper (default)",
)
FAULTS.register(
    "single-node", single_node_plan,
    description="independent node crashes on randomly drawn clusters",
)
FAULTS.register(
    "rolling", rolling_plan,
    description="staggered outage sweeping the clusters in declaration order",
)
FAULTS.register(
    "correlated-cluster", correlated_cluster_plan,
    description="whole-cluster outages (a failed switch takes every node)",
)

#: Campaign executors: how :func:`repro.campaigns.orchestrator.orchestrate`
#: fans shards out.  Factories are lazy (the :mod:`repro.exec` modules
#: import the campaign pool, which imports the scenario layer) and
#: forward keyword arguments to the executor constructors.
EXECUTORS = Registry("executor")


def _serial_executor(**kwargs: Any) -> Any:
    """Build a :class:`repro.exec.serial.SerialExecutor` (lazy import)."""
    from repro.exec.serial import SerialExecutor

    return SerialExecutor(**kwargs)


def _process_pool_executor(**kwargs: Any) -> Any:
    """Build a :class:`repro.exec.procpool.ProcessPoolExecutor` (lazy import)."""
    from repro.exec.procpool import ProcessPoolExecutor

    return ProcessPoolExecutor(**kwargs)


def _local_cluster_executor(**kwargs: Any) -> Any:
    """Build a :class:`repro.exec.cluster.LocalClusterExecutor` (lazy import)."""
    from repro.exec.cluster import LocalClusterExecutor

    return LocalClusterExecutor(**kwargs)


EXECUTORS.register(
    "serial", _serial_executor,
    description="run every shard inline in the calling process",
)
EXECUTORS.register(
    "process-pool", _process_pool_executor,
    description="multiprocessing fan-out across pool workers (default)",
)
EXECUTORS.register(
    "local-cluster", _local_cluster_executor,
    description="N worker processes over a spool with work-stealing shard leases",
)

#: All built-in registries, keyed by the plural nouns the CLI uses
#: (``repro-ptg list allocators`` etc.).
REGISTRIES: Dict[str, Registry] = {
    "allocators": ALLOCATORS,
    "mappers": MAPPERS,
    "strategies": STRATEGIES,
    "platforms": PLATFORMS,
    "families": FAMILIES,
    "arrivals": ARRIVALS,
    "faults": FAULTS,
    "executors": EXECUTORS,
}
