"""Declarative, serializable scenarios with unified plugin registries.

This package is the front door of the experiment harness: a
:class:`~repro.scenarios.spec.ScenarioSpec` describes one experiment --
platform, workload family, allocation procedure, constraint strategies,
mapper, packing -- entirely by registry name, round-trips through JSON,
and runs on the existing scheduler / simulator / campaign machinery:

* :mod:`repro.scenarios.registry` -- the generic plugin
  :class:`~repro.scenarios.registry.Registry` and the built-in axes
  (:data:`ALLOCATORS`, :data:`MAPPERS`, :data:`STRATEGIES`,
  :data:`PLATFORMS`, :data:`FAMILIES`),
* :mod:`repro.scenarios.spec` -- the frozen spec dataclasses with
  JSON round-trip and stable content hashes,
* :mod:`repro.scenarios.builder` -- the fluent
  :class:`~repro.scenarios.builder.Scenario` builder and its
  cross-product ``sweep()``,
* :mod:`repro.scenarios.run` -- :func:`run_scenario` /
  :func:`run_scenarios` execution, including spec-keyed persistent
  stores with resume.
"""

from repro.scenarios.builder import Scenario, SWEEP_AXES
from repro.scenarios.registry import (
    ALLOCATORS,
    ARRIVALS,
    FAMILIES,
    MAPPERS,
    PLATFORMS,
    REGISTRIES,
    STRATEGIES,
    Registry,
    RegistryEntry,
)
from repro.scenarios.run import (
    ScenarioResult,
    build_pipeline,
    build_strategies,
    run_scenario,
    run_scenarios,
    scenario_workload,
)
from repro.scenarios.spec import (
    PipelineSpec,
    ScenarioSpec,
    SPEC_FORMAT_VERSION,
    SPEC_HASH_VERSION,
    WorkloadSpec2,
    load_specs,
    scenario_hash_payload,
)

__all__ = [
    "Registry",
    "RegistryEntry",
    "ALLOCATORS",
    "ARRIVALS",
    "MAPPERS",
    "STRATEGIES",
    "PLATFORMS",
    "FAMILIES",
    "REGISTRIES",
    "ScenarioSpec",
    "PipelineSpec",
    "WorkloadSpec2",
    "SPEC_FORMAT_VERSION",
    "SPEC_HASH_VERSION",
    "load_specs",
    "scenario_hash_payload",
    "Scenario",
    "SWEEP_AXES",
    "ScenarioResult",
    "run_scenario",
    "run_scenarios",
    "build_pipeline",
    "build_strategies",
    "scenario_workload",
]
