"""Interconnection network model.

The paper's platforms are single-site multi-clusters: "As the clusters are
generally located in a single site, the network latency between the
different nodes is that of a LAN."  What differs between sites is whether
the clusters share a switch (Rennes, Lille) or each cluster has its own
switch (Nancy, Sophia), "which leads to different contention conditions".

We model this with:

* :class:`Switch` -- a shared medium with a finite backplane bandwidth and
  a latency; every transfer traversing the switch shares its bandwidth
  (fair sharing, implemented by the simulation substrate),
* :class:`NetworkLink` -- the link between a cluster and its switch, and
  between two switches,
* :class:`NetworkTopology` -- maps clusters to switches and answers the
  question "which switches does a transfer between cluster A and cluster
  B traverse?".

The default numeric values (1 GbE links, 10 Gb/s switch backplanes,
100 microseconds of latency per hop) are typical of the Grid'5000 LANs of
the period; they are configurable so sensitivity studies are possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import InvalidPlatformError

#: Default bandwidth of the link between ONE compute node and its switch
#: (bytes/s).  Grid'5000 nodes of the period had gigabit NICs; a cluster's
#: aggregate access bandwidth is ``num_processors x DEFAULT_LINK_BANDWIDTH``
#: because every node has its own NIC (data redistribution between two
#: processor sets uses many NICs in parallel).
DEFAULT_LINK_BANDWIDTH = 125e6  # 1 Gb/s per node
#: Default switch backplane bandwidth shared by the inter-cluster flows
#: traversing the switch (bytes/s).  This is the resource whose sharing
#: differentiates the shared-switch sites (Rennes, Lille) from the
#: per-cluster-switch sites (Nancy, Sophia).
DEFAULT_SWITCH_BANDWIDTH = 2.5e9  # 20 Gb/s aggregation capacity
#: Default one-hop latency in seconds (LAN).
DEFAULT_LATENCY = 1e-4


@dataclass(frozen=True)
class Switch:
    """A network switch with a finite, fair-shared backplane bandwidth."""

    name: str
    bandwidth: float = DEFAULT_SWITCH_BANDWIDTH
    latency: float = DEFAULT_LATENCY

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidPlatformError("switch name must be a non-empty string")
        if not self.bandwidth > 0:
            raise InvalidPlatformError(
                f"switch {self.name!r}: bandwidth must be positive, got {self.bandwidth!r}"
            )
        if self.latency < 0:
            raise InvalidPlatformError(
                f"switch {self.name!r}: latency must be non-negative, got {self.latency!r}"
            )


@dataclass(frozen=True)
class NetworkLink:
    """A point-to-point link (cluster <-> switch or switch <-> switch)."""

    name: str
    bandwidth: float = DEFAULT_LINK_BANDWIDTH
    latency: float = DEFAULT_LATENCY

    def __post_init__(self) -> None:
        if not self.bandwidth > 0:
            raise InvalidPlatformError(
                f"link {self.name!r}: bandwidth must be positive, got {self.bandwidth!r}"
            )
        if self.latency < 0:
            raise InvalidPlatformError(
                f"link {self.name!r}: latency must be non-negative, got {self.latency!r}"
            )


@dataclass
class NetworkTopology:
    """Cluster-to-switch assignment plus inter-switch connectivity.

    Parameters
    ----------
    switches:
        The switches of the site.
    attachment:
        Mapping from cluster name to the name of the switch it is attached
        to.  Several clusters may share a switch (Rennes, Lille) or each
        may have its own (Nancy, Sophia).
    link_bandwidth, link_latency:
        Characteristics of the cluster <-> switch links (and of the
        inter-switch links when there are several switches).

    Notes
    -----
    When the topology contains more than one switch, the switches are
    assumed to be connected to each other through a single site backbone
    (a full mesh of switch-to-switch links with the same characteristics
    as the access links).  This matches the flat LAN structure of the
    Grid'5000 sites of the paper.
    """

    switches: Sequence[Switch]
    attachment: Mapping[str, str]
    link_bandwidth: float = DEFAULT_LINK_BANDWIDTH
    link_latency: float = DEFAULT_LATENCY
    _switch_index: Dict[str, Switch] = field(init=False, repr=False, default_factory=dict)

    def __post_init__(self) -> None:
        self.switches = tuple(self.switches)
        if not self.switches:
            raise InvalidPlatformError("a network topology needs at least one switch")
        names = [s.name for s in self.switches]
        if len(set(names)) != len(names):
            raise InvalidPlatformError(f"duplicate switch names in topology: {names}")
        self._switch_index = {s.name: s for s in self.switches}
        self.attachment = dict(self.attachment)
        for cluster_name, switch_name in self.attachment.items():
            if switch_name not in self._switch_index:
                raise InvalidPlatformError(
                    f"cluster {cluster_name!r} attached to unknown switch {switch_name!r}"
                )
        if not self.link_bandwidth > 0:
            raise InvalidPlatformError("link_bandwidth must be positive")
        if self.link_latency < 0:
            raise InvalidPlatformError("link_latency must be non-negative")

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def switch_names(self) -> List[str]:
        """Names of the switches, in declaration order."""
        return [s.name for s in self.switches]

    def switch(self, name: str) -> Switch:
        """Return the switch called *name*."""
        try:
            return self._switch_index[name]
        except KeyError:
            raise InvalidPlatformError(f"unknown switch {name!r}") from None

    def switch_of(self, cluster_name: str) -> Switch:
        """Return the switch the cluster called *cluster_name* is attached to."""
        try:
            return self._switch_index[self.attachment[cluster_name]]
        except KeyError:
            raise InvalidPlatformError(
                f"cluster {cluster_name!r} is not attached to this topology"
            ) from None

    def clusters_on(self, switch_name: str) -> List[str]:
        """Names of clusters attached to *switch_name*."""
        self.switch(switch_name)
        return [c for c, s in self.attachment.items() if s == switch_name]

    def shares_switch(self, cluster_a: str, cluster_b: str) -> bool:
        """True when both clusters are attached to the same switch."""
        return self.switch_of(cluster_a).name == self.switch_of(cluster_b).name

    def route(self, src_cluster: str, dst_cluster: str) -> List[Switch]:
        """Switches traversed by a transfer from *src_cluster* to *dst_cluster*.

        Intra-cluster transfers still traverse the cluster's switch once
        (data redistribution between two different processor sets of the
        same cluster goes through the switch).  Inter-cluster transfers on
        the same switch traverse it once; transfers between clusters on
        different switches traverse both switches.
        """
        src_switch = self.switch_of(src_cluster)
        dst_switch = self.switch_of(dst_cluster)
        if src_switch.name == dst_switch.name:
            return [src_switch]
        return [src_switch, dst_switch]

    def hop_count(self, src_cluster: str, dst_cluster: str) -> int:
        """Number of links traversed (used for latency accounting)."""
        if src_cluster == dst_cluster:
            return 2  # out to the switch and back
        if self.shares_switch(src_cluster, dst_cluster):
            return 2  # cluster -> switch -> cluster
        return 3  # cluster -> switch -> switch -> cluster

    def path_latency(self, src_cluster: str, dst_cluster: str) -> float:
        """Total latency of the path between two clusters (seconds)."""
        hops = self.hop_count(src_cluster, dst_cluster)
        switch_lat = sum(s.latency for s in self.route(src_cluster, dst_cluster))
        return hops * self.link_latency + switch_lat

    def path_bandwidth(self, src_cluster: str, dst_cluster: str) -> float:
        """Bottleneck bandwidth of the path for a single-node pair (bytes/s).

        This is the rate one node of the source cluster can sustain towards
        one node of the destination cluster: the minimum of the per-node
        link bandwidth and the switch backplanes on the route.  Redis-
        tributions between *sets* of processors aggregate many node pairs;
        use :class:`repro.mapping.comm.CommunicationEstimator` (which knows
        the cluster sizes) for those.
        """
        switch_bw = min(s.bandwidth for s in self.route(src_cluster, dst_cluster))
        return min(self.link_bandwidth, switch_bw)

    def cluster_access_bandwidth(self, num_processors: int) -> float:
        """Aggregate access bandwidth of a cluster of *num_processors* nodes."""
        if num_processors < 1:
            raise InvalidPlatformError(
                f"num_processors must be >= 1, got {num_processors}"
            )
        return num_processors * self.link_bandwidth

    def route_bandwidth(
        self, src_cluster: str, dst_cluster: str, src_nodes: int, dst_nodes: int
    ) -> float:
        """Bottleneck bandwidth of a redistribution between two node sets.

        The transfer is limited by the aggregate NIC pools of the two node
        sets and by the backplane of every switch on the route.
        """
        switch_bw = min(s.bandwidth for s in self.route(src_cluster, dst_cluster))
        return min(
            self.cluster_access_bandwidth(src_nodes),
            self.cluster_access_bandwidth(dst_nodes),
            switch_bw,
        )

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def shared_switch(
        cls,
        cluster_names: Iterable[str],
        switch_name: str = "site-switch",
        switch_bandwidth: float = DEFAULT_SWITCH_BANDWIDTH,
        latency: float = DEFAULT_LATENCY,
        link_bandwidth: float = DEFAULT_LINK_BANDWIDTH,
    ) -> "NetworkTopology":
        """All clusters attached to one shared switch (Rennes / Lille style)."""
        switch = Switch(switch_name, bandwidth=switch_bandwidth, latency=latency)
        attachment = {name: switch_name for name in cluster_names}
        if not attachment:
            raise InvalidPlatformError("shared_switch needs at least one cluster")
        return cls(
            switches=[switch],
            attachment=attachment,
            link_bandwidth=link_bandwidth,
            link_latency=latency,
        )

    @classmethod
    def per_cluster_switch(
        cls,
        cluster_names: Iterable[str],
        switch_bandwidth: float = DEFAULT_SWITCH_BANDWIDTH,
        latency: float = DEFAULT_LATENCY,
        link_bandwidth: float = DEFAULT_LINK_BANDWIDTH,
    ) -> "NetworkTopology":
        """One private switch per cluster (Nancy / Sophia style)."""
        cluster_names = list(cluster_names)
        if not cluster_names:
            raise InvalidPlatformError("per_cluster_switch needs at least one cluster")
        switches = [
            Switch(f"switch-{name}", bandwidth=switch_bandwidth, latency=latency)
            for name in cluster_names
        ]
        attachment = {name: f"switch-{name}" for name in cluster_names}
        return cls(
            switches=switches,
            attachment=attachment,
            link_bandwidth=link_bandwidth,
            link_latency=latency,
        )
