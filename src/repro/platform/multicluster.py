"""Multi-cluster platform: a named set of clusters plus their network.

This is the top-level platform object consumed by the allocation
procedures (through the reference-cluster abstraction), the mapping
procedures (through per-cluster processor timelines) and the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import InvalidPlatformError
from repro.platform.cluster import Cluster
from repro.platform.network import NetworkTopology


@dataclass
class MultiClusterPlatform:
    """A heterogeneous multi-cluster platform.

    Parameters
    ----------
    name:
        Platform name (e.g. the Grid'5000 site name ``"rennes"``).
    clusters:
        The clusters composing the platform.  Cluster names must be unique.
    topology:
        The interconnection topology.  When omitted, all clusters are
        attached to a single shared switch.

    Examples
    --------
    >>> from repro.platform import Cluster, MultiClusterPlatform
    >>> p = MultiClusterPlatform(
    ...     "demo",
    ...     [Cluster("a", 10, 2.0), Cluster("b", 20, 4.0)],
    ... )
    >>> p.total_processors
    30
    >>> p.total_power_gflops
    100.0
    >>> round(p.heterogeneity, 3)
    1.0
    """

    name: str
    clusters: Sequence[Cluster]
    topology: Optional[NetworkTopology] = None
    _index: Dict[str, Cluster] = field(init=False, repr=False, default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidPlatformError("platform name must be a non-empty string")
        self.clusters = tuple(self.clusters)
        if not self.clusters:
            raise InvalidPlatformError(
                f"platform {self.name!r} must contain at least one cluster"
            )
        names = [c.name for c in self.clusters]
        if len(set(names)) != len(names):
            raise InvalidPlatformError(
                f"platform {self.name!r} has duplicate cluster names: {names}"
            )
        self._index = {c.name: c for c in self.clusters}
        if self.topology is None:
            self.topology = NetworkTopology.shared_switch(
                names, switch_name=f"{self.name}-switch"
            )
        for cluster_name in names:
            # raises if a cluster is not attached
            self.topology.switch_of(cluster_name)

    # ------------------------------------------------------------------ #
    # container protocol
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[Cluster]:
        return iter(self.clusters)

    def __len__(self) -> int:
        return len(self.clusters)

    def __contains__(self, cluster_name: str) -> bool:
        return cluster_name in self._index

    def cluster(self, name: str) -> Cluster:
        """Return the cluster called *name*."""
        try:
            return self._index[name]
        except KeyError:
            raise InvalidPlatformError(
                f"platform {self.name!r} has no cluster named {name!r}"
            ) from None

    def cluster_names(self) -> List[str]:
        """Names of the clusters, in declaration order."""
        return [c.name for c in self.clusters]

    # ------------------------------------------------------------------ #
    # aggregate quantities
    # ------------------------------------------------------------------ #
    @property
    def total_processors(self) -> int:
        """Total number of processors over all clusters."""
        return sum(c.num_processors for c in self.clusters)

    @property
    def total_power_gflops(self) -> float:
        """Total processing power in GFlop/s (the denominator of ``beta``)."""
        return sum(c.power_gflops for c in self.clusters)

    @property
    def total_power_flops(self) -> float:
        """Total processing power in flop/s."""
        return sum(c.power_flops for c in self.clusters)

    @property
    def min_speed_gflops(self) -> float:
        """Speed of the slowest processors (GFlop/s)."""
        return min(c.speed_gflops for c in self.clusters)

    @property
    def max_speed_gflops(self) -> float:
        """Speed of the fastest processors (GFlop/s)."""
        return max(c.speed_gflops for c in self.clusters)

    @property
    def max_cluster_size(self) -> int:
        """Largest number of processors available inside a single cluster.

        A data-parallel task must execute within one cluster, so this
        bounds the useful allocation of any single task.
        """
        return max(c.num_processors for c in self.clusters)

    @property
    def heterogeneity(self) -> float:
        """Heterogeneity of the platform as defined in the paper.

        "The heterogeneity of a platform is determined by the ratio
        between the speeds of the fastest and slowest processors."  We
        report it as ``max_speed / min_speed - 1`` which yields the
        percentages quoted in the paper (e.g. 20.2% for Lille).
        """
        return self.max_speed_gflops / self.min_speed_gflops - 1.0

    @property
    def heterogeneity_percent(self) -> float:
        """Heterogeneity expressed as a percentage (paper Table 1)."""
        return 100.0 * self.heterogeneity

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def describe(self) -> List[Tuple[str, int, float]]:
        """Rows ``(cluster name, #processors, GFlop/s)`` as in Table 1."""
        return [(c.name, c.num_processors, c.speed_gflops) for c in self.clusters]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        rows = ", ".join(
            f"{c.name}({c.num_processors}x{c.speed_gflops})" for c in self.clusters
        )
        return (
            f"Platform {self.name}: {self.total_processors} procs, "
            f"{self.total_power_gflops:.1f} GFlop/s [{rows}]"
        )
