"""Synthetic platform builders.

These helpers build platforms that are *not* in the paper's Table 1.  They
are used by the unit tests (small controllable platforms), the examples
(custom platform walk-through), and the ablation benchmarks (varying
heterogeneity and switch sharing while keeping total power constant).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import InvalidPlatformError
from repro.platform.cluster import Cluster
from repro.platform.multicluster import MultiClusterPlatform
from repro.platform.network import NetworkTopology
from repro.utils.rng import ensure_rng


def single_cluster_platform(
    num_processors: int = 64,
    speed_gflops: float = 4.0,
    name: str = "single",
) -> MultiClusterPlatform:
    """A platform with exactly one homogeneous cluster.

    Useful to test the degenerate case where the multi-cluster machinery
    (reference cluster, per-cluster translation, inter-cluster
    communication) must reduce to classical homogeneous scheduling.
    """
    cluster = Cluster(f"{name}-c0", num_processors, speed_gflops, site=name)
    return MultiClusterPlatform(name, [cluster])


def homogeneous_platform(
    num_clusters: int = 3,
    processors_per_cluster: int = 32,
    speed_gflops: float = 4.0,
    shared_switch: bool = True,
    name: str = "homogeneous",
) -> MultiClusterPlatform:
    """A multi-cluster platform in which every cluster is identical."""
    if num_clusters <= 0:
        raise InvalidPlatformError("num_clusters must be positive")
    clusters = [
        Cluster(f"{name}-c{i}", processors_per_cluster, speed_gflops, site=name)
        for i in range(num_clusters)
    ]
    names = [c.name for c in clusters]
    topology = (
        NetworkTopology.shared_switch(names, switch_name=f"{name}-switch")
        if shared_switch
        else NetworkTopology.per_cluster_switch(names)
    )
    return MultiClusterPlatform(name, clusters, topology)


def heterogeneous_platform(
    cluster_sizes: Sequence[int] = (32, 64, 16),
    cluster_speeds: Sequence[float] = (3.0, 4.0, 5.0),
    shared_switch: bool = True,
    name: str = "heterogeneous",
) -> MultiClusterPlatform:
    """A multi-cluster platform with explicit per-cluster sizes and speeds."""
    if len(cluster_sizes) != len(cluster_speeds):
        raise InvalidPlatformError(
            "cluster_sizes and cluster_speeds must have the same length"
        )
    clusters = [
        Cluster(f"{name}-c{i}", int(size), float(speed), site=name)
        for i, (size, speed) in enumerate(zip(cluster_sizes, cluster_speeds))
    ]
    names = [c.name for c in clusters]
    topology = (
        NetworkTopology.shared_switch(names, switch_name=f"{name}-switch")
        if shared_switch
        else NetworkTopology.per_cluster_switch(names)
    )
    return MultiClusterPlatform(name, clusters, topology)


def random_platform(
    rng=None,
    num_clusters: int = 3,
    min_processors: int = 20,
    max_processors: int = 120,
    min_speed_gflops: float = 3.0,
    max_speed_gflops: float = 4.7,
    shared_switch: Optional[bool] = None,
    name: str = "random",
) -> MultiClusterPlatform:
    """Sample a random multi-cluster platform.

    Cluster sizes are drawn uniformly in ``[min_processors,
    max_processors]`` and speeds uniformly in ``[min_speed_gflops,
    max_speed_gflops]``, which covers the range of the Grid'5000 subsets
    of Table 1.  When *shared_switch* is ``None`` the switch-sharing mode
    is itself drawn at random.
    """
    generator = ensure_rng(rng)
    if num_clusters <= 0:
        raise InvalidPlatformError("num_clusters must be positive")
    if min_processors <= 0 or max_processors < min_processors:
        raise InvalidPlatformError(
            "processor bounds must satisfy 0 < min_processors <= max_processors"
        )
    if min_speed_gflops <= 0 or max_speed_gflops < min_speed_gflops:
        raise InvalidPlatformError(
            "speed bounds must satisfy 0 < min_speed <= max_speed"
        )
    sizes = generator.integers(min_processors, max_processors + 1, size=num_clusters)
    speeds = generator.uniform(min_speed_gflops, max_speed_gflops, size=num_clusters)
    if shared_switch is None:
        shared_switch = bool(generator.integers(0, 2))
    clusters = [
        Cluster(f"{name}-c{i}", int(sizes[i]), float(round(speeds[i], 3)), site=name)
        for i in range(num_clusters)
    ]
    names = [c.name for c in clusters]
    topology = (
        NetworkTopology.shared_switch(names, switch_name=f"{name}-switch")
        if shared_switch
        else NetworkTopology.per_cluster_switch(names)
    )
    return MultiClusterPlatform(name, clusters, topology)
