"""Heterogeneous multi-cluster platform model.

The paper evaluates its scheduling heuristics on four multi-cluster
subsets of the Grid'5000 testbed (Table 1 of the paper).  This package
models such platforms:

* :class:`~repro.platform.cluster.Cluster` -- a homogeneous cluster of
  ``p`` identical processors of speed ``s`` GFlop/s,
* :class:`~repro.platform.network.Switch` and
  :class:`~repro.platform.network.NetworkTopology` -- the interconnection
  of clusters through one or several switches (clusters of the Rennes and
  Lille sites share a single switch, those of Nancy and Sophia each have
  their own, which leads to different contention conditions),
* :class:`~repro.platform.multicluster.MultiClusterPlatform` -- the whole
  platform with aggregate quantities (total processors, total processing
  power, heterogeneity),
* :mod:`~repro.platform.grid5000` -- the concrete Grid'5000 subsets of
  Table 1,
* :mod:`~repro.platform.builder` -- helpers to build synthetic platforms
  for tests and ablation studies.
"""

from repro.platform.cluster import Cluster
from repro.platform.network import Switch, NetworkLink, NetworkTopology
from repro.platform.multicluster import MultiClusterPlatform
from repro.platform import grid5000
from repro.platform.builder import (
    homogeneous_platform,
    heterogeneous_platform,
    random_platform,
    single_cluster_platform,
)

__all__ = [
    "Cluster",
    "Switch",
    "NetworkLink",
    "NetworkTopology",
    "MultiClusterPlatform",
    "grid5000",
    "homogeneous_platform",
    "heterogeneous_platform",
    "random_platform",
    "single_cluster_platform",
]
