"""The four Grid'5000 multi-cluster subsets used in the paper (Table 1).

+---------+-----------+-------+----------+
| Site    | Cluster   | #proc | GFlop/s  |
+=========+===========+=======+==========+
| Lille   | Chuque    |  53   | 3.647    |
|         | Chti      |  20   | 4.311    |
|         | Chicon    |  26   | 4.384    |
+---------+-----------+-------+----------+
| Nancy   | Grillon   |  47   | 3.379    |
|         | Grelon    | 120   | 3.185    |
+---------+-----------+-------+----------+
| Rennes  | Parasol   |  64   | 3.573    |
|         | Paravent  |  99   | 3.364    |
|         | Paraquad  |  66   | 4.603    |
+---------+-----------+-------+----------+
| Sophia  | Azur      |  74   | 3.258    |
|         | Helios    |  56   | 3.675    |
|         | Sol       |  50   | 4.389    |
+---------+-----------+-------+----------+

The sites differ in total number of processors (99, 167, 229 and 180) and
heterogeneity (20.2%, 6.1%, 36.8% and 34.7%).  The clusters of Rennes and
Lille are connected to the same switch while in Nancy and Sophia each
cluster has its own switch, which leads to different contention
conditions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.exceptions import InvalidPlatformError
from repro.platform.cluster import Cluster
from repro.platform.multicluster import MultiClusterPlatform
from repro.platform.network import NetworkTopology, Switch

#: Raw Table 1 data: site -> list of (cluster name, #processors, GFlop/s).
TABLE_1: Dict[str, List[tuple]] = {
    "lille": [
        ("chuque", 53, 3.647),
        ("chti", 20, 4.311),
        ("chicon", 26, 4.384),
    ],
    "nancy": [
        ("grillon", 47, 3.379),
        ("grelon", 120, 3.185),
    ],
    "rennes": [
        ("parasol", 64, 3.573),
        ("paravent", 99, 3.364),
        ("paraquad", 66, 4.603),
    ],
    "sophia": [
        ("azur", 74, 3.258),
        ("helios", 56, 3.675),
        ("sol", 50, 4.389),
    ],
}

#: Sites whose clusters share a single switch (paper Section 2).
SHARED_SWITCH_SITES = ("lille", "rennes")
#: Sites where each cluster has its own switch.
PER_CLUSTER_SWITCH_SITES = ("nancy", "sophia")

#: Order in which sites are reported in the paper (99, 167, 229, 180 procs).
SITE_ORDER = ("lille", "nancy", "rennes", "sophia")


def _build(site: str) -> MultiClusterPlatform:
    rows = TABLE_1[site]
    clusters = [
        Cluster(name, procs, gflops, site=site) for (name, procs, gflops) in rows
    ]
    names = [c.name for c in clusters]
    if site in SHARED_SWITCH_SITES:
        topology = NetworkTopology.shared_switch(names, switch_name=f"{site}-switch")
    else:
        topology = NetworkTopology.per_cluster_switch(names)
    return MultiClusterPlatform(site, clusters, topology)


def lille() -> MultiClusterPlatform:
    """Lille subset: 3 clusters, 99 processors, 20.2% heterogeneity."""
    return _build("lille")


def nancy() -> MultiClusterPlatform:
    """Nancy subset: 2 clusters, 167 processors, 6.1% heterogeneity."""
    return _build("nancy")


def rennes() -> MultiClusterPlatform:
    """Rennes subset: 3 clusters, 229 processors, 36.8% heterogeneity."""
    return _build("rennes")


def sophia() -> MultiClusterPlatform:
    """Sophia subset: 3 clusters, 180 processors, 34.7% heterogeneity."""
    return _build("sophia")


def site(name: str) -> MultiClusterPlatform:
    """Return the Grid'5000 subset called *name* (case-insensitive)."""
    key = name.lower()
    if key not in TABLE_1:
        raise InvalidPlatformError(
            f"unknown Grid'5000 site {name!r}; available: {sorted(TABLE_1)}"
        )
    return _build(key)


def composed(
    site_names_seq: Optional[Sequence[str]] = None, name: str = "grid5000"
) -> MultiClusterPlatform:
    """A single platform composed of several Grid'5000 sites.

    All clusters of the selected sites (default: all four, in the
    paper's order) are combined into one multi-cluster platform.  Each
    site keeps its own switch structure -- one shared switch for Lille
    and Rennes, one switch per cluster for Nancy and Sophia -- and the
    switches are connected through the topology's full-mesh backbone,
    so inter-site transfers cross two switches just as inter-cluster
    transfers do within a per-cluster-switch site.

    This is the "whole testbed" scenario the paper's per-site
    experiments stop short of: 11 clusters, 675 processors.

    Examples
    --------
    >>> platform = composed()
    >>> len(platform), platform.total_processors
    (11, 675)
    """
    selected = list(site_names_seq) if site_names_seq else list(SITE_ORDER)
    if not selected:
        raise InvalidPlatformError("composed() needs at least one site")
    clusters: List[Cluster] = []
    switches: List[Switch] = []
    attachment: Dict[str, str] = {}
    for site_name in selected:
        key = site_name.lower()
        if key not in TABLE_1:
            raise InvalidPlatformError(
                f"unknown Grid'5000 site {site_name!r}; available: {sorted(TABLE_1)}"
            )
        site_clusters = [
            Cluster(cname, procs, gflops, site=key)
            for (cname, procs, gflops) in TABLE_1[key]
        ]
        clusters.extend(site_clusters)
        if key in SHARED_SWITCH_SITES:
            switch = Switch(f"{key}-switch")
            switches.append(switch)
            for cluster in site_clusters:
                attachment[cluster.name] = switch.name
        else:
            for cluster in site_clusters:
                switch = Switch(f"{cluster.name}-switch")
                switches.append(switch)
                attachment[cluster.name] = switch.name
    topology = NetworkTopology(switches=switches, attachment=attachment)
    return MultiClusterPlatform(name, clusters, topology)


def all_sites() -> List[MultiClusterPlatform]:
    """The four platforms, in the paper's order (Lille, Nancy, Rennes, Sophia)."""
    return [_build(s) for s in SITE_ORDER]


def site_names() -> List[str]:
    """Names of the four sites, in the paper's order."""
    return list(SITE_ORDER)
