"""Cluster model.

A cluster is a set of identical processors connected to a switch.  This
matches the platform model of Section 2 of the paper: "each platform
consists of c clusters, where cluster C_k contains p_k identical
processors.  A processor in cluster C_k computes at a speed s_k expressed
in flop/s."

Speeds are stored in GFlop/s (as in Table 1 of the paper) and converted to
flop/s on demand through :attr:`Cluster.speed_flops`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import InvalidPlatformError

#: Number of floating point operations per GFlop.
GFLOP = 1e9


@dataclass(frozen=True)
class Cluster:
    """A homogeneous cluster of identical processors.

    Parameters
    ----------
    name:
        Unique cluster name inside its platform (e.g. ``"grelon"``).
    num_processors:
        Number of identical processors ``p_k`` (strictly positive).
    speed_gflops:
        Per-processor speed ``s_k`` in GFlop/s (strictly positive).
    site:
        Optional name of the hosting site (e.g. ``"nancy"``); only used
        for reporting.

    Examples
    --------
    >>> c = Cluster("grelon", 120, 3.185, site="nancy")
    >>> c.power_gflops
    382.2
    >>> c.speed_flops
    3185000000.0
    """

    name: str
    num_processors: int
    speed_gflops: float
    site: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidPlatformError("cluster name must be a non-empty string")
        if not isinstance(self.num_processors, int) or self.num_processors <= 0:
            raise InvalidPlatformError(
                f"cluster {self.name!r}: num_processors must be a positive integer, "
                f"got {self.num_processors!r}"
            )
        if not self.speed_gflops > 0:
            raise InvalidPlatformError(
                f"cluster {self.name!r}: speed_gflops must be positive, "
                f"got {self.speed_gflops!r}"
            )

    @property
    def speed_flops(self) -> float:
        """Per-processor speed in flop/s."""
        return self.speed_gflops * GFLOP

    @property
    def power_gflops(self) -> float:
        """Aggregate processing power of the cluster in GFlop/s.

        This is the quantity the resource constraint ``beta`` is expressed
        against: the constraint bounds the *processing power* a schedule
        may use, not a raw processor count, because 100 processors at
        1 GFlop/s are not equivalent to 100 processors at 4 GFlop/s.
        """
        return self.num_processors * self.speed_gflops

    @property
    def power_flops(self) -> float:
        """Aggregate processing power of the cluster in flop/s."""
        return self.num_processors * self.speed_flops

    def processors(self) -> range:
        """Local processor indices ``0 .. num_processors - 1``."""
        return range(self.num_processors)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        site = f" ({self.site})" if self.site else ""
        return (
            f"Cluster {self.name}{site}: {self.num_processors} procs "
            f"@ {self.speed_gflops} GFlop/s"
        )
