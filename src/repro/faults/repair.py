"""Reactive schedule repair around a deterministic fault timeline.

:func:`repair_schedule` takes a planned
:class:`~repro.mapping.schedule.Schedule`, the graphs that produced it
and a compiled :class:`~repro.faults.timeline.FaultTimeline`, and walks
the timeline's failure events chronologically.  At each event (a
down-window start) it

1. **keeps** every entry that completed before the event and every
   running entry whose processors are untouched by the windows opening
   at that instant;
2. **kills** the running entries caught on a failing processor (their
   partial work is lost and they must re-execute in full);
3. **re-plans** the killed tasks together with the whole not-yet-started
   tail of the schedule onto the surviving capacity, using the existing
   mapping core: a fresh
   :class:`~repro.mapping.eft.PlacementEngine` seeded with the kept
   reservations and with every still-relevant down window blocked
   (:meth:`~repro.mapping.timeline.ClusterTimeline.block`), driven by
   the same ready-list discipline as
   :class:`~repro.mapping.ready_list.ReadyListMapper`.

Re-planning the full tail (not just the overlapping entries) keeps the
precedence invariant trivially: a moved task can only push its
descendants later, and they are all re-placed behind it.  Because every
window with an end beyond the event instant is blocked up front,
repaired placements can never overlap a later window -- only originally
kept running entries can be killed by subsequent events, so the walk
terminates after at most one re-plan per event.

The allocations are **reconstructed** from the schedule itself: each
task's reference processor count is read back from its original entry
and replayed onto a fresh :class:`~repro.allocation.base.Allocation`
against :meth:`ReferenceCluster.of(platform)
<repro.allocation.reference.ReferenceCluster.of>`, so repair needs no
access to the allocator that produced the plan.

Everything is deterministic: the same schedule, graphs and timeline
always produce a bit-identical repaired schedule and identical
degradation metrics.  Degradation windows (bandwidth / slowdown) do not
constrain the repaired plan -- they perturb *execution*, which the
perturbed executor measures; the repair reacts to capacity loss only.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.allocation.base import Allocation
from repro.allocation.reference import ReferenceCluster
from repro.dag.graph import PTG
from repro.exceptions import SimulationError
from repro.faults.timeline import FAULT_EPS, FaultTimeline
from repro.mapping.base import AllocatedPTG
from repro.mapping.eft import PlacementEngine
from repro.mapping.schedule import Schedule, ScheduledTask
from repro.obs import meters, trace
from repro.platform.multicluster import MultiClusterPlatform

TaskKey = Tuple[str, int]


@dataclass(frozen=True)
class KilledTask:
    """One task killed by a fault window.

    ``work_lost`` is the partial work thrown away (processor-seconds
    executed between the task's start and the kill instant);
    ``work_reexecuted`` the full processor-seconds the re-placed run
    costs again.
    """

    ptg_name: str
    task_id: int
    cluster_name: str
    time: float
    work_lost: float
    work_reexecuted: float


@dataclass(frozen=True)
class FaultEvent:
    """One failure event the repair reacted to.

    ``recovery_latency`` is the delay between the event instant and the
    earliest re-placed start of a killed task (0 when the event killed
    nothing and only the tail was re-planned).
    """

    time: float
    killed: Tuple[KilledTask, ...]
    replanned: int
    recovery_latency: float


@dataclass
class RepairOutcome:
    """A repaired schedule plus its degradation metrics."""

    schedule: Schedule
    baseline_makespan: float
    repaired_makespan: float
    events: List[FaultEvent] = field(default_factory=list)

    @property
    def makespan_inflation(self) -> float:
        """Repaired over baseline global makespan (1.0 = no degradation)."""
        if self.baseline_makespan <= 0:
            return 1.0
        return self.repaired_makespan / self.baseline_makespan

    @property
    def killed_tasks(self) -> List[KilledTask]:
        """Every killed task, in event order."""
        return [task for event in self.events for task in event.killed]

    @property
    def work_lost(self) -> float:
        """Processor-seconds of partial executions thrown away."""
        return sum(task.work_lost for task in self.killed_tasks)

    @property
    def work_reexecuted(self) -> float:
        """Processor-seconds re-executed by the re-placed killed tasks."""
        return sum(task.work_reexecuted for task in self.killed_tasks)

    @property
    def recovery_latency(self) -> float:
        """Worst per-event recovery latency (0 without kills)."""
        latencies = [e.recovery_latency for e in self.events if e.killed]
        return max(latencies) if latencies else 0.0

    def metrics(self) -> Dict:
        """The degradation metrics as one plain-JSON dict."""
        return {
            "events": len(self.events),
            "killed_tasks": len(self.killed_tasks),
            "baseline_makespan": self.baseline_makespan,
            "repaired_makespan": self.repaired_makespan,
            "makespan_inflation": self.makespan_inflation,
            "recovery_latency": self.recovery_latency,
            "work_lost": self.work_lost,
            "work_reexecuted": self.work_reexecuted,
        }


def _rebuild_allocation(
    ptg: PTG, reference: ReferenceCluster, base: Schedule
) -> Allocation:
    """Reconstruct a task's-eye allocation from the schedule entries.

    The reference processor counts the mapper translated are recorded on
    every :class:`~repro.mapping.schedule.ScheduledTask`, so the
    allocation step never needs to re-run.
    """
    allocation = Allocation(ptg, reference)
    for task in ptg.tasks():
        allocation.set_processors(
            task.task_id, base.entry(ptg.name, task.task_id).reference_processors
        )
    return allocation


def _replan(
    graphs: Mapping[str, PTG],
    original: Schedule,
    current: Schedule,
    platform: MultiClusterPlatform,
    timeline: FaultTimeline,
    now: float,
    killed_keys: Set[TaskKey],
    releases: Mapping[str, float],
    enable_packing: bool,
) -> Tuple[Schedule, int, float]:
    """One repair pass at instant *now*.

    Returns ``(repaired schedule, number of re-planned tasks, earliest
    re-placed start of a killed task)`` (``inf`` without kills).
    """
    repaired = Schedule(platform.name)
    replanned: Dict[str, Set[int]] = {}
    kept: List[ScheduledTask] = []
    for key in sorted(
        (entry.ptg_name, entry.task_id) for entry in current
    ):
        entry = current.entry(*key)
        if key in killed_keys or entry.start >= now - FAULT_EPS:
            replanned.setdefault(key[0], set()).add(key[1])
        else:
            kept.append(entry)
            repaired.add(entry)

    engine = PlacementEngine(platform, enable_packing=enable_packing)
    # seed the fresh timelines: kept reservations first, then every down
    # window still relevant at this instant (conservatively blocked to
    # its end -- see ClusterTimeline.block)
    for entry in kept:
        engine.timelines.timeline(entry.cluster_name).block(
            entry.processors, entry.finish
        )
    for window in timeline.windows:
        if window.end > now + FAULT_EPS:
            engine.timelines.timeline(window.cluster_name).block(
                window.processors, window.end
            )

    reference = ReferenceCluster.of(platform)
    allocations: Dict[str, Allocation] = {}
    levels: Dict[str, Dict[int, float]] = {}
    for name in sorted(replanned):
        ptg = graphs[name]
        allocation = _rebuild_allocation(ptg, reference, original)
        allocations[name] = allocation
        levels[name] = AllocatedPTG(ptg, allocation).bottom_levels()

    # ready-list discipline over the re-planned set only: a task waits
    # for its re-planned predecessors; kept predecessors are already in
    # the repaired schedule, so data_ready_time sees their finish times.
    remaining: Dict[TaskKey, int] = {}
    ready: List[Tuple[float, str, int, float]] = []
    for name in sorted(replanned):
        ptg = graphs[name]
        tids = replanned[name]
        release = max(now, releases.get(name, 0.0))
        for tid in sorted(tids):
            preds = sum(1 for p in ptg.predecessors(tid) if p in tids)
            remaining[(name, tid)] = preds
            if preds == 0:
                heapq.heappush(ready, (-levels[name][tid], name, tid, release))

    events: List[Tuple[float, str, int]] = []
    placed: Set[TaskKey] = set()
    current_time = now
    earliest_killed_start = float("inf")
    while ready or events:
        while ready:
            _, name, tid, ready_since = heapq.heappop(ready)
            if (name, tid) in placed:
                continue  # pragma: no cover - entries are pushed once
            ptg = graphs[name]
            predecessors = [
                (pred, ptg.edge_data(pred, tid)) for pred in ptg.predecessors(tid)
            ]
            entry = engine.place(
                ptg_name=name,
                task=ptg.task(tid),
                allocation=allocations[name],
                predecessors=predecessors,
                schedule=repaired,
                not_before=max(ready_since, current_time),
            )
            placed.add((name, tid))
            if (name, tid) in killed_keys and entry.start < earliest_killed_start:
                earliest_killed_start = entry.start
            heapq.heappush(events, (entry.finish, name, tid))
        if not events:
            break
        finish, name, tid = heapq.heappop(events)
        current_time = finish
        completions = [(name, tid)]
        while events and abs(events[0][0] - current_time) <= 1e-12:
            _, other_name, other_id = heapq.heappop(events)
            completions.append((other_name, other_id))
        for done_name, done_id in completions:
            ptg = graphs[done_name]
            for succ in ptg.successors(done_id):
                key = (done_name, succ)
                if key not in remaining:
                    continue  # pragma: no cover - successors are re-planned
                remaining[key] -= 1
                if remaining[key] == 0:
                    heapq.heappush(
                        ready,
                        (-levels[done_name][succ], done_name, succ, current_time),
                    )

    total = sum(len(tids) for tids in replanned.values())
    if len(placed) != total:
        raise SimulationError(
            f"repair re-planned {len(placed)} tasks out of {total} at t={now}"
        )
    return repaired, total, earliest_killed_start


def repair_schedule(
    ptgs: Sequence[PTG],
    schedule: Schedule,
    platform: MultiClusterPlatform,
    timeline: FaultTimeline,
    releases: Optional[Mapping[str, float]] = None,
    enable_packing: bool = True,
) -> RepairOutcome:
    """Repair *schedule* around the down windows of *timeline*.

    Walks the timeline's failure events chronologically; at each event
    the running entries caught on a failing processor are killed and the
    affected tail is re-planned onto the surviving capacity (see the
    module docstring for the full policy).  With an empty timeline --
    or windows the schedule never touches -- the original schedule is
    returned unchanged with empty metrics.

    Parameters
    ----------
    ptgs:
        The applications of the schedule (precedence + cost models).
    schedule:
        The planned schedule to repair.
    platform:
        The target platform.
    timeline:
        The compiled fault plan.
    releases:
        Optional per-application submission instants; a re-planned task
        never starts before its application's release.
    enable_packing:
        Whether the repair placements may pack allocations (keep it
        equal to the original pipeline's setting).

    Returns
    -------
    RepairOutcome
        The repaired schedule plus the degradation metrics; with the
        metrics surfaced through :mod:`repro.obs` meters when a
        metrics registry is active.
    """
    graphs: Dict[str, PTG] = {p.name: p for p in ptgs}
    if len(graphs) != len(ptgs):
        raise SimulationError("concurrent PTGs must have unique names")
    releases = dict(releases) if releases else {}
    baseline = schedule.global_makespan()
    outcome = RepairOutcome(
        schedule=schedule, baseline_makespan=baseline, repaired_makespan=baseline
    )
    if timeline.is_empty:
        return outcome

    registry = meters.active()
    current = schedule
    repaired_once = False
    with trace.span("faults.repair", events=str(len(timeline.event_times()))):
        for now in timeline.event_times():
            striking = timeline.windows_starting_at(now)
            killed_entries: List[ScheduledTask] = []
            for entry in current:
                if not (
                    entry.start < now - FAULT_EPS and entry.finish > now + FAULT_EPS
                ):
                    continue
                if any(
                    w.cluster_name == entry.cluster_name and w.hits(entry.processors)
                    for w in striking
                ):
                    killed_entries.append(entry)
            killed_entries.sort(key=lambda e: (e.ptg_name, e.task_id))
            tail_conflicts = not repaired_once and any(
                entry.start >= now - FAULT_EPS
                and timeline.entry_conflicts(entry) is not None
                for entry in current
            )
            if not killed_entries and not tail_conflicts:
                continue

            killed_keys = {(e.ptg_name, e.task_id) for e in killed_entries}
            current, replanned, first_killed_start = _replan(
                graphs,
                schedule,
                current,
                platform,
                timeline,
                now,
                killed_keys,
                releases,
                enable_packing,
            )
            repaired_once = True
            killed = tuple(
                KilledTask(
                    ptg_name=e.ptg_name,
                    task_id=e.task_id,
                    cluster_name=e.cluster_name,
                    time=now,
                    work_lost=(now - e.start) * e.num_processors,
                    work_reexecuted=e.duration * e.num_processors,
                )
                for e in killed_entries
            )
            latency = (
                first_killed_start - now if killed_entries else 0.0
            )
            outcome.events.append(
                FaultEvent(
                    time=now,
                    killed=killed,
                    replanned=replanned,
                    recovery_latency=latency,
                )
            )

    outcome.schedule = current
    outcome.repaired_makespan = current.global_makespan()
    if registry is not None:
        registry.counter("faults.events").inc(len(outcome.events))
        registry.counter("faults.killed_tasks").inc(len(outcome.killed_tasks))
        registry.gauge("faults.makespan_inflation").set(outcome.makespan_inflation)
        registry.gauge("faults.work_lost").set(outcome.work_lost)
        registry.gauge("faults.work_reexecuted").set(outcome.work_reexecuted)
        for event in outcome.events:
            if event.killed:
                registry.histogram("faults.recovery_latency").observe(
                    event.recovery_latency
                )
    return outcome
