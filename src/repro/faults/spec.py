"""Declarative, serialisable description of a platform fault plan.

A :class:`FaultSpec` is the optional ``faults`` section of a
:class:`~repro.scenarios.spec.ScenarioSpec`: it selects a fault plan by
:data:`~repro.scenarios.registry.FAULTS` registry name and fixes the
seed and the plan knobs, so a JSON file fully determines *when and
where the platform fails* -- exactly like the ``arrivals`` section
determines the workload stream.  Scenario content hashes are extended
by the section only when it is present, so every pre-existing store key
stays valid.

:func:`compile_timeline` materialises the plan against a concrete
platform: the same spec and platform always compile to a bit-identical
:class:`~repro.faults.timeline.FaultTimeline`.

Examples
--------
>>> spec = FaultSpec.from_dict({"plan": "rolling", "count": 2,
...                             "start": 30.0, "duration": 60.0})
>>> spec.plan, spec.count
('rolling', 2)
>>> FaultSpec.from_dict(spec.to_dict()) == spec
True
>>> from repro.platform import grid5000
>>> timeline = compile_timeline(spec, grid5000.rennes())
>>> len(timeline.windows)
2
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.exceptions import ConfigurationError
from repro.faults.timeline import FaultTimeline
from repro.scenarios.registry import FAULTS
from repro.utils.rng import ensure_rng

#: Keys a ``faults`` JSON section may carry.
_FAULT_KEYS = (
    "plan",
    "seed",
    "count",
    "start",
    "duration",
    "gap",
    "nodes",
    "bandwidth",
    "slowdown",
)


@dataclass(frozen=True)
class FaultSpec:
    """Declarative fault plan: a plan name, a seed and the plan knobs.

    Parameters
    ----------
    plan:
        Name in :data:`~repro.scenarios.registry.FAULTS`
        (``none`` / ``single-node`` / ``rolling`` /
        ``correlated-cluster`` built in).
    seed:
        Seed of the plan's random draws (which clusters and nodes fail);
        equal seeds compile bit-identical timelines.
    count:
        Number of fault windows the plan injects.
    start:
        Instant (seconds) the first window opens.
    duration:
        Length (seconds) of each window.
    gap:
        Delay (seconds) between consecutive window starts.
    nodes:
        Processors taken down per window (plans covering whole clusters
        ignore it).
    bandwidth:
        Optional transfer-time multiplier (>= 1) in effect during each
        window, platform-wide; ``None`` leaves the network untouched.
    slowdown:
        Optional compute-duration multiplier (>= 1) in effect during
        each window on the failing cluster; ``None`` leaves compute
        untouched.
    """

    plan: str = "none"
    seed: int = 0
    count: int = 1
    start: float = 60.0
    duration: float = 120.0
    gap: float = 240.0
    nodes: int = 1
    bandwidth: Optional[float] = None
    slowdown: Optional[float] = None

    def __post_init__(self) -> None:
        """Validate and canonicalise the field values."""
        object.__setattr__(self, "plan", FAULTS.canonical(self.plan))
        if not isinstance(self.seed, int):
            raise ConfigurationError(f"seed must be an integer, got {self.seed!r}")
        if not isinstance(self.count, int) or self.count < 1:
            raise ConfigurationError(
                f"count must be a positive integer, got {self.count!r}"
            )
        if not isinstance(self.nodes, int) or self.nodes < 1:
            raise ConfigurationError(
                f"nodes must be a positive integer, got {self.nodes!r}"
            )
        start = float(self.start)
        if start < 0:
            raise ConfigurationError(f"start must be non-negative, got {self.start!r}")
        object.__setattr__(self, "start", start)
        duration = float(self.duration)
        if duration <= 0:
            raise ConfigurationError(
                f"duration must be positive, got {self.duration!r}"
            )
        object.__setattr__(self, "duration", duration)
        gap = float(self.gap)
        if gap <= 0:
            raise ConfigurationError(f"gap must be positive, got {self.gap!r}")
        object.__setattr__(self, "gap", gap)
        for name in ("bandwidth", "slowdown"):
            value = getattr(self, name)
            if value is None:
                continue
            value = float(value)
            if value < 1.0:
                raise ConfigurationError(
                    f"{name} must be a factor >= 1 or null, got {value!r}"
                )
            object.__setattr__(self, name, value)

    # ------------------------------------------------------------------ #
    # labels and serialisation
    # ------------------------------------------------------------------ #
    def label(self) -> str:
        """Readable identifier used in logs and result records."""
        return f"{self.plan}-x{self.count}-seed{self.seed}"

    def to_dict(self) -> Dict:
        """Plain-JSON representation (inverse of :meth:`from_dict`)."""
        return {
            "plan": self.plan,
            "seed": self.seed,
            "count": self.count,
            "start": self.start,
            "duration": self.duration,
            "gap": self.gap,
            "nodes": self.nodes,
            "bandwidth": self.bandwidth,
            "slowdown": self.slowdown,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultSpec":
        """Build a spec from a plain dict; unknown keys raise."""
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"a faults spec must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        unknown = sorted(set(payload) - set(_FAULT_KEYS))
        if unknown:
            raise ConfigurationError(
                f"unknown key(s) {unknown} in faults spec; allowed: "
                f"{sorted(_FAULT_KEYS)}"
            )
        return cls(**payload)

    def hash_payload(self) -> Dict:
        """The canonical content this spec contributes to a scenario hash."""
        return self.to_dict()


def compile_timeline(spec: FaultSpec, platform) -> FaultTimeline:
    """Compile a :class:`FaultSpec` against a concrete platform.

    Every factory registered on :data:`~repro.scenarios.registry.FAULTS`
    receives the uniform keyword set (plus the seeded generator) and
    picks what it needs; the compilation is deterministic -- the same
    spec and platform always produce an equal
    :class:`~repro.faults.timeline.FaultTimeline`.
    """
    return FAULTS.create(
        spec.plan,
        platform=platform,
        rng=ensure_rng(spec.seed),
        count=spec.count,
        start=spec.start,
        duration=spec.duration,
        gap=spec.gap,
        nodes=spec.nodes,
        bandwidth=spec.bandwidth,
        slowdown=spec.slowdown,
    )
