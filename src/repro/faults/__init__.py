"""Deterministic platform fault injection and reactive schedule repair.

This package opens the robustness dimension the ROADMAP calls "scenario
diversity": schedules planned against a static platform meet seeded
node-unavailability windows, whole-cluster outages, bandwidth loss and
background-load slowdowns -- and are repaired instead of silently
diverging.

* :mod:`repro.faults.timeline` -- :class:`FaultTimeline` (down windows
  + degradation windows) and the built-in fault plans (``none`` /
  ``single-node`` / ``rolling`` / ``correlated-cluster``), pluggable
  through the :data:`repro.scenarios.FAULTS` registry axis;
* :mod:`repro.faults.spec` -- the declarative, serialisable
  :class:`FaultSpec` wired into
  :class:`repro.scenarios.ScenarioSpec` (optional ``faults`` section,
  JSON round-trip, content hash extended only when set);
* :mod:`repro.faults.repair` -- :func:`repair_schedule`, the reactive
  repair scheduler re-mapping killed and not-yet-started tasks onto the
  surviving capacity via the existing mapping core, with degradation
  metrics (makespan inflation, recovery latency, work lost /
  re-executed).

``spec`` is imported lazily (it sits on top of the scenario layer,
which itself registers the fault plans of this package), so
``import repro.faults`` stays cycle-free -- the same pattern
:mod:`repro.streaming` uses for its spec layer.
"""

from __future__ import annotations

from repro.faults.repair import (
    FaultEvent,
    KilledTask,
    RepairOutcome,
    repair_schedule,
)
from repro.faults.timeline import (
    DegradationWindow,
    DownWindow,
    FaultTimeline,
    correlated_cluster_plan,
    none_plan,
    rolling_plan,
    single_node_plan,
)

#: Names resolved lazily from the spec layer (PEP 562): importing them
#: eagerly would cycle through repro.scenarios, which imports this
#: package's fault plans while building its registries.
_LAZY = {
    "FaultSpec": "repro.faults.spec",
    "compile_timeline": "repro.faults.spec",
}

__all__ = [
    "DownWindow",
    "DegradationWindow",
    "FaultTimeline",
    "none_plan",
    "single_node_plan",
    "rolling_plan",
    "correlated_cluster_plan",
    "FaultEvent",
    "KilledTask",
    "RepairOutcome",
    "repair_schedule",
    "FaultSpec",
    "compile_timeline",
]


def __getattr__(name: str):
    """Resolve the lazily exported spec names (PEP 562)."""
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target), name)
