"""Deterministic fault timelines: when, where and how the platform fails.

A :class:`FaultTimeline` is the compiled form of a
:class:`~repro.faults.spec.FaultSpec`: a finite set of
**node-unavailability windows** (:class:`DownWindow`, covering single
processors up to whole clusters) plus optional **degradation windows**
(:class:`DegradationWindow`, bandwidth loss or background-load
slowdowns).  The timeline is plain data -- frozen dataclasses with a
JSON round-trip -- so the same object drives three consumers:

* the perturbed executor (:mod:`repro.simulate.executor`) kills running
  tasks at window starts and refuses starts on down processors;
* the reactive repair scheduler (:mod:`repro.faults.repair`) re-maps the
  affected tail of a schedule around the windows;
* the validator (:mod:`repro.validate`) checks repaired schedules
  against the capacity that excludes the down windows.

The built-in **fault plans** (``none`` / ``single-node`` / ``rolling`` /
``correlated-cluster``) are factories registered on the
:data:`~repro.scenarios.registry.FAULTS` axis.  They follow the uniform
keyword contract of that axis -- every factory accepts ``platform`` /
``rng`` / ``count`` / ``start`` / ``duration`` / ``gap`` / ``nodes`` /
``bandwidth`` / ``slowdown`` and ignores what it does not need -- so a
:class:`~repro.faults.spec.FaultSpec` can instantiate any of them (or a
third-party plan) the same way.  All randomness comes from the injected
seeded generator: equal seeds compile bit-identical timelines.

Examples
--------
>>> from repro.platform import grid5000
>>> platform = grid5000.rennes()
>>> from repro.utils.rng import ensure_rng
>>> timeline = single_node_plan(platform, rng=ensure_rng(0), count=2,
...                             start=10.0, duration=5.0, gap=20.0)
>>> [round(w.start, 1) for w in timeline.windows]
[10.0, 30.0]
>>> timeline == single_node_plan(platform, rng=ensure_rng(0), count=2,
...                              start=10.0, duration=5.0, gap=20.0)
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.platform.multicluster import MultiClusterPlatform
from repro.utils.rng import RngLike, ensure_rng

#: Tolerance of the timeline's time comparisons (seconds).
FAULT_EPS = 1e-9


@dataclass(frozen=True)
class DownWindow:
    """One unavailability interval of a set of processors.

    The processors of ``cluster_name`` listed in ``processors`` are
    unusable during ``[start, end)``: a task running on any of them at
    ``start`` is killed, and no task may occupy them before ``end``.
    ``whole_cluster`` marks windows that cover every processor of the
    cluster (a correlated outage) -- it is descriptive only, the
    processor list is always authoritative.
    """

    cluster_name: str
    processors: Tuple[int, ...]
    start: float
    end: float
    whole_cluster: bool = False

    def __post_init__(self) -> None:
        """Validate and canonicalise the window."""
        procs = tuple(sorted({int(p) for p in self.processors}))
        if not procs:
            raise ConfigurationError("a down window needs at least one processor")
        if any(p < 0 for p in procs):
            raise ConfigurationError(f"negative processor index in {procs}")
        object.__setattr__(self, "processors", procs)
        if self.start < 0 or self.end <= self.start:
            raise ConfigurationError(
                f"invalid down window [{self.start}, {self.end}] on cluster "
                f"{self.cluster_name!r}"
            )

    def overlaps(self, start: float, finish: float) -> bool:
        """Whether the interval ``[start, finish)`` intersects the window."""
        return start < self.end - FAULT_EPS and self.start < finish - FAULT_EPS

    def hits(self, processors: Tuple[int, ...]) -> bool:
        """Whether any of *processors* is covered by the window."""
        down = set(self.processors)
        return any(p in down for p in processors)

    def to_dict(self) -> Dict:
        """Plain-JSON representation (inverse of :meth:`from_dict`)."""
        return {
            "cluster": self.cluster_name,
            "processors": list(self.processors),
            "start": self.start,
            "end": self.end,
            "whole_cluster": self.whole_cluster,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "DownWindow":
        """Rebuild a window from :meth:`to_dict` output."""
        return cls(
            cluster_name=str(payload["cluster"]),
            processors=tuple(int(p) for p in payload["processors"]),
            start=float(payload["start"]),
            end=float(payload["end"]),
            whole_cluster=bool(payload.get("whole_cluster", False)),
        )


@dataclass(frozen=True)
class DegradationWindow:
    """One performance-degradation interval.

    ``kind`` is ``"bandwidth"`` (inter-cluster transfers slow down
    platform-wide) or ``"slowdown"`` (background load inflates compute
    durations on ``cluster_name``); ``factor >= 1`` is the multiplier
    applied to the affected durations.  The factor of a window is
    sampled at the instant a transfer or a task *starts* -- a
    deterministic rule the executor and the docs share.
    """

    kind: str
    start: float
    end: float
    factor: float
    cluster_name: str = ""

    def __post_init__(self) -> None:
        """Validate the interval and the factor."""
        if self.kind not in ("bandwidth", "slowdown"):
            raise ConfigurationError(
                f"degradation kind must be 'bandwidth' or 'slowdown', "
                f"got {self.kind!r}"
            )
        if self.start < 0 or self.end <= self.start:
            raise ConfigurationError(
                f"invalid degradation window [{self.start}, {self.end}]"
            )
        if float(self.factor) < 1.0:
            raise ConfigurationError(
                f"degradation factor must be >= 1, got {self.factor!r}"
            )
        object.__setattr__(self, "factor", float(self.factor))

    def active(self, time: float) -> bool:
        """Whether the window covers *time* (start inclusive, end exclusive)."""
        return self.start - FAULT_EPS <= time < self.end - FAULT_EPS

    def to_dict(self) -> Dict:
        """Plain-JSON representation (inverse of :meth:`from_dict`)."""
        return {
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "factor": self.factor,
            "cluster": self.cluster_name,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "DegradationWindow":
        """Rebuild a window from :meth:`to_dict` output."""
        return cls(
            kind=str(payload["kind"]),
            start=float(payload["start"]),
            end=float(payload["end"]),
            factor=float(payload["factor"]),
            cluster_name=str(payload.get("cluster", "")),
        )


@dataclass(frozen=True)
class FaultTimeline:
    """The compiled fault plan of one platform: all windows, sorted.

    Windows are canonicalised to a deterministic order -- down windows
    by ``(start, cluster, processors)``, degradations by
    ``(start, kind, cluster)`` -- so two timelines compare equal exactly
    when they describe the same faults.
    """

    platform_name: str
    windows: Tuple[DownWindow, ...] = ()
    degradations: Tuple[DegradationWindow, ...] = ()

    def __post_init__(self) -> None:
        """Sort the window tuples into canonical order."""
        object.__setattr__(
            self,
            "windows",
            tuple(
                sorted(
                    self.windows,
                    key=lambda w: (w.start, w.cluster_name, w.processors),
                )
            ),
        )
        object.__setattr__(
            self,
            "degradations",
            tuple(
                sorted(
                    self.degradations,
                    key=lambda w: (w.start, w.kind, w.cluster_name),
                )
            ),
        )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def is_empty(self) -> bool:
        """True when the timeline injects no fault at all."""
        return not self.windows and not self.degradations

    def event_times(self) -> List[float]:
        """The distinct down-window start instants, ascending.

        These are the instants at which running tasks can be killed --
        the events the repair scheduler reacts to.
        """
        times: List[float] = []
        for window in self.windows:
            if not times or window.start - times[-1] > FAULT_EPS:
                times.append(window.start)
        return times

    def windows_starting_at(self, time: float) -> List[DownWindow]:
        """The down windows whose start coincides with *time*."""
        return [w for w in self.windows if abs(w.start - time) <= FAULT_EPS]

    def down_processors(self, cluster_name: str, time: float) -> FrozenSet[int]:
        """Processors of *cluster_name* that are down at *time*.

        The start of a window is inclusive, its end exclusive: a
        processor is usable again exactly at ``end``.
        """
        down = set()
        for window in self.windows:
            if window.cluster_name != cluster_name:
                continue
            if window.start - FAULT_EPS <= time < window.end - FAULT_EPS:
                down.update(window.processors)
        return frozenset(down)

    def entry_conflicts(self, entry) -> Optional[DownWindow]:
        """First down window a schedule entry overlaps, or ``None``.

        *entry* is any object with ``cluster_name`` / ``processors`` /
        ``start`` / ``finish`` attributes
        (:class:`~repro.mapping.schedule.ScheduledTask` in practice).
        """
        for window in self.windows:
            if (
                window.cluster_name == entry.cluster_name
                and window.overlaps(entry.start, entry.finish)
                and window.hits(entry.processors)
            ):
                return window
        return None

    def bandwidth_factor(self, time: float) -> float:
        """Transfer-time multiplier in effect at *time* (>= 1)."""
        factor = 1.0
        for window in self.degradations:
            if window.kind == "bandwidth" and window.active(time):
                factor *= window.factor
        return factor

    def slowdown_factor(self, cluster_name: str, time: float) -> float:
        """Compute-duration multiplier on *cluster_name* at *time* (>= 1)."""
        factor = 1.0
        for window in self.degradations:
            if window.kind != "slowdown" or not window.active(time):
                continue
            if window.cluster_name in ("", cluster_name):
                factor *= window.factor
        return factor

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        """Plain-JSON representation (inverse of :meth:`from_dict`)."""
        return {
            "platform": self.platform_name,
            "windows": [w.to_dict() for w in self.windows],
            "degradations": [w.to_dict() for w in self.degradations],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultTimeline":
        """Rebuild a timeline from :meth:`to_dict` output."""
        return cls(
            platform_name=str(payload.get("platform", "")),
            windows=tuple(
                DownWindow.from_dict(w) for w in payload.get("windows", ())
            ),
            degradations=tuple(
                DegradationWindow.from_dict(w)
                for w in payload.get("degradations", ())
            ),
        )


# ---------------------------------------------------------------------- #
# built-in fault plans (FAULTS registry factories)
# ---------------------------------------------------------------------- #
def _degradations_of(
    windows: Tuple[DownWindow, ...],
    bandwidth: Optional[float],
    slowdown: Optional[float],
) -> Tuple[DegradationWindow, ...]:
    """Degradation windows mirroring the down windows, when requested.

    When a plan carries a ``bandwidth`` (or ``slowdown``) factor, every
    down window also degrades transfers platform-wide (or compute on its
    own cluster) over the same interval -- the common pattern where a
    failing node drags its neighbourhood down with it.
    """
    rows: List[DegradationWindow] = []
    for window in windows:
        if bandwidth is not None:
            rows.append(
                DegradationWindow(
                    kind="bandwidth",
                    start=window.start,
                    end=window.end,
                    factor=bandwidth,
                )
            )
        if slowdown is not None:
            rows.append(
                DegradationWindow(
                    kind="slowdown",
                    start=window.start,
                    end=window.end,
                    factor=slowdown,
                    cluster_name=window.cluster_name,
                )
            )
    return tuple(rows)


def none_plan(platform: MultiClusterPlatform, rng: RngLike = None, **_kwargs) -> FaultTimeline:
    """The empty plan: a fault-free platform (the default)."""
    return FaultTimeline(platform_name=platform.name)


def single_node_plan(
    platform: MultiClusterPlatform,
    rng: RngLike = None,
    count: int = 1,
    start: float = 60.0,
    duration: float = 120.0,
    gap: float = 240.0,
    nodes: int = 1,
    bandwidth: Optional[float] = None,
    slowdown: Optional[float] = None,
    **_kwargs,
) -> FaultTimeline:
    """*count* independent node crashes, each on one random cluster.

    Window ``i`` opens at ``start + i * gap`` for ``duration`` seconds
    and takes down ``nodes`` processors of a cluster drawn from the
    seeded generator (the draw order is fixed, so equal seeds fail the
    same nodes).
    """
    generator = ensure_rng(rng)
    clusters = list(platform)
    windows: List[DownWindow] = []
    for index in range(int(count)):
        cluster = clusters[int(generator.integers(len(clusters)))]
        width = min(int(nodes), cluster.num_processors)
        procs = sorted(
            int(p)
            for p in generator.choice(
                cluster.num_processors, size=width, replace=False
            )
        )
        opens = float(start) + index * float(gap)
        windows.append(
            DownWindow(
                cluster_name=cluster.name,
                processors=tuple(procs),
                start=opens,
                end=opens + float(duration),
            )
        )
    rows = tuple(windows)
    return FaultTimeline(
        platform_name=platform.name,
        windows=rows,
        degradations=_degradations_of(rows, bandwidth, slowdown),
    )


def rolling_plan(
    platform: MultiClusterPlatform,
    rng: RngLike = None,
    count: int = 3,
    start: float = 60.0,
    duration: float = 120.0,
    gap: float = 240.0,
    nodes: int = 2,
    bandwidth: Optional[float] = None,
    slowdown: Optional[float] = None,
    **_kwargs,
) -> FaultTimeline:
    """A rolling outage sweeping the clusters in declaration order.

    Window ``i`` hits cluster ``i mod n_clusters`` at
    ``start + i * gap``, taking ``nodes`` of its processors (drawn from
    the seeded generator) down for ``duration`` seconds -- the staggered
    maintenance pattern of a real multi-site deployment.
    """
    generator = ensure_rng(rng)
    clusters = list(platform)
    windows: List[DownWindow] = []
    for index in range(int(count)):
        cluster = clusters[index % len(clusters)]
        width = min(int(nodes), cluster.num_processors)
        procs = sorted(
            int(p)
            for p in generator.choice(
                cluster.num_processors, size=width, replace=False
            )
        )
        opens = float(start) + index * float(gap)
        windows.append(
            DownWindow(
                cluster_name=cluster.name,
                processors=tuple(procs),
                start=opens,
                end=opens + float(duration),
            )
        )
    rows = tuple(windows)
    return FaultTimeline(
        platform_name=platform.name,
        windows=rows,
        degradations=_degradations_of(rows, bandwidth, slowdown),
    )


def correlated_cluster_plan(
    platform: MultiClusterPlatform,
    rng: RngLike = None,
    count: int = 1,
    start: float = 60.0,
    duration: float = 120.0,
    gap: float = 240.0,
    nodes: int = 1,
    bandwidth: Optional[float] = None,
    slowdown: Optional[float] = None,
    **_kwargs,
) -> FaultTimeline:
    """*count* whole-cluster outages (a failed switch takes every node).

    Each window takes down **all** processors of a cluster drawn from
    the seeded generator; ``nodes`` is ignored.
    """
    generator = ensure_rng(rng)
    clusters = list(platform)
    windows: List[DownWindow] = []
    for index in range(int(count)):
        cluster = clusters[int(generator.integers(len(clusters)))]
        opens = float(start) + index * float(gap)
        windows.append(
            DownWindow(
                cluster_name=cluster.name,
                processors=tuple(range(cluster.num_processors)),
                start=opens,
                end=opens + float(duration),
                whole_cluster=True,
            )
        )
    rows = tuple(windows)
    return FaultTimeline(
        platform_name=platform.name,
        windows=rows,
        degradations=_degradations_of(rows, bandwidth, slowdown),
    )
