"""Measured outcome of a simulated schedule execution."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import SimulationError
from repro.utils.tables import format_table


@dataclass(frozen=True)
class TaskRecord:
    """Measured execution of one task."""

    ptg_name: str
    task_id: int
    cluster_name: str
    num_processors: int
    start: float
    finish: float
    planned_start: float
    planned_finish: float

    @property
    def duration(self) -> float:
        """Measured execution duration."""
        return self.finish - self.start

    @property
    def start_delay(self) -> float:
        """How much later than planned the task actually started."""
        return self.start - self.planned_start


@dataclass(frozen=True)
class FailureRecord:
    """One task that did not complete under fault injection.

    ``reason`` is a stable tag: ``killed`` (a down window opened while
    the task was running), ``unavailable`` (the task tried to start on
    a down processor) or ``blocked`` (an upstream failure starved it of
    inputs or processors).
    """

    ptg_name: str
    task_id: int
    cluster_name: str
    time: float
    reason: str


@dataclass
class SimulationReport:
    """Per-task and per-application measurements of one simulated execution."""

    platform_name: str
    records: List[TaskRecord] = field(default_factory=list)
    network_bytes: float = 0.0
    network_flows: int = 0
    failures: List[FailureRecord] = field(default_factory=list)

    def add(self, record: TaskRecord) -> None:
        """Append one task record."""
        self.records.append(record)

    def add_failure(self, record: FailureRecord) -> None:
        """Append one failure record."""
        self.failures.append(record)

    @property
    def complete(self) -> bool:
        """True when every task finished (no fault cut the run short)."""
        return not self.failures

    def failed_applications(self) -> List[str]:
        """Applications with at least one failed task, in failure order."""
        seen: Dict[str, None] = {}
        for record in self.failures:
            seen.setdefault(record.ptg_name, None)
        return list(seen)

    # ------------------------------------------------------------------ #
    # aggregation
    # ------------------------------------------------------------------ #
    def application_names(self) -> List[str]:
        """Applications present in the report."""
        seen: Dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.ptg_name, None)
        return list(seen)

    def records_of(self, ptg_name: str) -> List[TaskRecord]:
        """Records of one application, ordered by start time."""
        rows = [r for r in self.records if r.ptg_name == ptg_name]
        if not rows:
            raise SimulationError(f"no application named {ptg_name!r} in the report")
        return sorted(rows, key=lambda r: (r.start, r.finish, r.task_id))

    def makespan(self, ptg_name: str) -> float:
        """Measured completion time of one application (from submission)."""
        return max(r.finish for r in self.records_of(ptg_name))

    def makespans(self) -> Dict[str, float]:
        """Measured completion time of every application."""
        return {name: self.makespan(name) for name in self.application_names()}

    def global_makespan(self) -> float:
        """Measured completion time of the whole batch."""
        if not self.records:
            return 0.0
        return max(r.finish for r in self.records)

    def total_delay(self) -> float:
        """Sum over tasks of (measured start - planned start)."""
        return sum(max(0.0, r.start_delay) for r in self.records)

    def busy_processor_seconds(self) -> float:
        """Total processor-seconds actually consumed."""
        return sum(r.duration * r.num_processors for r in self.records)

    def utilisation(self, total_power_processors: int) -> float:
        """Average fraction of the platform's processors kept busy."""
        horizon = self.global_makespan()
        if horizon <= 0 or total_power_processors <= 0:
            return 0.0
        return self.busy_processor_seconds() / (horizon * total_power_processors)

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #
    def to_table(self) -> str:
        """Human-readable summary (one row per application)."""
        rows = []
        for name in self.application_names():
            records = self.records_of(name)
            rows.append(
                [
                    name,
                    len(records),
                    min(r.start for r in records),
                    self.makespan(name),
                ]
            )
        return format_table(
            ["application", "tasks", "first start", "makespan"],
            rows,
            title=f"Simulated execution on {self.platform_name}",
        )
