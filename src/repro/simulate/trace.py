"""Execution traces: tabular dumps and ASCII Gantt rendering.

The paper's figures only report aggregate metrics, but inspecting *why* a
strategy is unfair usually means looking at when each application's tasks
actually ran.  This module renders a simulated execution (or a planned
schedule) as:

* a flat list of records (exportable to CSV),
* a per-application ASCII Gantt chart (one bar per application showing
  when its tasks occupied processors),
* a per-cluster load profile (how many processors are busy over time).
"""

from __future__ import annotations

import csv
import io
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import SimulationError
from repro.mapping.schedule import Schedule
from repro.platform.multicluster import MultiClusterPlatform
from repro.simulate.report import SimulationReport, TaskRecord


def report_to_rows(report: SimulationReport) -> List[Dict[str, object]]:
    """Flatten a simulation report into plain dictionaries (CSV-friendly)."""
    rows: List[Dict[str, object]] = []
    for record in sorted(report.records, key=lambda r: (r.start, r.ptg_name, r.task_id)):
        rows.append(
            {
                "application": record.ptg_name,
                "task": record.task_id,
                "cluster": record.cluster_name,
                "processors": record.num_processors,
                "start": record.start,
                "finish": record.finish,
                "planned_start": record.planned_start,
                "planned_finish": record.planned_finish,
            }
        )
    return rows


def report_to_csv(report: SimulationReport) -> str:
    """Render a simulation report as CSV text."""
    rows = report_to_rows(report)
    if not rows:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def _bar(start: float, finish: float, horizon: float, width: int) -> str:
    """A fixed-width text bar marking the [start, finish] interval."""
    if horizon <= 0:
        return " " * width
    begin = int(round(width * start / horizon))
    end = max(begin + 1, int(round(width * finish / horizon)))
    begin = min(begin, width - 1)
    end = min(end, width)
    return " " * begin + "#" * (end - begin) + " " * (width - end)


def application_gantt(
    report: SimulationReport, width: int = 72
) -> str:
    """One bar per application: from its first task start to its completion.

    The ``.`` segment marks the span during which the application had at
    least one task running or waiting (submission happens at t = 0, so a
    leading gap is waiting time imposed by the competitors).
    """
    if width < 10:
        raise SimulationError("gantt width must be at least 10 characters")
    horizon = report.global_makespan()
    lines = [f"t = 0 {'-' * (width - 12)} t = {horizon:.1f}s"]
    for name in report.application_names():
        records = report.records_of(name)
        start = min(r.start for r in records)
        finish = max(r.finish for r in records)
        bar = _bar(start, finish, horizon, width)
        lines.append(f"{name[:24]:<24} |{bar}| {finish:8.1f}s")
    return "\n".join(lines)


def cluster_load_profile(
    report: SimulationReport,
    platform: MultiClusterPlatform,
    samples: int = 12,
) -> str:
    """Busy-processor counts per cluster at evenly spaced sample times."""
    if samples < 1:
        raise SimulationError("samples must be >= 1")
    horizon = report.global_makespan()
    times = [horizon * (i + 0.5) / samples for i in range(samples)]
    lines = ["cluster load (busy processors at sample times)"]
    header = "cluster".ljust(14) + "".join(f"{t:8.0f}" for t in times)
    lines.append(header)
    for cluster in platform:
        counts = []
        for t in times:
            busy = sum(
                r.num_processors
                for r in report.records
                if r.cluster_name == cluster.name and r.start <= t < r.finish
            )
            counts.append(busy)
        lines.append(
            cluster.name.ljust(14)
            + "".join(f"{c:8d}" for c in counts)
            + f"   / {cluster.num_processors}"
        )
    return "\n".join(lines)


def schedule_to_rows(schedule: Schedule) -> List[Dict[str, object]]:
    """Flatten a *planned* schedule (before simulation) into dictionaries."""
    rows: List[Dict[str, object]] = []
    for entry in sorted(schedule, key=lambda e: (e.start, e.ptg_name, e.task_id)):
        rows.append(
            {
                "application": entry.ptg_name,
                "task": entry.task_id,
                "cluster": entry.cluster_name,
                "processors": entry.num_processors,
                "start": entry.start,
                "finish": entry.finish,
                "reference_processors": entry.reference_processors,
            }
        )
    return rows
