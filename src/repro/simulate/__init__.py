"""Discrete-event simulation substrate (the SimGrid substitute).

The paper evaluates its heuristics with the SimGrid toolkit.  This package
provides the equivalent substrate for the reproduction:

* :class:`~repro.simulate.engine.SimulationEngine` -- a minimal
  discrete-event engine (time-ordered event heap with cancellable events),
* :class:`~repro.simulate.network.FairShareNetwork` -- a fluid network
  model in which concurrent transfers crossing the same switch or cluster
  uplink share its bandwidth; this reproduces the different contention
  conditions of the shared-switch sites (Rennes, Lille) versus the
  per-cluster-switch sites (Nancy, Sophia),
* :class:`~repro.simulate.executor.ScheduleExecutor` -- replays a
  :class:`~repro.mapping.schedule.Schedule` on the platform model,
  respecting task precedences, data redistribution and processor
  reservations, and measures the resulting per-application makespans,
* :class:`~repro.simulate.report.SimulationReport` -- the measured
  outcome (per-task records, per-application makespans, utilisation).

The executor is what turns a *planned* schedule into *measured*
makespans; all the metrics of the evaluation are computed on measured
values.
"""

from repro.simulate.engine import SimulationEngine, EventHandle
from repro.simulate.network import FairShareNetwork, Flow
from repro.simulate.report import SimulationReport, TaskRecord
from repro.simulate.executor import ScheduleExecutor
from repro.simulate.trace import (
    application_gantt,
    cluster_load_profile,
    report_to_csv,
    report_to_rows,
    schedule_to_rows,
)

__all__ = [
    "SimulationEngine",
    "EventHandle",
    "FairShareNetwork",
    "Flow",
    "SimulationReport",
    "TaskRecord",
    "ScheduleExecutor",
    "application_gantt",
    "cluster_load_profile",
    "report_to_csv",
    "report_to_rows",
    "schedule_to_rows",
]
