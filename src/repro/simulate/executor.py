"""Replay of a planned schedule on the simulated platform.

The executor takes the :class:`~repro.mapping.schedule.Schedule` produced
by a mapper and *executes* it against the platform model:

* a task runs on exactly the processors the schedule assigned to it, for
  the duration given by its cost model on that cluster;
* a task starts only when (a) every predecessor has finished **and** its
  output data has reached the task's cluster through the fluid network
  (inter-cluster redistributions experience switch/uplink contention),
  and (b) every assigned processor has finished all the tasks planned
  before it on that processor;
* per-processor execution order follows the planned start times, i.e. the
  executor respects the mapper's decisions but re-times them under the
  richer network model -- exactly the role SimGrid plays in the paper.

The measured per-application makespans (from submission at t=0 to the
completion of the application's last task) feed the slowdown, unfairness
and relative-makespan metrics.

Fault injection
---------------
When a :class:`~repro.faults.timeline.FaultTimeline` is passed, the
replay is **perturbed**: a task running on a processor when a down
window opens is killed at that instant (a ``killed``
:class:`~repro.simulate.report.FailureRecord`), a task trying to start
on a down processor fails immediately (``unavailable``), and tasks
starved of inputs or processors by an upstream failure are reported as
``blocked`` instead of raising the deadlock error -- the engine emits
failure events rather than silently diverging.  Degradation windows
re-time the run: compute durations are multiplied by the slowdown
factor and transfer volumes by the bandwidth factor in effect when they
start.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dag.graph import PTG
from repro.exceptions import SimulationError
from repro.mapping.schedule import Schedule, ScheduledTask
from repro.platform.multicluster import MultiClusterPlatform
from repro.simulate.engine import EventHandle, SimulationEngine
from repro.simulate.network import FairShareNetwork
from repro.simulate.report import FailureRecord, SimulationReport, TaskRecord

TaskKey = Tuple[str, int]


@dataclass
class _TaskState:
    """Mutable execution state of one scheduled task."""

    entry: ScheduledTask
    duration: float
    remaining_inputs: int
    started: bool = False
    finished: bool = False
    failed: bool = False
    start_time: float = 0.0
    finish_time: float = 0.0
    effective_finish: float = 0.0
    finish_handle: Optional[EventHandle] = None


class ScheduleExecutor:
    """Execute a planned schedule and measure the resulting makespans.

    Parameters
    ----------
    platform:
        The platform model to replay against.
    network_factory:
        Callable building the network model from ``(platform, engine)``.
        Defaults to the contention-aware
        :class:`~repro.simulate.network.FairShareNetwork`; the
        differential tests pass
        :class:`~repro.simulate.network.EstimatorNetwork` to replay a
        plan under the mapper's own transfer assumptions.
    """

    def __init__(self, platform: MultiClusterPlatform, network_factory=None) -> None:
        self.platform = platform
        self.network_factory = network_factory or FairShareNetwork

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def execute(
        self,
        ptgs: Sequence[PTG],
        schedule: Schedule,
        releases: Optional[Dict[str, float]] = None,
        faults=None,
    ) -> SimulationReport:
        """Simulate the execution of *schedule* for the applications *ptgs*.

        *releases* maps application names to submission instants: no
        task of an application starts before its release (the online
        setting).  Applications without an entry release at t=0.

        *faults* is an optional
        :class:`~repro.faults.timeline.FaultTimeline`.  When set the
        replay is perturbed (see the module docstring): tasks caught by
        a down window fail with a
        :class:`~repro.simulate.report.FailureRecord` instead of
        finishing, degradation windows stretch compute and transfer
        times, and a starved run ends with ``blocked`` records rather
        than a :class:`~repro.exceptions.SimulationError`.
        """
        if not ptgs:
            raise SimulationError("at least one PTG is required")
        graphs: Dict[str, PTG] = {p.name: p for p in ptgs}
        if len(graphs) != len(ptgs):
            raise SimulationError("concurrent PTGs must have unique names")

        engine = SimulationEngine()
        network = self.network_factory(self.platform, engine)
        releases = dict(releases) if releases else {}

        # ---------------- state construction ----------------
        states: Dict[TaskKey, _TaskState] = {}
        for ptg in ptgs:
            for task in ptg.tasks():
                if not schedule.has_entry(ptg.name, task.task_id):
                    raise SimulationError(
                        f"schedule misses task {task.task_id} of {ptg.name!r}"
                    )
                entry = schedule.entry(ptg.name, task.task_id)
                cluster = self.platform.cluster(entry.cluster_name)
                duration = task.execution_time(entry.num_processors, cluster.speed_flops)
                states[(ptg.name, task.task_id)] = _TaskState(
                    entry=entry,
                    duration=duration,
                    remaining_inputs=ptg.in_degree(task.task_id),
                )

        # per-processor execution queues, ordered by planned start
        topo_index: Dict[TaskKey, int] = {}
        for ptg in ptgs:
            for i, tid in enumerate(ptg.topological_order()):
                topo_index[(ptg.name, tid)] = i
        proc_queues: Dict[Tuple[str, int], List[TaskKey]] = {}
        for key, state in states.items():
            for proc in state.entry.processors:
                proc_queues.setdefault((state.entry.cluster_name, proc), []).append(key)
        for queue in proc_queues.values():
            queue.sort(
                key=lambda key: (
                    states[key].entry.start,
                    states[key].entry.finish,
                    key[0],
                    topo_index[key],
                )
            )
        queue_position: Dict[TaskKey, Dict[Tuple[str, int], int]] = {
            key: {} for key in states
        }
        for proc, queue in proc_queues.items():
            for position, key in enumerate(queue):
                queue_position[key][proc] = position
        frontier: Dict[Tuple[str, int], int] = {proc: 0 for proc in proc_queues}

        report = SimulationReport(platform_name=self.platform.name)

        # ---------------- event callbacks ----------------
        def fail_task(key: TaskKey, reason: str) -> None:
            state = states[key]
            if state.finished or state.failed:
                return
            state.failed = True
            if state.finish_handle is not None:
                state.finish_handle.cancel()
            report.add_failure(
                FailureRecord(
                    ptg_name=key[0],
                    task_id=key[1],
                    cluster_name=state.entry.cluster_name,
                    time=engine.now,
                    reason=reason,
                )
            )

        def try_start(key: TaskKey) -> None:
            state = states[key]
            if state.started or state.finished or state.failed:
                return
            if state.remaining_inputs > 0:
                return
            release = releases.get(key[0], 0.0)
            if engine.now < release:
                # submitted later: re-check at the release instant (the
                # retry is idempotent, duplicates are harmless)
                engine.schedule(release, try_start, key)
                return
            for proc, position in queue_position[key].items():
                if frontier[proc] != position:
                    return
            if faults is not None:
                down = faults.down_processors(state.entry.cluster_name, engine.now)
                if down and any(p in down for p in state.entry.processors):
                    fail_task(key, "unavailable")
                    return
            state.started = True
            state.start_time = engine.now
            duration = state.duration
            if faults is not None:
                duration *= faults.slowdown_factor(state.entry.cluster_name, engine.now)
            state.effective_finish = engine.now + duration
            state.finish_handle = engine.schedule_after(duration, finish_task, key)

        def input_arrived(key: TaskKey) -> None:
            state = states[key]
            if state.remaining_inputs <= 0:
                raise SimulationError(
                    f"task {key[1]} of {key[0]!r} received more inputs than predecessors"
                )
            state.remaining_inputs -= 1
            try_start(key)

        def finish_task(key: TaskKey) -> None:
            state = states[key]
            if state.failed:
                # stale completion event of a task killed mid-flight
                return
            state.finished = True
            state.finish_time = engine.now
            report.add(
                TaskRecord(
                    ptg_name=key[0],
                    task_id=key[1],
                    cluster_name=state.entry.cluster_name,
                    num_processors=state.entry.num_processors,
                    start=state.start_time,
                    finish=state.finish_time,
                    planned_start=state.entry.start,
                    planned_finish=state.entry.finish,
                )
            )
            # release the processors: advance each frontier and wake the
            # next queued task
            for proc, position in queue_position[key].items():
                if frontier[proc] != position:
                    raise SimulationError(
                        f"processor {proc} finished task {key} out of order"
                    )
                frontier[proc] += 1
                queue = proc_queues[proc]
                if frontier[proc] < len(queue):
                    try_start(queue[frontier[proc]])
            # propagate data to the successors
            ptg = graphs[key[0]]
            for succ in ptg.successors(key[1]):
                succ_key = (key[0], succ)
                data_bytes = ptg.edge_data(key[1], succ)
                if faults is not None:
                    # the factor in effect when the transfer starts
                    # scales its volume -- a deterministic rule
                    data_bytes *= faults.bandwidth_factor(engine.now)
                dst_cluster = states[succ_key].entry.cluster_name
                network.start_transfer(
                    data_bytes,
                    state.entry.cluster_name,
                    dst_cluster,
                    lambda sk=succ_key: input_arrived(sk),
                )

        # ---------------- fault strikes ----------------
        strike_order = sorted(states)

        def strike(window) -> None:
            down = set(window.processors)
            for key in strike_order:
                state = states[key]
                if not state.started or state.finished or state.failed:
                    continue
                if state.entry.cluster_name != window.cluster_name:
                    continue
                if state.effective_finish <= engine.now + 1e-12:
                    # completes exactly at the strike instant: survives
                    continue
                if any(p in down for p in state.entry.processors):
                    fail_task(key, "killed")

        # ---------------- kick-off and run ----------------
        for key, state in states.items():
            if state.remaining_inputs == 0:
                engine.schedule(releases.get(key[0], 0.0), try_start, key)
        if faults is not None:
            for window in faults.windows:
                engine.schedule(window.start, strike, window)
        engine.run()

        unfinished = [key for key, state in states.items() if not state.finished]
        if unfinished:
            if faults is None:
                raise SimulationError(
                    f"simulation deadlocked with {len(unfinished)} unfinished tasks, "
                    f"e.g. {unfinished[:5]}"
                )
            for key in sorted(unfinished):
                if not states[key].failed:
                    fail_task(key, "blocked")
        report.network_bytes = network.total_bytes_transferred
        report.network_flows = network.completed_flows
        return report

    def measure_makespans(
        self, ptgs: Sequence[PTG], schedule: Schedule
    ) -> Dict[str, float]:
        """Convenience wrapper returning only the per-application makespans."""
        return self.execute(ptgs, schedule).makespans()
