"""Minimal discrete-event simulation engine.

A heap of ``(time, sequence, handle)`` entries drives the simulation.
Events can be cancelled (needed by the fluid network model, which
reschedules transfer completions whenever the set of concurrent flows
changes); cancellation is implemented by invalidating the handle, so stale
heap entries are skipped lazily when popped.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.exceptions import SimulationError


@dataclass(eq=False)
class EventHandle:
    """Handle of a scheduled event; keeps enough state to cancel it."""

    time: float
    callback: Callable[..., None]
    args: Tuple[Any, ...]
    cancelled: bool = False

    def cancel(self) -> None:
        """Cancel the event (a no-op if it already fired)."""
        self.cancelled = True


class SimulationEngine:
    """Time-ordered execution of callbacks."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._sequence = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (diagnostics)."""
        return self._processed

    def schedule(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule *callback(*args)* at simulated *time*.

        *time* must not be in the past.  Returns a cancellable handle.
        """
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule an event at {time} before current time {self._now}"
            )
        handle = EventHandle(time=max(time, self._now), callback=callback, args=args)
        heapq.heappush(self._heap, (handle.time, next(self._sequence), handle))
        return handle

    def schedule_after(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule *callback* after *delay* seconds."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule(self._now + delay, callback, *args)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or ``None``."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Execute the next pending event.  Returns False when none is left."""
        while self._heap:
            time, _, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._now = time
            self._processed += 1
            handle.callback(*handle.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> None:
        """Run until the event queue drains (or *until* / *max_events* is hit)."""
        executed = 0
        while True:
            next_time = self.peek_time()
            if next_time is None:
                return
            if until is not None and next_time > until:
                self._now = until
                return
            if not self.step():
                return
            executed += 1
            if executed >= max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events; "
                    "this usually indicates a livelock in the model"
                )
