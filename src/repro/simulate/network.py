"""Fluid fair-sharing network model.

Inter-cluster data redistributions are simulated as *flows*.  A flow
traverses a set of network resources:

* the uplink of the source cluster,
* the switch(es) on the route between the two clusters,
* the uplink of the destination cluster.

Each resource has a capacity (bytes/s).  At any instant the rate of a flow
is the minimum, over the resources it traverses, of the resource capacity
divided by the number of flows currently using that resource (equal
sharing per resource -- a standard fluid approximation of TCP fair
sharing, and the reason why clusters that share a switch, as in the
Rennes and Lille sites, experience more contention than clusters with
private switches).

Rates are recomputed whenever a flow starts or completes; pending
completion events are rescheduled accordingly.  Each flow additionally
pays the path latency once, before data starts flowing.

:class:`EstimatorNetwork` is the contention-free counterpart: every
transfer takes exactly the time the mappers'
:class:`~repro.mapping.comm.CommunicationEstimator` predicted for it.
Replaying a schedule against it must reproduce the mapper's planned
start and finish times -- the differential invariant
``tests/test_differential_simulation.py`` checks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.exceptions import SimulationError
from repro.platform.multicluster import MultiClusterPlatform
from repro.simulate.engine import EventHandle, SimulationEngine


@dataclass
class Flow:
    """One data transfer in progress."""

    flow_id: int
    src_cluster: str
    dst_cluster: str
    total_bytes: float
    remaining_bytes: float
    resources: Tuple[str, ...]
    on_complete: Callable[[], None]
    started_at: float = 0.0
    rate: float = 0.0
    completion_event: Optional[EventHandle] = None


class FairShareNetwork:
    """Fluid network with per-resource equal bandwidth sharing."""

    def __init__(self, platform: MultiClusterPlatform, engine: SimulationEngine) -> None:
        self.platform = platform
        self.engine = engine
        self.topology = platform.topology
        self._flows: Dict[int, Flow] = {}
        self._ids = itertools.count()
        self._last_update = 0.0
        self.completed_flows = 0
        self.total_bytes_transferred = 0.0
        # resource capacities: the aggregate NIC pool of every cluster
        # (each node has its own link to the switch) + every switch
        # backplane
        self._capacity: Dict[str, float] = {}
        for cluster in platform:
            self._capacity[f"uplink:{cluster.name}"] = (
                self.topology.cluster_access_bandwidth(cluster.num_processors)
            )
        for switch in self.topology.switches:
            self._capacity[f"switch:{switch.name}"] = switch.bandwidth

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def start_transfer(
        self,
        data_bytes: float,
        src_cluster: str,
        dst_cluster: str,
        on_complete: Callable[[], None],
    ) -> int:
        """Start a transfer; *on_complete* fires when the last byte arrives.

        Transfers inside a single cluster and empty transfers complete
        after the path latency only (the data does not cross the switches).
        """
        if data_bytes < 0:
            raise SimulationError(f"data_bytes must be non-negative, got {data_bytes}")
        if src_cluster not in self.platform or dst_cluster not in self.platform:
            raise SimulationError(
                f"unknown cluster in transfer {src_cluster!r} -> {dst_cluster!r}"
            )
        latency = self.topology.path_latency(src_cluster, dst_cluster)
        if data_bytes == 0 or src_cluster == dst_cluster:
            self.engine.schedule_after(latency if src_cluster != dst_cluster else 0.0, on_complete)
            return -1

        flow_id = next(self._ids)

        def _begin() -> None:
            self._advance_progress()
            resources = [f"uplink:{src_cluster}", f"uplink:{dst_cluster}"]
            resources += [
                f"switch:{s.name}" for s in self.topology.route(src_cluster, dst_cluster)
            ]
            flow = Flow(
                flow_id=flow_id,
                src_cluster=src_cluster,
                dst_cluster=dst_cluster,
                total_bytes=data_bytes,
                remaining_bytes=data_bytes,
                resources=tuple(dict.fromkeys(resources)),
                on_complete=on_complete,
                started_at=self.engine.now,
            )
            self._flows[flow_id] = flow
            self._recompute_rates()

        # latency is paid before the fluid part of the transfer starts
        self.engine.schedule_after(latency, _begin)
        return flow_id

    @property
    def active_flows(self) -> int:
        """Number of flows currently transferring data."""
        return len(self._flows)

    def flow_rate(self, flow_id: int) -> float:
        """Current rate of a flow (bytes/s); raises if it is not active."""
        try:
            return self._flows[flow_id].rate
        except KeyError:
            raise SimulationError(f"flow {flow_id} is not active") from None

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _advance_progress(self) -> None:
        """Account for the bytes transferred since the last rate change."""
        now = self.engine.now
        elapsed = now - self._last_update
        if elapsed > 0:
            for flow in self._flows.values():
                flow.remaining_bytes = max(
                    0.0, flow.remaining_bytes - flow.rate * elapsed
                )
        self._last_update = now

    def _recompute_rates(self) -> None:
        """Recompute flow rates and reschedule completion events.

        Completion events are only rescheduled for flows whose rate
        actually changed (flows that do not share any resource with the
        arriving/leaving flow keep their event), which keeps the event
        count linear in practice.
        """
        usage: Dict[str, int] = {}
        for flow in self._flows.values():
            for resource in flow.resources:
                usage[resource] = usage.get(resource, 0) + 1
        for flow in self._flows.values():
            new_rate = min(
                self._capacity[resource] / usage[resource] for resource in flow.resources
            )
            if new_rate <= 0:
                raise SimulationError("flow rate dropped to zero")
            unchanged = (
                flow.completion_event is not None
                and not flow.completion_event.cancelled
                and abs(new_rate - flow.rate) <= 1e-9 * new_rate
            )
            if unchanged:
                continue
            flow.rate = new_rate
            if flow.completion_event is not None:
                flow.completion_event.cancel()
            eta = flow.remaining_bytes / flow.rate
            flow.completion_event = self.engine.schedule_after(
                eta, self._complete_flow, flow.flow_id
            )

    def _complete_flow(self, flow_id: int) -> None:
        self._advance_progress()
        flow = self._flows.get(flow_id)
        if flow is None:
            return
        # numerical safety: the flow may have a few bytes left due to
        # floating point accumulation; treat anything below one byte as done.
        if flow.remaining_bytes > 1.0:
            self._recompute_rates()
            return
        del self._flows[flow_id]
        self.completed_flows += 1
        self.total_bytes_transferred += flow.total_bytes
        self._recompute_rates()
        flow.on_complete()


class EstimatorNetwork:
    """Contention-free network reproducing the mapper's transfer estimates.

    Every transfer completes after exactly the time the memoized
    :class:`~repro.mapping.comm.CommunicationEstimator` predicts
    (latency plus volume over the path's bottleneck bandwidth), with no
    interaction between concurrent flows.  It exposes the same interface
    as :class:`FairShareNetwork`, so the schedule executor can swap the
    two: the fair-share model measures what contention does to a plan,
    this model verifies the plan against its own assumptions.
    """

    def __init__(self, platform: MultiClusterPlatform, engine: SimulationEngine) -> None:
        # Imported here: repro.mapping imports repro.platform like this
        # module does, but keeping the top level free of mapping imports
        # preserves the layering for the common fair-share path.
        from repro.mapping.comm import CommunicationEstimator

        self.platform = platform
        self.engine = engine
        self.estimator = CommunicationEstimator(platform)
        self.completed_flows = 0
        self.total_bytes_transferred = 0.0
        self._ids = itertools.count()

    def start_transfer(
        self,
        data_bytes: float,
        src_cluster: str,
        dst_cluster: str,
        on_complete: Callable[[], None],
    ) -> int:
        """Start a transfer completing after the estimator's predicted time."""
        if data_bytes < 0:
            raise SimulationError(f"data_bytes must be non-negative, got {data_bytes}")
        delay = self.estimator.transfer_time(data_bytes, src_cluster, dst_cluster)

        def _complete() -> None:
            self.completed_flows += 1
            self.total_bytes_transferred += data_bytes
            on_complete()

        self.engine.schedule_after(delay, _complete)
        return next(self._ids)

    @property
    def active_flows(self) -> int:
        """Always zero: transfers are instantaneous bookkeeping-wise."""
        return 0
