"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate between the different sub-systems
(platform construction, graph construction, allocation, mapping,
simulation, experiment configuration).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the ``repro`` library."""


class InvalidPlatformError(ReproError):
    """Raised when a platform description is inconsistent.

    Examples: a cluster with zero processors, a negative processor speed,
    a network topology referencing an unknown cluster, or duplicated
    cluster names inside a single platform.
    """


class InvalidGraphError(ReproError):
    """Raised when a parallel task graph violates a structural invariant.

    The PTG model of the paper requires a directed *acyclic* graph with a
    single entry task and a single exit task; edges must connect existing
    tasks and carry a non-negative amount of data.
    """


class AllocationError(ReproError):
    """Raised when an allocation procedure cannot produce a valid allocation.

    Examples: a resource constraint ``beta`` outside ``(0, 1]``, a task
    whose allocation would exceed the reference cluster size, or an
    allocation requested for a task that does not belong to the graph.
    """


class MappingError(ReproError):
    """Raised when the mapping step cannot place a task on the platform.

    Examples: an allocation requiring more processors than the largest
    cluster provides even after packing, or a schedule queried for a task
    that was never mapped.
    """


class SimulationError(ReproError):
    """Raised when the discrete-event simulation reaches an invalid state.

    Examples: executing a schedule that references processors outside the
    platform, detecting a deadlock (no runnable task while tasks remain),
    or negative event timestamps.
    """


class ConfigurationError(ReproError):
    """Raised when an experiment or generator configuration is invalid.

    Examples: a DAG generator width outside ``(0, 1]``, a ``mu`` parameter
    outside ``[0, 1]``, an unknown constraint strategy name, or an
    experiment requesting zero concurrent applications.
    """


class CampaignError(ReproError):
    """Raised by the campaign orchestration subsystem.

    Examples: a result store whose recorded campaign signature does not
    match the campaign being resumed, a store record with an unsupported
    format version, or shards that failed during a parallel run (raised
    after every surviving shard has been executed and persisted).
    """


class ServiceError(ReproError):
    """Raised by the admission daemon (:mod:`repro.service`).

    Carries the HTTP status code the transport layer maps the error to:
    a malformed request is a 400, an unknown tenant a 404, a duplicate
    or out-of-order submission a 409, a daemon that stopped answering a
    client's retries a 503.  Backpressure (429) is *not* an exception --
    the daemon answers it as a regular response with a ``Retry-After``
    hint -- but the synchronous client surfaces it as one when asked
    not to wait.
    """

    def __init__(self, message: str, status: int = 500) -> None:
        super().__init__(message)
        self.status = status
