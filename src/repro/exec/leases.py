"""Durable work-stealing shard leases.

A *lease* marks one shard as in-flight: a small JSON file named after
the shard key, carrying the owner's worker id, the attempt count and a
heartbeat timestamp the owner refreshes while it works.  Leases are the
crash-tolerance mechanism of the distributed executors
(:mod:`repro.exec.cluster`): a worker that vanishes -- killed, OOMed,
disconnected -- simply stops heartbeating, so any *other* worker that
finds the lease older than the staleness timeout can **steal** the
shard and run it itself.  The design follows the
disconnection-tolerant-transfer argument: assume workers disappear,
make claimed work durable and stealable instead of waiting for the
owner to come back.

The board lives in a plain directory (by default ``leases/`` inside the
campaign store), so it needs nothing but a shared filesystem:

* *acquire* is an ``O_CREAT | O_EXCL`` file creation -- atomic on every
  platform, exactly one worker wins a fresh shard;
* *heartbeat* rewrites the lease through an atomic rename, so readers
  never observe a torn record;
* *steal* is guarded by a per-attempt sentinel file (again
  ``O_EXCL``), so even when several workers notice the same expired
  lease at the same moment, exactly one wins each steal attempt.

Because shard keys are content-derived and shard execution is
deterministic, a shard that does get executed twice (its first owner
was merely slow, not dead) writes the *same* result bytes -- last-wins
record semantics keep the store correct.

Examples
--------
>>> import tempfile
>>> board = LeaseBoard(tempfile.mkdtemp())
>>> lease = board.acquire("shard-a", "w0")
>>> lease.owner, lease.attempt
('w0', 1)
>>> board.acquire("shard-a", "w1") is None  # already leased
True
>>> stolen = board.steal("shard-a", "w1", timeout=0.0)  # instantly stale
>>> stolen.owner, stolen.attempt
('w1', 2)
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

#: Directory (inside a campaign store or a spool) holding the leases.
LEASES_DIRNAME = "leases"

#: Version stamp of the lease-file format.
LEASE_FORMAT_VERSION = 1


@dataclass
class Lease:
    """One durable claim on an in-flight shard."""

    #: Content-derived key of the claimed shard.
    key: str
    #: Worker id of the current owner.
    owner: str
    #: How many times the shard has been (re-)leased, 1 on first acquire.
    attempt: int
    #: Wall-clock time (``time.time()``) of the original acquisition.
    acquired: float
    #: Wall-clock time of the owner's most recent heartbeat.
    heartbeat: float

    def to_dict(self) -> dict:
        """Serialise the lease to plain JSON types."""
        return {
            "format_version": LEASE_FORMAT_VERSION,
            "key": self.key,
            "owner": self.owner,
            "attempt": self.attempt,
            "acquired": self.acquired,
            "heartbeat": self.heartbeat,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Lease":
        """Rebuild a lease from :meth:`to_dict`."""
        return cls(
            key=str(payload["key"]),
            owner=str(payload["owner"]),
            attempt=int(payload["attempt"]),
            acquired=float(payload["acquired"]),
            heartbeat=float(payload["heartbeat"]),
        )

    def age(self, now: Optional[float] = None) -> float:
        """Seconds since the last heartbeat (never negative)."""
        now = time.time() if now is None else now
        return max(0.0, now - self.heartbeat)

    def is_stale(self, timeout: float, now: Optional[float] = None) -> bool:
        """Whether the owner has missed heartbeats for longer than *timeout*."""
        return self.age(now) > timeout


class LeaseBoard:
    """Directory of lease files, one per in-flight shard."""

    def __init__(self, root) -> None:
        """Open (and create if needed) the lease directory at *root*."""
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path(self, key: str) -> Path:
        """Lease file of one shard key."""
        return self.root / f"{key}.lease"

    def _sentinel_path(self, key: str, attempt: int) -> Path:
        return self.root / f"{key}.attempt-{attempt}"

    def _write(self, lease: Lease) -> None:
        """Atomically (re)write one lease file."""
        path = self.path(lease.key)
        tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
        tmp.write_text(json.dumps(lease.to_dict(), sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)

    # ------------------------------------------------------------------ #
    # the lease lifecycle
    # ------------------------------------------------------------------ #
    def acquire(self, key: str, owner: str) -> Optional[Lease]:
        """Claim an unleased shard; ``None`` when someone else holds it.

        The claim is an ``O_CREAT | O_EXCL`` creation of the lease file,
        so exactly one of any number of concurrent acquirers wins.
        """
        now = time.time()
        lease = Lease(key=key, owner=owner, attempt=1, acquired=now, heartbeat=now)
        try:
            fd = os.open(self.path(key), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return None
        try:
            os.write(fd, json.dumps(lease.to_dict(), sort_keys=True).encode("utf-8"))
        finally:
            os.close(fd)
        return lease

    def load(self, key: str) -> Optional[Lease]:
        """The current lease of *key*, or ``None`` when absent/torn."""
        try:
            payload = json.loads(self.path(key).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        try:
            return Lease.from_dict(payload)
        except (KeyError, TypeError, ValueError):
            return None

    def beat(self, lease: Lease, now: Optional[float] = None) -> None:
        """Refresh the heartbeat of a held lease (atomic rewrite)."""
        lease.heartbeat = time.time() if now is None else now
        self._write(lease)

    def steal(
        self,
        key: str,
        owner: str,
        timeout: float,
        now: Optional[float] = None,
    ) -> Optional[Lease]:
        """Take over a stale lease; ``None`` when it is fresh or contested.

        A steal only succeeds when the current lease has missed
        heartbeats for longer than *timeout* **and** this caller wins
        the per-attempt sentinel (one winner per attempt number, even
        under concurrent steal races).
        """
        current = self.load(key)
        if current is None or not current.is_stale(timeout, now):
            return None
        next_attempt = current.attempt + 1
        try:
            fd = os.open(
                self._sentinel_path(key, next_attempt),
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
        except FileExistsError:
            return None  # another worker won this steal attempt
        os.close(fd)
        stamp = time.time() if now is None else now
        lease = Lease(
            key=key, owner=owner, attempt=next_attempt,
            acquired=current.acquired, heartbeat=stamp,
        )
        self._write(lease)
        return lease

    def release(self, key: str) -> None:
        """Drop the lease (and its steal sentinels) of a finished shard."""
        for path in self.root.glob(f"{key}.attempt-*"):
            try:
                path.unlink()
            except OSError:
                pass
        try:
            self.path(key).unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    def active(self) -> List[Lease]:
        """Every currently-held lease, in key order."""
        leases = []
        for path in sorted(self.root.glob("*.lease")):
            lease = self.load(path.name[: -len(".lease")])
            if lease is not None:
                leases.append(lease)
        return leases

    def stale(self, timeout: float, now: Optional[float] = None) -> List[Lease]:
        """The active leases whose owner has missed the *timeout*."""
        return [lease for lease in self.active() if lease.is_stale(timeout, now)]
