"""The inline executor: every shard runs in the calling process.

``serial`` is the reference implementation the other executors are
proven against: no processes, no leases, no reordering -- just
:func:`repro.campaigns.pool.execute_shard` in submission order.  It is
also the right tool for debugging (breakpoints work) and for tiny
campaigns where process start-up would dominate.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.campaigns.cache import OwnMakespanCache
from repro.campaigns.pool import ShardOutcome, run_shards
from repro.campaigns.shards import ExperimentShard
from repro.campaigns.store import CampaignStore
from repro.exec.base import DEFAULT_POLICY, ExecutionPolicy


class SerialExecutor:
    """Run every shard inline, in submission order."""

    name = "serial"

    def submit_shards(
        self,
        shards: Sequence[ExperimentShard],
        store: Optional[CampaignStore] = None,
        policy: Optional[ExecutionPolicy] = None,
        cache: Optional[OwnMakespanCache] = None,
    ) -> Iterator[ShardOutcome]:
        """Yield one outcome per shard, executing each in this process.

        Delegates to :func:`repro.campaigns.pool.run_shards` with
        ``jobs=1`` (the inline path), which also merges cache entries
        between shards so later shards reuse earlier reference
        makespans.  *store* is unused: an executor that never loses a
        worker needs no leases.
        """
        policy = DEFAULT_POLICY if policy is None else policy
        return run_shards(
            shards,
            jobs=1,
            cache=cache,
            return_workload=policy.return_workload,
            retry=policy.retry,
        )
