"""The multiprocessing executor: shards fan out across a process pool.

``process-pool`` wraps the original campaign fan-out
(:func:`repro.campaigns.pool.run_shards`) behind the
:class:`~repro.exec.base.Executor` protocol.  It is the default
executor of :func:`repro.campaigns.orchestrator.orchestrate`: same
worker seeding, same cache snapshot/merge discipline, same ordered
``imap`` progress as before the executor axis existed -- so default
campaigns behave (and benchmark) exactly as they always did.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.campaigns.cache import OwnMakespanCache
from repro.campaigns.pool import ShardOutcome, run_shards
from repro.campaigns.shards import ExperimentShard
from repro.campaigns.store import CampaignStore
from repro.exec.base import DEFAULT_POLICY, ExecutionPolicy


class ProcessPoolExecutor:
    """Fan shards out across a :mod:`multiprocessing` pool."""

    name = "process-pool"

    def __init__(self, jobs: Optional[int] = None) -> None:
        """Create the executor with an optional default worker count."""
        self.jobs = jobs

    def submit_shards(
        self,
        shards: Sequence[ExperimentShard],
        store: Optional[CampaignStore] = None,
        policy: Optional[ExecutionPolicy] = None,
        cache: Optional[OwnMakespanCache] = None,
    ) -> Iterator[ShardOutcome]:
        """Yield one outcome per shard from the worker pool, in shard order.

        The policy's ``jobs`` wins over the constructor default;
        ``jobs=1`` degenerates to the inline path (no pool at all).
        *store* is unused: pool workers are children of this process,
        so their failure modes are handled by the retry policy, not by
        leases.
        """
        policy = DEFAULT_POLICY if policy is None else policy
        jobs = policy.jobs if policy.jobs is not None else self.jobs
        return run_shards(
            shards,
            jobs=jobs,
            cache=cache,
            return_workload=policy.return_workload,
            retry=policy.retry,
        )
