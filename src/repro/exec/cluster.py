"""The ``local-cluster`` executor: worker processes over a spool.

This is the distributed-executor stub: N independent **operating-system
processes** (not pool children -- each is a fresh ``python -m
repro.exec.worker``) that share nothing with the orchestrator but a
spool directory and the lease board.  That is the same contract an
ssh- or queue-backed executor would have, so everything that matters
about distribution is exercised for real:

* workers *claim* shards through durable leases (first-come
  ``O_EXCL``), so no dispatcher decides placement -- idle workers pull;
* a worker that dies mid-shard stops heartbeating and its shard is
  **stolen** by any idle survivor once the lease goes stale
  (:class:`~repro.exec.leases.LeaseBoard`), so stragglers and crashes
  rebalance without orchestrator intervention;
* the orchestrating process only *collects*: it tails the outcome
  directory, merges cache entries, folds the lease event log into obs
  meters (``exec.steals``, ``exec.lease_expiries``,
  ``exec.worker.<id>.shards``) and yields outcomes as they land.

If **every** worker dies with shards unfinished, the collector finishes
the remainder inline (and says so via the ``exec.inline_fallback``
counter) -- the campaign never loses shards to worker mortality.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence

from repro.campaigns.cache import OwnMakespanCache
from repro.campaigns.pool import ShardOutcome, execute_shard
from repro.campaigns.shards import ExperimentShard
from repro.campaigns.store import CampaignStore
from repro.exec.base import DEFAULT_POLICY, ExecutionPolicy
from repro.exec.leases import LEASES_DIRNAME
from repro.exec.worker import (
    CACHE_FILENAME,
    CONFIG_FILENAME,
    EVENTS_FILENAME,
    FAULTS_FILENAME,
    OUTCOMES_DIRNAME,
    SHARDS_DIRNAME,
)
from repro.obs import meters
from repro.obs.logs import get_logger

_LOG = get_logger("exec.cluster")

#: Default worker-process count (kept deliberately small: every worker
#: is a full interpreter, and campaign shards are coarse units).
DEFAULT_WORKERS = 2


def _worker_env() -> Dict[str, str]:
    """Child environment with this ``repro`` importable on the path."""
    env = dict(os.environ)
    package_root = str(Path(__file__).resolve().parent.parent.parent)
    current = env.get("PYTHONPATH", "")
    if package_root not in current.split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + current if current else "")
        )
    return env


class LocalClusterExecutor:
    """Spawn N worker processes over a spool directory with shard leases."""

    name = "local-cluster"

    def __init__(
        self,
        workers: Optional[int] = None,
        spool: Optional[str] = None,
        faults: Optional[Dict] = None,
        keep_spool: bool = False,
    ) -> None:
        """Configure the cluster stub.

        Parameters
        ----------
        workers:
            Worker-process count; ``None`` defers to the submission
            policy's ``jobs`` and finally to :data:`DEFAULT_WORKERS`.
        spool:
            Spool directory to use (default: a fresh temporary one,
            removed after the run).
        faults:
            Optional fault-injection spec written to the spool's
            ``faults.json`` (see :mod:`repro.exec.worker`; tests only).
        keep_spool:
            Keep the spool directory after the run (for post-mortems).
        """
        self.workers = workers
        self.spool = spool
        self.faults = faults
        self.keep_spool = keep_spool
        #: The worker processes of the most recent submission (exposed
        #: so supervision tests can kill one mid-run).
        self.processes: List[subprocess.Popen] = []

    # ------------------------------------------------------------------ #
    # spool setup
    # ------------------------------------------------------------------ #
    def _setup_spool(
        self,
        spool: Path,
        shards: Sequence[ExperimentShard],
        leases_dir: Path,
        policy: ExecutionPolicy,
        cache: Optional[OwnMakespanCache],
    ) -> List[str]:
        """Write config, cache snapshot and shard files; return the keys."""
        (spool / SHARDS_DIRNAME).mkdir(parents=True, exist_ok=True)
        (spool / OUTCOMES_DIRNAME).mkdir(parents=True, exist_ok=True)
        leases_dir.mkdir(parents=True, exist_ok=True)
        config = {
            "leases_dir": str(leases_dir),
            "lease_timeout": policy.lease_timeout,
            "heartbeat_interval": policy.effective_heartbeat(),
            "poll_interval": policy.poll_interval,
            "max_lease_attempts": policy.max_lease_attempts,
            "return_workload": policy.return_workload,
            "retry": None if policy.retry is None else {
                "attempts": policy.retry.attempts,
                "base_delay": policy.retry.base_delay,
                "max_delay": policy.retry.max_delay,
                "seed": policy.retry.seed,
            },
        }
        (spool / CONFIG_FILENAME).write_text(
            json.dumps(config, indent=2, sort_keys=True), encoding="utf-8"
        )
        entries = {} if cache is None else dict(cache.entries)
        (spool / CACHE_FILENAME).write_text(
            json.dumps(entries, sort_keys=True), encoding="utf-8"
        )
        if self.faults:
            (spool / FAULTS_FILENAME).write_text(
                json.dumps(self.faults, indent=2, sort_keys=True), encoding="utf-8"
            )
        keys: List[str] = []
        for shard in shards:
            key = shard.key()
            if key in keys:
                continue  # identical shards collapse to one execution
            keys.append(key)
            with open(spool / SHARDS_DIRNAME / f"{key}.pkl", "wb") as handle:
                pickle.dump(shard, handle)
        return keys

    def _spawn(self, spool: Path, count: int) -> List[subprocess.Popen]:
        """Start *count* worker processes over the spool."""
        env = _worker_env()
        processes = []
        for index in range(count):
            processes.append(
                subprocess.Popen(
                    [
                        sys.executable, "-c",
                        "import sys; from repro.exec.worker import main; "
                        "sys.exit(main(sys.argv[1:]))",
                        str(spool), "--worker-id", f"w{index}",
                    ],
                    env=env,
                )
            )
        return processes

    # ------------------------------------------------------------------ #
    # collection
    # ------------------------------------------------------------------ #
    @staticmethod
    def _drain_events(spool: Path, offset: int) -> "tuple[List[Dict], int]":
        """New event-log lines since *offset*, plus the new offset."""
        path = spool / EVENTS_FILENAME
        events: List[Dict] = []
        try:
            with open(path, "r", encoding="utf-8") as handle:
                handle.seek(offset)
                chunk = handle.read()
        except OSError:
            return events, offset
        consumed = 0
        for line in chunk.splitlines(keepends=True):
            if not line.endswith("\n"):
                break  # partial write: re-read next drain
            consumed += len(line.encode("utf-8"))
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:  # pragma: no cover - torn write
                continue
        return events, offset + consumed

    @staticmethod
    def _meter_events(events: List[Dict]) -> None:
        """Fold worker lease events into the active obs meters."""
        registry = meters.active()
        for event in events:
            kind = event.get("event")
            if kind == "steal":
                _LOG.warning(
                    "lease steal: shard %s re-leased by %s (attempt %s)",
                    str(event.get("key", ""))[:12], event.get("worker"),
                    event.get("attempt"),
                )
            if registry is None:
                continue
            if kind == "steal":
                registry.counter("exec.steals").inc()
            elif kind == "lease_expiry":
                registry.counter("exec.lease_expiries").inc()

    def submit_shards(
        self,
        shards: Sequence[ExperimentShard],
        store: Optional[CampaignStore] = None,
        policy: Optional[ExecutionPolicy] = None,
        cache: Optional[OwnMakespanCache] = None,
    ) -> Iterator[ShardOutcome]:
        """Run *shards* across worker processes, yielding outcomes as they land.

        Leases live in the store's ``leases/`` directory when a *store*
        is given (so they survive next to the results they guard), in
        the spool otherwise.  Outcomes arrive in **completion order**;
        the orchestrator reassembles campaign order from shard keys.
        """
        policy = DEFAULT_POLICY if policy is None else policy
        if not shards:
            return
        spool = Path(self.spool) if self.spool else Path(
            tempfile.mkdtemp(prefix="repro-exec-spool-")
        )
        leases_dir = (
            store.root / LEASES_DIRNAME if store is not None
            else spool / LEASES_DIRNAME
        )
        count = self.workers or policy.jobs or DEFAULT_WORKERS
        count = max(1, min(int(count), len(shards)))
        keys = self._setup_spool(spool, shards, leases_dir, policy, cache)
        by_key = {shard.key(): shard for shard in shards}
        registry = meters.active()
        events_offset = 0
        try:
            self.processes = self._spawn(spool, count)
            remaining = set(keys)
            while remaining:
                progressed = False
                for key in [k for k in keys if k in remaining]:
                    path = spool / OUTCOMES_DIRNAME / f"{key}.pkl"
                    if not path.exists():
                        continue
                    try:
                        with open(path, "rb") as handle:
                            envelope = pickle.load(handle)
                    except (OSError, EOFError, pickle.UnpicklingError):
                        continue  # racing the rename; retry next scan
                    remaining.discard(key)
                    progressed = True
                    outcome: ShardOutcome = envelope["outcome"]
                    if cache is not None:
                        cache.merge(outcome.cache_entries)
                        cache.hits += outcome.cache_hits
                        cache.misses += outcome.cache_misses
                    if registry is not None:
                        registry.counter(
                            f"exec.worker.{envelope.get('worker', '?')}.shards"
                        ).inc()
                    yield outcome
                events, events_offset = self._drain_events(spool, events_offset)
                self._meter_events(events)
                if remaining and all(p.poll() is not None for p in self.processes):
                    yield from self._inline_fallback(
                        spool, [k for k in keys if k in remaining], by_key,
                        policy, cache,
                    )
                    remaining.clear()
                elif remaining and not progressed:
                    time.sleep(policy.poll_interval)
            events, events_offset = self._drain_events(spool, events_offset)
            self._meter_events(events)
        finally:
            for process in self.processes:
                if process.poll() is None:
                    process.terminate()
            for process in self.processes:
                try:
                    process.wait(timeout=10)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    process.kill()
                    process.wait()
            if not self.keep_spool:
                shutil.rmtree(spool, ignore_errors=True)

    def _inline_fallback(
        self,
        spool: Path,
        keys: List[str],
        by_key: Dict[str, ExperimentShard],
        policy: ExecutionPolicy,
        cache: Optional[OwnMakespanCache],
    ) -> Iterator[ShardOutcome]:
        """Finish leftover shards inline after every worker died.

        The campaign still completes with zero lost shards even when
        worker mortality outruns stealing (e.g. every worker was
        OOM-killed); the orchestrator's quarantine path still sees any
        genuine shard failures.
        """
        _LOG.warning(
            "all %d local-cluster worker(s) exited with %d shard(s) "
            "unfinished; finishing them inline",
            len(self.processes), len(keys),
        )
        registry = meters.active()
        if registry is not None:
            registry.counter("exec.inline_fallback").inc(len(keys))
        entries = {} if cache is None else dict(cache.entries)
        for key in keys:
            outcome = execute_shard(
                by_key[key],
                entries,
                return_workload=policy.return_workload,
                retry=policy.retry,
            )
            if cache is not None:
                cache.merge(outcome.cache_entries)
                cache.hits += outcome.cache_hits
                cache.misses += outcome.cache_misses
            yield outcome
