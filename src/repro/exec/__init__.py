"""Pluggable distributed executors for campaign shards.

``repro.exec`` is the execution axis of the campaign subsystem: the
:func:`~repro.campaigns.orchestrator.orchestrate` loop hands its pending
shards to an :class:`~repro.exec.base.Executor` and consumes the
resulting :class:`~repro.campaigns.pool.ShardOutcome` stream without
caring how (or where) the shards actually ran.  Three executors ship
built in, name-addressable through the
:data:`~repro.scenarios.registry.EXECUTORS` registry:

* ``serial`` (:mod:`repro.exec.serial`) -- every shard inline, the
  reference implementation;
* ``process-pool`` (:mod:`repro.exec.procpool`) -- the original
  :mod:`multiprocessing` fan-out, still the default;
* ``local-cluster`` (:mod:`repro.exec.cluster`) -- N independent worker
  *processes* over a spool directory with durable work-stealing shard
  leases (:mod:`repro.exec.leases`, :mod:`repro.exec.worker`), the
  local stand-in for an ssh/queue-backed cluster.

All three run every shard through
:func:`repro.campaigns.pool.execute_shard`, so campaign aggregates are
bit-identical whichever executor produced them.
"""

from repro.exec.base import DEFAULT_POLICY, ExecutionPolicy, Executor
from repro.exec.cluster import LocalClusterExecutor
from repro.exec.leases import Lease, LeaseBoard
from repro.exec.procpool import ProcessPoolExecutor
from repro.exec.serial import SerialExecutor
from repro.scenarios.registry import EXECUTORS

__all__ = [
    "DEFAULT_POLICY",
    "EXECUTORS",
    "ExecutionPolicy",
    "Executor",
    "Lease",
    "LeaseBoard",
    "LocalClusterExecutor",
    "ProcessPoolExecutor",
    "SerialExecutor",
]
