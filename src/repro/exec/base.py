"""The executor protocol: how campaigns fan shards out.

An *executor* is the pluggable engine behind
:func:`repro.campaigns.orchestrator.orchestrate`: it takes the pending
:class:`~repro.campaigns.shards.ExperimentShard` list and yields one
:class:`~repro.campaigns.pool.ShardOutcome` per shard, however it likes
-- inline, across a process pool, or across spool-fed worker processes
standing in for an ssh/queue cluster.  Executors are name-addressable
through the :data:`~repro.scenarios.registry.EXECUTORS` registry, the
same plugin axis pattern as allocators, mappers and platforms:

========================  =============================================
``serial``                run every shard inline in the caller
``process-pool``          :mod:`multiprocessing` fan-out (the default)
``local-cluster``         N worker *processes* over a spool directory
                          with durable work-stealing shard leases
========================  =============================================

The orchestrator is executor-agnostic: whatever the executor yields is
persisted, quarantined, metered and aggregated exactly as before, so
the golden guarantee of the campaign subsystem -- bit-identical
aggregates across executors, resumes and serial reruns -- holds by
construction as long as the executor runs every shard through
:func:`repro.campaigns.pool.execute_shard`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

try:  # pragma: no cover - typing fallback exercised only on old Pythons
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls

from repro.campaigns.cache import OwnMakespanCache
from repro.campaigns.pool import RetryPolicy, ShardOutcome
from repro.campaigns.shards import ExperimentShard
from repro.campaigns.store import CampaignStore


@dataclass(frozen=True)
class ExecutionPolicy:
    """Cross-executor knobs of one submission.

    Parameters
    ----------
    jobs:
        Parallelism: worker processes for ``process-pool`` and
        ``local-cluster``; ignored by ``serial``.  ``None`` lets the
        executor pick its own default.
    retry:
        Optional :class:`~repro.campaigns.pool.RetryPolicy`; every
        executor applies it *inside* the worker (capped exponential
        backoff before a shard is reported failed), so quarantine
        semantics are identical across executors.
    return_workload:
        Whether outcomes carry the generated PTGs (the orchestrator
        needs them only when it archives workloads).
    lease_timeout:
        Seconds without a heartbeat after which a lease counts as stale
        and its shard becomes stealable (lease-based executors only).
    heartbeat_interval:
        Seconds between heartbeat refreshes of a held lease; ``None``
        derives a safe default (a fifth of the timeout).
    poll_interval:
        Seconds the spool workers and the collector sleep between scans
        when there is nothing to do.
    max_lease_attempts:
        Ceiling on re-leases of one shard: a shard whose lease expired
        this many times is reported failed (and quarantined by the
        orchestrator) instead of being stolen forever.
    """

    jobs: Optional[int] = None
    retry: Optional[RetryPolicy] = None
    return_workload: bool = True
    lease_timeout: float = 5.0
    heartbeat_interval: Optional[float] = None
    poll_interval: float = 0.05
    max_lease_attempts: int = 5

    def __post_init__(self) -> None:
        """Validate the policy's field values."""
        if self.lease_timeout <= 0:
            raise ValueError(f"lease_timeout must be positive, got {self.lease_timeout}")
        if self.heartbeat_interval is not None and self.heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be positive, got {self.heartbeat_interval}"
            )
        if self.poll_interval <= 0:
            raise ValueError(f"poll_interval must be positive, got {self.poll_interval}")
        if self.max_lease_attempts < 1:
            raise ValueError(
                f"max_lease_attempts must be at least 1, got {self.max_lease_attempts}"
            )

    def effective_heartbeat(self) -> float:
        """The heartbeat period: explicit, or a fifth of the lease timeout."""
        if self.heartbeat_interval is not None:
            return self.heartbeat_interval
        return self.lease_timeout / 5.0


#: The policy used when a caller passes none.
DEFAULT_POLICY = ExecutionPolicy()


@runtime_checkable
class Executor(Protocol):
    """What every executor implements (structural protocol)."""

    #: Registry name of the executor (``serial`` / ``process-pool`` / ...).
    name: str

    def submit_shards(
        self,
        shards: Sequence[ExperimentShard],
        store: Optional[CampaignStore] = None,
        policy: Optional[ExecutionPolicy] = None,
        cache: Optional[OwnMakespanCache] = None,
    ) -> Iterator[ShardOutcome]:
        """Execute *shards*, yielding one outcome per shard.

        Implementations must run every shard through
        :func:`repro.campaigns.pool.execute_shard` (directly or in a
        worker) so results stay bit-identical across executors, must
        capture failures as error-carrying outcomes rather than raising,
        and must merge worker cache entries into *cache* as outcomes
        arrive.  Outcome order is *not* part of the contract -- the
        orchestrator reassembles campaign order from shard keys.
        """
        ...
