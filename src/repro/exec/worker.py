"""Spool-directory worker: one process of the ``local-cluster`` executor.

Runnable as ``python -m repro.exec.worker SPOOL --worker-id W``.  The
worker talks to the orchestrating process through the filesystem only
-- a *spool* directory of shard files plus the lease board -- which is
exactly the coupling a real ssh/queue backend would have, so this stub
exercises the same failure modes (vanishing workers, stale leases,
stolen shards) without needing a cluster:

* ``spool/config.json``  -- lease timeouts, retry policy, knobs,
* ``spool/cache.json``   -- own-makespan cache snapshot (read-only),
* ``spool/shards/``      -- one pickled shard per pending key,
* ``spool/outcomes/``    -- one pickled outcome envelope per finished
  key, written via atomic rename,
* ``spool/events.jsonl`` -- append-only lease event log (steals,
  expiries, completions) the parent folds into obs meters,
* ``spool/faults.json``  -- optional test-only fault injection.

The claim loop: scan the shard files in key order, skip keys that
already have an outcome, try to *acquire* the lease, and -- when the
lease is held by someone else -- try to *steal* it if its heartbeat is
older than the staleness timeout.  A claimed shard executes through
:func:`repro.campaigns.pool.execute_shard` (same retry policy and
failure capture as every other executor) under a background heartbeat
thread; the outcome lands in ``outcomes/`` before the lease is
released, so a crash between the two just makes later claimers skip
the key.  Workers exit when every key has an outcome.

Fault injection (tests only): ``faults.json`` maps a worker id (or
``"*"`` for any worker) to ``{"die_after_lease": KEY}`` or
``{"stall_after_lease": KEY, "stall_seconds": S}``.  Faults fire only
on *first* acquisition (``attempt == 1``), so a stolen re-execution is
never re-killed -- which makes "kill the first owner, let a survivor
steal" deterministic regardless of which worker wins the initial race.
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.campaigns.pool import RetryPolicy, ShardOutcome, execute_shard
from repro.exec.leases import Lease, LeaseBoard

#: Spool sub-directory holding one pickled shard per pending key.
SHARDS_DIRNAME = "shards"
#: Spool sub-directory receiving one pickled outcome envelope per key.
OUTCOMES_DIRNAME = "outcomes"
#: Spool file the workers append lease events to (one JSON per line).
EVENTS_FILENAME = "events.jsonl"
#: Spool file holding the executor configuration.
CONFIG_FILENAME = "config.json"
#: Spool file holding the own-makespan cache snapshot.
CACHE_FILENAME = "cache.json"
#: Spool file holding the optional fault-injection spec (tests only).
FAULTS_FILENAME = "faults.json"

#: Exit code of a fault-injected worker death (distinguishable in waits).
FAULT_EXIT_CODE = 17


def _load_json(path: Path, default):
    """Read one JSON spool file, tolerating absence."""
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return default


def append_event(spool: Path, payload: Dict) -> None:
    """Append one event line to the spool's shared event log.

    The single ``O_APPEND`` write keeps concurrent workers' lines
    intact on POSIX filesystems.
    """
    line = json.dumps(payload, sort_keys=True) + "\n"
    fd = os.open(spool / EVENTS_FILENAME, os.O_CREAT | os.O_WRONLY | os.O_APPEND)
    try:
        os.write(fd, line.encode("utf-8"))
    finally:
        os.close(fd)


def write_outcome(spool: Path, key: str, envelope: Dict) -> None:
    """Persist one outcome envelope under its key, via atomic rename."""
    outcomes = spool / OUTCOMES_DIRNAME
    tmp = outcomes / f"{key}.tmp-{os.getpid()}"
    with open(tmp, "wb") as handle:
        pickle.dump(envelope, handle)
    os.replace(tmp, outcomes / f"{key}.pkl")


class SpoolWorker:
    """The claim-execute-heartbeat loop of one worker process."""

    def __init__(self, spool, worker_id: str) -> None:
        """Bind the worker to a spool directory under a worker id."""
        self.spool = Path(spool)
        self.worker_id = worker_id
        config = _load_json(self.spool / CONFIG_FILENAME, {})
        self.lease_timeout = float(config.get("lease_timeout", 5.0))
        self.heartbeat_interval = float(config.get("heartbeat_interval", 1.0))
        self.poll_interval = float(config.get("poll_interval", 0.05))
        self.max_lease_attempts = int(config.get("max_lease_attempts", 5))
        self.return_workload = bool(config.get("return_workload", True))
        retry = config.get("retry")
        self.retry: Optional[RetryPolicy] = (
            RetryPolicy(**retry) if isinstance(retry, dict) else None
        )
        self.board = LeaseBoard(config.get("leases_dir", self.spool / "leases"))
        self.cache_entries = _load_json(self.spool / CACHE_FILENAME, {})
        faults = _load_json(self.spool / FAULTS_FILENAME, {})
        self.faults = {**faults.get("*", {}), **faults.get(worker_id, {})}

    # ------------------------------------------------------------------ #
    # spool bookkeeping
    # ------------------------------------------------------------------ #
    def shard_keys(self) -> List[str]:
        """Keys of every shard in the spool, sorted for scan determinism."""
        return sorted(p.stem for p in (self.spool / SHARDS_DIRNAME).glob("*.pkl"))

    def outcome_exists(self, key: str) -> bool:
        """Whether some worker already finished *key*."""
        return (self.spool / OUTCOMES_DIRNAME / f"{key}.pkl").exists()

    def _event(self, event: str, key: str, **extra) -> None:
        append_event(
            self.spool,
            {"event": event, "key": key, "worker": self.worker_id, **extra},
        )

    # ------------------------------------------------------------------ #
    # claiming
    # ------------------------------------------------------------------ #
    def claim(self, key: str) -> Optional[Lease]:
        """Try to lease *key*: a fresh acquire, else a steal when stale."""
        lease = self.board.acquire(key, self.worker_id)
        if lease is not None:
            return lease
        current = self.board.load(key)
        if current is None or not current.is_stale(self.lease_timeout):
            return None
        stolen = self.board.steal(key, self.worker_id, self.lease_timeout)
        if stolen is None:
            return None
        self._event(
            "lease_expiry", key,
            previous_owner=current.owner, age=current.age(),
        )
        self._event("steal", key, attempt=stolen.attempt)
        return stolen

    def _inject_fault(self, lease: Lease) -> None:
        """Apply the configured fault after a *first* acquisition."""
        if lease.attempt != 1:
            return
        key = lease.key
        if self.faults.get("die_after_lease") in ("*", key):
            self._event("fault_exit", key)
            os._exit(FAULT_EXIT_CODE)
        if self.faults.get("stall_after_lease") in ("*", key):
            seconds = float(self.faults.get("stall_seconds", 2 * self.lease_timeout))
            self._event("fault_stall", key, seconds=seconds)
            time.sleep(seconds)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def execute(self, lease: Lease) -> None:
        """Run the claimed shard under a heartbeat, persist the outcome."""
        key = lease.key
        if lease.attempt > self.max_lease_attempts:
            self._exhausted(lease)
            return
        self._inject_fault(lease)
        with open(self.spool / SHARDS_DIRNAME / f"{key}.pkl", "rb") as handle:
            shard = pickle.load(handle)
        stop = threading.Event()

        def beat() -> None:
            while not stop.wait(self.heartbeat_interval):
                try:
                    self.board.beat(lease)
                except OSError:  # pragma: no cover - transient fs hiccup
                    pass

        thread = threading.Thread(target=beat, daemon=True)
        thread.start()
        try:
            outcome = execute_shard(
                shard,
                self.cache_entries,
                return_workload=self.return_workload,
                retry=self.retry,
            )
        finally:
            stop.set()
            thread.join(timeout=self.heartbeat_interval + 1.0)
        write_outcome(
            self.spool, key,
            {
                "outcome": outcome,
                "worker": self.worker_id,
                "lease_attempt": lease.attempt,
                "stolen": lease.attempt > 1,
            },
        )
        self.board.release(key)
        self._event("done", key, attempt=lease.attempt, ok=outcome.ok)

    def _exhausted(self, lease: Lease) -> None:
        """Report a shard whose lease expired too many times as failed."""
        key = lease.key
        with open(self.spool / SHARDS_DIRNAME / f"{key}.pkl", "rb") as handle:
            shard = pickle.load(handle)
        outcome = ShardOutcome(
            key=key,
            label=shard.label(),
            index=shard.index,
            error=(
                f"lease expired {lease.attempt - 1} time(s); "
                f"gave up after max_lease_attempts={self.max_lease_attempts}"
            ),
            attempts=lease.attempt,
        )
        write_outcome(
            self.spool, key,
            {
                "outcome": outcome,
                "worker": self.worker_id,
                "lease_attempt": lease.attempt,
                "stolen": True,
            },
        )
        self.board.release(key)
        self._event("exhausted", key, attempt=lease.attempt)

    # ------------------------------------------------------------------ #
    # the loop
    # ------------------------------------------------------------------ #
    def run(self) -> int:
        """Claim and execute shards until every key has an outcome."""
        keys = self.shard_keys()
        while True:
            progressed = False
            pending = False
            for key in keys:
                if self.outcome_exists(key):
                    continue
                pending = True
                lease = self.claim(key)
                if lease is None:
                    continue
                self.execute(lease)
                progressed = True
            if not pending:
                return 0
            if not progressed:
                # everything left is leased by someone else; wait for
                # them to finish -- or for their lease to go stale
                time.sleep(self.poll_interval)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro.exec.worker``."""
    parser = argparse.ArgumentParser(
        prog="repro-exec-worker",
        description="spool-directory worker of the local-cluster executor",
    )
    parser.add_argument("spool", help="spool directory set up by the executor")
    parser.add_argument("--worker-id", required=True, help="unique worker id")
    args = parser.parse_args(argv)
    return SpoolWorker(args.spool, args.worker_id).run()


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
