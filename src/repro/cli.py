"""Command-line interface.

Installed as ``repro-ptg`` (see ``pyproject.toml``); also runnable as
``python -m repro``.  Sub-commands:

* ``run``      -- run declarative scenario spec(s) from a JSON file
  and/or ``--set`` overrides (the scenario API front door; specs with an
  ``arrivals`` section route to the streaming engine automatically),
* ``stream``   -- run an online arrival stream (Poisson / bursty MMPP /
  trace-driven) through the event-driven streaming scheduler and print
  the windowed metrics,
* ``validate`` -- run the schedule-invariant validator over the records
  of a campaign/scenario store directory,
* ``list``     -- list the entries of a scenario plugin registry
  (allocators, mappers, strategies, platforms, families, arrivals),
* ``table1``   -- print the platform Table 1 and the per-site summary,
* ``fig2``     -- run the mu sweep (Figure 2) at a configurable scale,
* ``fig3`` / ``fig4`` / ``fig5`` -- run a comparison figure at a
  configurable scale,
* ``campaign`` -- run a full campaign through the orchestration
  subsystem (parallel workers, persistent result store, resume),
* ``schedule`` -- schedule one generated workload with one strategy and
  print the per-application makespans and fairness metrics,
* ``generate`` -- generate a PTG and print it as JSON or DOT,
* ``trace``    -- run scenario spec(s) in-process under telemetry and
  write a Chrome/Perfetto trace (open it in https://ui.perfetto.dev),
* ``metrics``  -- fold the telemetry summaries stored in a campaign /
  scenario store back together and print the per-phase span table and
  the histogram quantiles (p50/p99 admission latency etc),
* ``serve``    -- run the long-lived admission daemon of a scenario
  (one streaming session per tenant behind JSON-over-HTTP endpoints,
  with checkpoint/restore through a campaign store),
* ``client``   -- talk to a running daemon (submit a streaming spec's
  arrivals, query status/schedule/metrics, checkpoint, shutdown).

All stochastic commands take ``--seed`` so results are reproducible.
The campaign-style commands (``fig3``/``fig4``/``fig5``/``campaign``)
accept ``--jobs`` (worker processes), ``--store`` (result directory) and
``--resume`` (continue an interrupted store); parallel and resumed runs
reproduce the serial aggregates exactly.

Progress output goes through the stdlib :mod:`logging` tree under the
``repro`` root logger: the global ``-q`` flag silences it (WARNING), the
global ``-v`` flag adds the library's debug lines (DEBUG).

The global ``--profile`` flag wraps any subcommand in :mod:`cProfile`
(through :mod:`repro.obs.profile`) and prints the 25 most expensive
entries by cumulative time to stderr, so new hot spots can be located
without editing code
(``repro-ptg --profile fig3 --workloads 1 --max-tasks 20``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Sequence

from repro._version import __version__
from repro.constraints.registry import STRATEGY_NAMES, strategy
from repro.exceptions import ConfigurationError, ReproError
from repro.dag.fft import generate_fft_ptg
from repro.dag.generator import RandomPTGConfig, generate_random_ptg
from repro.dag.io import ptg_to_dot, ptg_to_json
from repro.dag.strassen import generate_strassen_ptg
from repro.experiments.figures import run_figure
from repro.experiments.mu_sweep import run_mu_sweep
from repro.experiments.reporting import render_figure, render_mu_sweep
from repro.experiments.runner import run_experiment
from repro.experiments.tables import table1_text
from repro.experiments.workload import APPLICATION_FAMILIES, WorkloadSpec, make_workload
from repro.obs.logs import configure_cli_logging, progress_logger, remove_cli_logging
from repro.platform import grid5000
from repro.utils.tables import format_table


def _add_scale_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workloads", type=int, default=3,
        help="random workloads per PTG count (25 in the paper)",
    )
    parser.add_argument(
        "--ptg-counts", type=int, nargs="+", default=[2, 4, 6, 8, 10],
        help="numbers of concurrent PTGs",
    )
    parser.add_argument(
        "--platforms", nargs="+", default=None,
        choices=grid5000.site_names(),
        help="Grid'5000 sites to use (default: all four)",
    )
    parser.add_argument(
        "--max-tasks", type=int, default=None,
        help="cap random PTG sizes (smaller graphs run faster)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base random seed")


def _add_parallel_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (0 or omitted = one per CPU when orchestrating)",
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="persist per-experiment results (JSONL + workload archive) to DIR",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="continue an interrupted --store without re-running finished experiments",
    )


def _resolve_jobs(jobs: Optional[int]) -> Optional[int]:
    """Map the ``--jobs`` flag to a worker count (0 means one per CPU)."""
    if jobs is None or jobs > 0:
        return jobs
    from repro.campaigns.pool import default_jobs

    return default_jobs()


def _resolve_platforms(names: Optional[Sequence[str]]):
    if not names:
        return None
    return [grid5000.site(name) for name in names]


def _cmd_table1(args: argparse.Namespace) -> int:
    print(table1_text())
    return 0


def _cmd_fig2(args: argparse.Namespace) -> int:
    result = run_mu_sweep(
        characteristic=args.characteristic,
        family=args.family,
        ptg_counts=args.ptg_counts,
        workloads_per_point=args.workloads,
        platforms=_resolve_platforms(args.platforms),
        base_seed=args.seed,
        max_tasks=args.max_tasks,
    )
    print(render_mu_sweep(result))
    print(f"\nrecommended mu (knee of the trade-off): {result.recommended_mu():.2f}")
    return 0


def _cmd_figure(figure: int, args: argparse.Namespace) -> int:
    result = run_figure(
        figure,
        ptg_counts=args.ptg_counts,
        workloads_per_point=args.workloads,
        platforms=_resolve_platforms(args.platforms),
        base_seed=args.seed,
        max_tasks=args.max_tasks,
        jobs=_resolve_jobs(args.jobs),
        store=args.store,
        resume=args.resume,
    )
    print(render_figure(result))
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaigns.orchestrator import orchestrate
    from repro.campaigns.pool import RetryPolicy
    from repro.experiments.reporting import render_campaign_summary
    from repro.experiments.runner import CampaignConfig

    if args.resume and not args.store:
        raise ConfigurationError("--resume requires --store")
    if getattr(args, "compact", False) and not args.store:
        raise ConfigurationError("--compact requires --store")
    retry = None
    if getattr(args, "retries", 1) > 1:
        retry = RetryPolicy(attempts=args.retries)
    config = CampaignConfig(
        family=args.family,
        ptg_counts=tuple(args.ptg_counts),
        workloads_per_point=args.workloads,
        platforms=tuple(p for p in _resolve_platforms(args.platforms) or ()) or None,
        base_seed=args.seed,
        max_tasks=args.max_tasks,
    )
    progress = progress_logger()  # '-q' raises the log level above it
    run = orchestrate(
        config,
        store=args.store,
        jobs=_resolve_jobs(args.jobs),
        progress=progress,
        resume=args.resume,
        retry=retry,
        executor=getattr(args, "executor", None),
    )
    print(render_campaign_summary(run.result))
    stats = run.stats
    print(
        f"\nshards: {stats.total_shards} total, {stats.skipped_shards} resumed, "
        f"{stats.executed_shards} executed; own-makespan cache hit rate "
        f"{100.0 * stats.cache_hit_rate:.1f}%"
    )
    if getattr(args, "compact", False):
        from repro.campaigns.colstore import ColumnStore

        report = ColumnStore(args.store).compact()
        print(
            f"compacted {report['rows_compacted']} record(s) into "
            f"{report['segments_written']} segment(s)"
        )
    if stats.quarantined:
        print(
            f"\nquarantined {len(stats.quarantined)} shard(s) "
            f"(tracebacks in the store's 'quarantine' channel; "
            f"a later --resume re-runs them):"
        )
        for label in stats.quarantined:
            error = stats.failures.get(label, "").strip()
            cause = error.splitlines()[-1] if error else "unknown error"
            print(f"  {label}: {cause}")
        return 1
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    spec = WorkloadSpec(
        family=args.family, n_ptgs=args.n_ptgs, seed=args.seed, max_tasks=args.max_tasks
    )
    ptgs = make_workload(spec)
    platform = grid5000.site(args.platform)
    strategies = [strategy(args.strategy, family=args.family)]
    experiment = run_experiment(ptgs, platform, strategies, workload_label=spec.label())
    outcome = experiment.outcomes[strategies[0].name]
    rows = []
    for ptg in ptgs:
        rows.append(
            [
                ptg.name,
                ptg.n_tasks,
                outcome.betas[ptg.name],
                experiment.own_makespans[ptg.name],
                outcome.makespans[ptg.name],
                outcome.slowdowns[ptg.name],
            ]
        )
    print(
        format_table(
            ["application", "tasks", "beta", "M_own", "M_multi", "slowdown"],
            rows,
            title=(
                f"{spec.label()} on {platform.name} with {strategies[0].name} "
                f"(unfairness {outcome.unfairness:.3f}, batch makespan "
                f"{outcome.batch_makespan:.1f}s)"
            ),
        )
    )
    return 0


def _parse_set_override(text: str):
    """Parse one ``--set key=value`` into a (dotted key, parsed value) pair."""
    key, sep, raw = text.partition("=")
    key = key.strip()
    if not sep or not key:
        raise ConfigurationError(
            f"--set expects KEY=VALUE (e.g. pipeline.allocator=hcpa), got {text!r}"
        )
    try:
        value = json.loads(raw)
    except json.JSONDecodeError:
        value = raw  # bare words (hcpa, WPS-width, S,ES) stay strings
    return key, value


def _apply_set_override(payload: Dict, dotted_key: str, value) -> None:
    """Apply one override to a spec dict, creating nested sections as needed."""
    parts = dotted_key.split(".")
    target = payload
    for part in parts[:-1]:
        node = target.setdefault(part, {})
        if not isinstance(node, dict):
            raise ConfigurationError(
                f"--set {dotted_key}: {part!r} is not a section"
            )
        target = node
    target[parts[-1]] = value


def _load_spec_documents(
    spec_path: Optional[str], overrides: Sequence[str]
) -> List[Dict]:
    """Load scenario document(s) from a JSON file and apply ``--set`` overrides."""
    if spec_path is not None:
        try:
            with open(spec_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise ConfigurationError(f"cannot read scenario file: {exc}")
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"{spec_path} is not valid JSON: {exc}")
    else:
        payload = {}  # the default scenario, customised via --set
    documents = payload if isinstance(payload, list) else [payload]
    for override in overrides or ():
        key, value = _parse_set_override(override)
        for document in documents:
            _apply_set_override(document, key, value)
    return documents


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.scenarios.run import run_scenarios
    from repro.scenarios.spec import load_specs

    if args.resume and not args.store:
        raise ConfigurationError("--resume requires --store")
    documents = _load_spec_documents(args.spec, args.set)
    specs = load_specs(documents)

    progress = progress_logger()  # '-q' raises the log level above it

    # streaming specs (an arrivals section) run on the streaming engine,
    # batch specs on the classic harness; a file may mix both.
    streaming = [s for s in specs if s.is_streaming]
    batch = [s for s in specs if not s.is_streaming]
    stream_results = []
    if streaming:
        from repro.streaming.run import run_stream_scenarios

        stream_results = run_stream_scenarios(
            streaming,
            jobs=_resolve_jobs(args.jobs),
            store=args.store,
            resume=args.resume,
            progress=progress,
        )
    results = []
    if batch:
        results = run_scenarios(
            batch,
            jobs=_resolve_jobs(args.jobs),
            store=args.store,
            resume=args.resume,
            progress=progress,
        )

    if args.format == "json":
        documents = [_scenario_result_dict(r) for r in results]
        documents += [_stream_result_dict(r) for r in stream_results]
        print(json.dumps(documents, indent=2))
        return 0
    for stream_result in stream_results:
        _print_stream_result(stream_result)
    for result in results:
        rows = []
        for name, outcome in result.experiment.outcomes.items():
            rows.append(
                [
                    name,
                    f"{outcome.unfairness:.3f}",
                    f"{outcome.batch_makespan:.1f}",
                    f"{outcome.mean_application_makespan:.1f}",
                ]
            )
        spec = result.spec
        print(
            format_table(
                ["strategy", "unfairness", "batch makespan", "mean app makespan"],
                rows,
                title=(
                    f"{spec.label()} | {spec.pipeline.allocator} + "
                    f"{spec.pipeline.mapper}"
                    f"{'' if spec.pipeline.packing else ' (no packing)'}"
                ),
            )
        )
        print()
    return 0


def _scenario_result_dict(result) -> Dict:
    """JSON document of one scenario result (``repro-ptg run --format json``)."""
    return {
        "spec": result.spec.to_dict(),
        "key": result.key,
        "outcomes": {
            name: {
                "unfairness": outcome.unfairness,
                "batch_makespan": outcome.batch_makespan,
                "mean_application_makespan": outcome.mean_application_makespan,
            }
            for name, outcome in result.experiment.outcomes.items()
        },
    }


def _stream_result_dict(result) -> Dict:
    """JSON document of one streaming result (without the schedule rows)."""
    outcomes = {}
    for name, outcome in result.outcomes.items():
        payload = outcome.to_dict()
        payload.pop("schedule_rows", None)
        outcomes[name] = payload
    return {"spec": result.spec.to_dict(), "key": result.key, "outcomes": outcomes}


def _print_stream_result(result) -> None:
    """Render the summary tables of one streaming scenario result."""
    spec = result.spec
    for name, outcome in result.outcomes.items():
        rows = [
            ["applications", outcome.n_arrivals],
            ["horizon (s)", f"{outcome.horizon:.1f}"],
            ["mean response (s)", f"{outcome.mean_response:.1f}"],
            ["max response (s)", f"{outcome.max_response:.1f}"],
            ["mean stall (s)", f"{outcome.mean_waiting:.1f}"],
            ["utilisation", f"{outcome.utilisation:.3f}"],
            ["packed tasks", outcome.packed_tasks],
            [
                "validator",
                "skipped" if outcome.valid is None
                else ("OK" if outcome.valid else "VIOLATIONS"),
            ],
        ]
        for tenant in sorted(outcome.tenant_stall):
            label = tenant or "(no tenant)"
            rows.append(
                [f"stall of {label} (s)", f"{outcome.tenant_stall[tenant]:.1f}"]
            )
        if outcome.faults is not None:
            metrics = outcome.faults.get("metrics", {})
            rows.append(["fault plan", outcome.faults.get("plan", "?")])
            rows.append(["fault events", int(metrics.get("events", 0))])
            rows.append(["killed tasks", int(metrics.get("killed_tasks", 0))])
            rows.append(
                ["failures (perturbed replay)", len(outcome.faults.get("failures", []))]
            )
            rows.append(
                ["makespan inflation", f"{metrics.get('makespan_inflation', 1.0):.3f}"]
            )
            rows.append(
                ["recovery latency (s)", f"{metrics.get('recovery_latency', 0.0):.1f}"]
            )
            rows.append(["work lost (proc-s)", f"{metrics.get('work_lost', 0.0):.1f}"])
            rows.append(
                ["work re-executed (proc-s)",
                 f"{metrics.get('work_reexecuted', 0.0):.1f}"]
            )
            repaired_valid = outcome.faults.get("valid")
            rows.append(
                [
                    "repair validator",
                    "skipped" if repaired_valid is None
                    else ("OK" if repaired_valid else "VIOLATIONS"),
                ]
            )
        print(
            format_table(
                ["metric", "value"],
                rows,
                title=f"{spec.label()} | {name} | {spec.pipeline.allocator}"
                      f"{'' if spec.pipeline.packing else ' (no packing)'}",
            )
        )
        windowed = outcome.windowed
        window_rows = [
            [
                f"{windowed.edges[i]:.0f}-{windowed.edges[i + 1]:.0f}",
                windowed.arrivals[i],
                windowed.completions[i],
                f"{windowed.utilisation[i]:.3f}",
                f"{windowed.fairness[i]:.3f}",
                f"{windowed.mean_response[i]:.1f}",
            ]
            for i in range(windowed.n_windows)
        ]
        print(
            format_table(
                ["window (s)", "arrivals", "done", "util", "unfairness", "mean resp"],
                window_rows,
                title=f"windowed metrics (window = {windowed.window:.1f}s)",
            )
        )
        print()


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro.scenarios.spec import PipelineSpec, ScenarioSpec
    from repro.streaming.arrivals import load_trace
    from repro.streaming.run import run_stream_scenarios
    from repro.streaming.spec import ArrivalSpec

    if args.resume and not args.store:
        raise ConfigurationError("--resume requires --store")
    arrivals = ArrivalSpec(
        process=args.process,
        rate=args.rate,
        n_arrivals=args.arrivals,
        seed=args.seed,
        family=args.family,
        max_tasks=args.max_tasks,
        tenants=args.tenants,
        burst=args.burst,
        dwell=args.dwell,
        trace=tuple(load_trace(args.trace)) if args.trace else None,
    )
    spec = ScenarioSpec(
        platform=args.platform,
        pipeline=PipelineSpec(
            allocator=args.allocator, packing=not args.no_packing, mu=args.mu
        ),
        strategies=[args.strategy],
        arrivals=arrivals,
    )
    progress = progress_logger()  # '-q' raises the log level above it
    results = run_stream_scenarios(
        [spec],
        jobs=1,
        store=args.store,
        resume=args.resume,
        progress=progress,
    )
    if args.format == "json":
        print(json.dumps([_stream_result_dict(r) for r in results], indent=2))
    else:
        for result in results:
            _print_stream_result(result)
    if args.check:
        bad = [
            name
            for result in results
            for name, outcome in result.outcomes.items()
            if outcome.valid is False
        ]
        if bad:
            print(f"error: validator found violations in {bad}", file=sys.stderr)
            return 1
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.campaigns.store import CampaignStore
    from repro.scenarios.registry import PLATFORMS
    from repro.scenarios.spec import ScenarioSpec
    from repro.streaming.run import STREAM_CHANNEL, StreamScenarioResult
    from repro.streaming.spec import generate_arrivals
    from repro.validate import validate_experiment_metrics, validate_schedule

    store = CampaignStore(args.store)
    total = 0
    failed = 0
    lines: List[str] = []

    for key, payload in store.iter_payloads(STREAM_CHANNEL):
        record = StreamScenarioResult.from_record(payload)
        spec: ScenarioSpec = record.spec
        # regenerating the arrivals (potentially thousands of PTGs) is
        # only worth it when some outcome actually archived its schedule
        platform = arrivals = ptgs = releases = None
        for name, outcome in record.outcomes.items():
            total += 1
            if not outcome.schedule_rows:
                lines.append(
                    f"SKIP   stream {key[:12]} {name}: stored without schedule"
                )
                continue
            if arrivals is None:
                platform = PLATFORMS.create(spec.platform)
                arrivals = generate_arrivals(spec.arrivals)
                ptgs = [a.ptg for a in arrivals]
                releases = {a.ptg.name: a.time for a in arrivals}
            report = validate_schedule(
                outcome.schedule(platform.name), ptgs, platform, releases
            )
            status = "OK    " if report.ok else "FAIL  "
            if not report.ok:
                failed += 1
            lines.append(f"{status} stream {key[:12]} {name}: {report.summary()}")
            for violation in report.violations[: args.max_violations]:
                lines.append(f"         {violation}")
            if spec.faults is not None and (outcome.faults or {}).get("schedule_rows"):
                from repro.faults.spec import compile_timeline

                total += 1
                timeline = compile_timeline(spec.faults, platform)
                report = validate_schedule(
                    outcome.repaired_schedule(platform.name),
                    ptgs,
                    platform,
                    releases,
                    faults=timeline,
                )
                status = "OK    " if report.ok else "FAIL  "
                if not report.ok:
                    failed += 1
                lines.append(
                    f"{status} repair {key[:12]} {name}: {report.summary()}"
                )
                for violation in report.violations[: args.max_violations]:
                    lines.append(f"         {violation}")

    for key, result in store.iter_records():
        total += 1
        report = validate_experiment_metrics(result)
        status = "OK    " if report.ok else "FAIL  "
        if not report.ok:
            failed += 1
        lines.append(
            f"{status} batch  {key[:12]} {result.workload} on {result.platform}: "
            f"{report.summary()}"
        )
        for violation in report.violations[: args.max_violations]:
            lines.append(f"         {violation}")

    for line in lines:
        print(line)
    if total == 0:
        print(f"error: no validatable records in {store.root}", file=sys.stderr)
        return 2
    print(f"\nvalidated {total} record(s): {total - failed} OK, {failed} failed")
    return 1 if failed else 0


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.campaigns.aggregate import summarize_store
    from repro.campaigns.colstore import DEFAULT_BATCH_SIZE, ColumnStore

    if not os.path.isdir(args.store):
        raise ConfigurationError(
            f"store directory {args.store} does not exist"
        )
    view = ColumnStore(args.store, channel=args.channel)
    if args.action == "compact":
        batch = args.batch_size if args.batch_size else DEFAULT_BATCH_SIZE
        report = view.compact(batch_size=batch)
        if args.format == "json":
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(
                f"compacted {report['rows_compacted']} record(s) into "
                f"{report['segments_written']} new segment(s); write-ahead "
                f"log settled up to byte {report['wal_offset']}"
            )
        return 0
    if args.action == "stat":
        stat = view.stat()
        if args.format == "json":
            print(json.dumps(stat, indent=2, sort_keys=True))
        else:
            print(f"channel:            {stat['channel']}")
            print(f"segments:           {stat['segments']} "
                  f"({stat['segment_rows']} row(s), {stat['segment_bytes']} bytes)")
            print(f"write-ahead log:    {stat['wal_bytes']} bytes "
                  f"({stat['wal_compacted_bytes']} compacted, "
                  f"{stat['wal_pending_records']} pending record(s))")
        return 0
    summary = summarize_store(view.store, channel=args.channel)
    if args.format == "json":
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(
        f"{summary['experiments']} experiment(s), "
        f"PTG counts {summary['ptg_counts']}"
    )
    for metric in (
        "average_unfairness",
        "average_relative_makespan",
        "average_mean_application_makespan",
    ):
        print(f"{metric}:")
        for name in summary["strategies"]:
            series = ", ".join(f"{v:.4f}" for v in summary[metric][name])
            print(f"  {name:<10} {series}")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.scenarios.registry import REGISTRIES

    kinds = [args.kind] if args.kind else sorted(REGISTRIES)
    if args.format == "json":
        print(
            json.dumps(
                {kind: REGISTRIES[kind].describe() for kind in kinds}, indent=2
            )
        )
        return 0
    for kind in kinds:
        registry = REGISTRIES[kind]
        print(f"{kind}:")
        for name, description in registry.describe().items():
            print(f"  {name:<12} {description}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.family == "random":
        ptg = generate_random_ptg(args.seed, RandomPTGConfig(n_tasks=args.tasks))
    elif args.family == "fft":
        ptg = generate_fft_ptg(args.points, rng=args.seed)
    else:
        ptg = generate_strassen_ptg(rng=args.seed)
    if args.format == "json":
        print(ptg_to_json(ptg, indent=2))
    else:
        print(ptg_to_dot(ptg))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.scenarios.run import run_scenario
    from repro.scenarios.spec import load_specs
    from repro.streaming.run import run_stream_scenario

    documents = _load_spec_documents(args.spec, args.set)
    specs = load_specs(documents)
    telemetry = obs.TelemetrySpec(profile=args.profile_spans)
    # One session for the whole command: the scenario runners see the
    # installed session and do not start their own, so every span of
    # every spec lands in one trace (always in-process, jobs=1).
    with obs.capture(telemetry) as session:
        for spec in specs:
            if spec.is_streaming:
                run_stream_scenario(spec, validate=False, keep_schedule=False)
            else:
                run_scenario(spec)
    obs.write_chrome_trace(args.output, session.spans)
    if args.summary is not None:
        with open(args.summary, "w", encoding="utf-8") as handle:
            json.dump(session.summary(), handle, indent=1)
            handle.write("\n")
    rows = [
        [name, entry["count"], f"{entry['total']:.4f}", f"{entry['mean']:.4f}",
         f"{entry['max']:.4f}"]
        for name, entry in obs.aggregate_spans(session.spans).items()
    ]
    print(
        format_table(
            ["span", "count", "total (s)", "mean (s)", "max (s)"],
            rows,
            title=f"{len(session.spans)} span(s) from {len(specs)} spec(s)",
        )
    )
    for name, report in (session.tracer.profiles if session.tracer else {}).items():
        print(f"\nprofile of {name}:\n{report}", file=sys.stderr)
    print(f"\nwrote {args.output} (load it in chrome://tracing or ui.perfetto.dev)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.scenarios.spec import ScenarioSpec
    from repro.service.http import run_daemon

    if args.restore and not args.store:
        raise ConfigurationError("--restore requires --store")
    spec = None
    if args.spec is not None or args.set:
        documents = _load_spec_documents(args.spec, args.set)
        if len(documents) != 1:
            raise ConfigurationError(
                f"serve expects exactly one scenario spec, got {len(documents)}"
            )
        spec = ScenarioSpec.from_dict(documents[0])
    if spec is None and not args.restore:
        raise ConfigurationError(
            "serve needs a scenario spec (SPEC.json / --set) or --restore"
        )

    def ready(port: int) -> None:
        # parseable by wrapper scripts (the CI smoke greps the port)
        print(f"listening on {args.host}:{port}", flush=True)

    run_daemon(
        spec,
        host=args.host,
        port=args.port,
        store=args.store,
        restore=args.restore,
        ready=ready,
    )
    return 0


def _client_arrivals(args: argparse.Namespace):
    """The arrival slice ``client submit`` sends, from a scenario file."""
    from repro.scenarios.spec import ScenarioSpec
    from repro.streaming.spec import generate_arrivals

    documents = _load_spec_documents(args.spec, args.set)
    if len(documents) != 1:
        raise ConfigurationError(
            f"client submit expects exactly one scenario spec, got {len(documents)}"
        )
    spec = ScenarioSpec.from_dict(documents[0])
    if spec.arrivals is None:
        raise ConfigurationError(
            "client submit needs a streaming spec (an 'arrivals' section) "
            "to know what to submit"
        )
    arrivals = list(generate_arrivals(spec.arrivals))
    stop = None if args.limit is None else args.offset + args.limit
    return arrivals[args.offset:stop]


def _cmd_client(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    client = ServiceClient(args.host, args.port)
    if args.action == "submit":
        arrivals = _client_arrivals(args)
        client.wait_ready()
        for arrival in arrivals:
            answer = client.submit(
                arrival.tenant or "default", arrival.time, arrival.ptg
            )
            print(
                f"submitted {answer['application']} for tenant "
                f"{answer['tenant']} ({answer['queued']} queued)"
            )
        print(f"submitted {len(arrivals)} arrival(s)")
        return 0
    if args.action == "status":
        print(json.dumps(client.status(args.tenant), indent=2))
        return 0
    if args.action == "schedule":
        if args.tenant is None:
            raise ConfigurationError("client schedule requires --tenant")
        answer = client.schedule(args.tenant)
        if args.format == "json":
            print(json.dumps(answer, indent=2))
        else:
            print(
                f"tenant {answer['tenant']}: valid={answer['valid']}, "
                f"{len(answer['rows'])} schedule row(s), "
                f"{len(answer['completion_times'])} application(s)"
            )
        return 0 if answer.get("valid") else 1
    if args.action == "metrics":
        print(json.dumps(client.metrics(), indent=2))
        return 0
    if args.action == "checkpoint":
        answer = client.checkpoint()
        print(
            f"checkpointed {answer['tenants']} tenant(s) "
            f"({answer['admitted']} admitted) under {answer['key']}"
        )
        return 0
    if args.action == "shutdown":
        client.shutdown()
        print("daemon stopping")
        return 0
    raise ConfigurationError(f"unknown client action {args.action!r}")


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.campaigns.store import CampaignStore
    from repro.obs.export import (
        TELEMETRY_CHANNEL,
        aggregate_spans,
        merge_metrics,
        prometheus_text,
        summary_spans,
    )
    from repro.obs.meters import Histogram

    store = CampaignStore(args.store)
    # last-wins per key: shard runs write one summary per key, and the
    # admission daemon's checkpoints are cumulative snapshots under one
    # key -- summing successive checkpoints would double-count them
    summaries = list(store.payloads_by_key(TELEMETRY_CHANNEL).values())
    if not summaries:
        print(
            f"error: no telemetry summaries in {store.root}; run the store "
            f"with specs that set \"telemetry\" (e.g. --set telemetry=true)",
            file=sys.stderr,
        )
        return 2
    merged = merge_metrics(s.get("metrics", {}) for s in summaries)
    spans = [span for s in summaries for span in summary_spans(s)]

    if args.format == "prometheus":
        print(prometheus_text(merged), end="")
        return 0
    if args.format == "json":
        document = dict(merged)
        document["spans"] = aggregate_spans(spans)
        document["summaries"] = len(summaries)
        print(json.dumps(document, indent=2))
        return 0

    if spans:
        rows = [
            [name, entry["count"], f"{entry['total']:.4f}", f"{entry['mean']:.4f}",
             f"{entry['max']:.4f}"]
            for name, entry in aggregate_spans(spans).items()
        ]
        print(
            format_table(
                ["span", "count", "total (s)", "mean (s)", "max (s)"],
                rows,
                title=f"per-phase spans ({len(summaries)} summaries)",
            )
        )
        print()
    if merged["histograms"]:
        rows = []
        for name, payload in merged["histograms"].items():
            histogram = Histogram.from_dict(payload)
            rows.append(
                [
                    name,
                    histogram.count,
                    f"{histogram.mean:.6g}",
                    f"{histogram.quantile(0.5):.6g}",
                    f"{histogram.quantile(0.99):.6g}",
                    f"{histogram.max if histogram.count else 0.0:.6g}",
                ]
            )
        print(
            format_table(
                ["histogram", "count", "mean", "p50", "p99", "max"],
                rows,
                title="histograms",
            )
        )
        print()
    rows = [[name, f"{value:g}"] for name, value in merged["counters"].items()]
    rows += [
        [f"{name} (max)", f"{payload['max']:g}"]
        for name, payload in merged["gauges"].items()
    ]
    if rows:
        print(format_table(["meter", "value"], rows, title="counters and gauges"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for the tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-ptg",
        description=(
            "Concurrent scheduling of parallel task graphs on multi-clusters "
            "(N'Takpe & Suter 2009) - reproduction toolkit"
        ),
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    parser.add_argument(
        "--profile", action="store_true",
        help="run the subcommand under cProfile and print the top 25 "
             "cumulative entries to stderr",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="enable the library's debug log lines (repro.* loggers)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress progress output (log level WARNING)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run",
        help="run declarative scenario spec(s) from a JSON file and/or --set overrides",
    )
    run.add_argument(
        "spec", nargs="?", default=None, metavar="SPEC.json",
        help="JSON file holding one scenario spec or a list of specs "
             "(omitted: the default scenario, customised via --set)",
    )
    run.add_argument(
        "--set", action="append", default=[], metavar="KEY=VALUE",
        help="override a spec field by dotted path, applied to every spec "
             "(e.g. --set pipeline.allocator=hcpa --set workload.family=fft "
             "--set strategies=S,ES)",
    )
    run.add_argument(
        "--format", default="text", choices=["text", "json"],
        help="output format of the per-scenario outcome summaries",
    )
    # default=SUPPRESS: the subparser must not clobber the global -q
    # (subparsers copy their whole namespace back over the parent's)
    run.add_argument(
        "--quiet", action="store_true", default=argparse.SUPPRESS,
        help="suppress progress output",
    )
    _add_parallel_arguments(run)

    stream = sub.add_parser(
        "stream",
        help="run an online arrival stream through the event-driven scheduler",
    )
    stream.add_argument(
        "--process", default="poisson", choices=["poisson", "mmpp", "trace"],
        help="arrival process (see 'repro-ptg list arrivals')",
    )
    stream.add_argument(
        "--rate", type=float, default=1.0,
        help="mean arrival rate in applications per second",
    )
    stream.add_argument(
        "--arrivals", type=int, default=None, metavar="N",
        help="stream length (default: 16, or the trace length)",
    )
    stream.add_argument(
        "--family", default="random", choices=list(APPLICATION_FAMILIES)
    )
    stream.add_argument(
        "--platform", default="rennes",
        choices=grid5000.site_names() + ["grid5000"],
        help="target platform (grid5000 = all four sites composed)",
    )
    stream.add_argument("--strategy", default="ES", choices=STRATEGY_NAMES)
    stream.add_argument(
        "--allocator", default="scrap-max",
        choices=["cpa", "hcpa", "scrap", "scrap-max"],
    )
    stream.add_argument(
        "--no-packing", action="store_true", help="disable allocation packing"
    )
    stream.add_argument("--mu", type=float, default=None, help="WPS mu override")
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument("--max-tasks", type=int, default=None)
    stream.add_argument(
        "--tenants", type=int, default=1,
        help="number of tenants (round-robin labels for the stall metrics)",
    )
    stream.add_argument(
        "--burst", type=float, default=4.0,
        help="burst-phase rate multiplier of the mmpp process",
    )
    stream.add_argument(
        "--dwell", type=float, default=None,
        help="mean phase dwell time (s) of the mmpp process",
    )
    stream.add_argument(
        "--trace", default=None, metavar="FILE",
        help="trace file of submission instants (JSON array or one per line)",
    )
    stream.add_argument(
        "--check", action="store_true",
        help="exit non-zero when the schedule-invariant validator fails",
    )
    stream.add_argument(
        "--format", default="text", choices=["text", "json"],
        help="output format of the stream summary",
    )
    stream.add_argument(
        "--quiet", action="store_true", default=argparse.SUPPRESS,
        help="suppress progress output",
    )
    _add_parallel_arguments(stream)

    val = sub.add_parser(
        "validate",
        help="run the schedule-invariant validator over a result store",
    )
    val.add_argument(
        "store", metavar="DIR",
        help="campaign / scenario store directory to validate",
    )
    val.add_argument(
        "--max-violations", type=int, default=5,
        help="violations printed per record",
    )

    lst = sub.add_parser(
        "list", help="list the entries of the scenario plugin registries"
    )
    lst.add_argument(
        "kind", nargs="?", default=None,
        choices=[
            "allocators", "mappers", "strategies", "platforms", "families",
            "arrivals", "faults", "executors",
        ],
        help="which registry to list (omitted: all of them)",
    )
    lst.add_argument(
        "--format", default="text", choices=["text", "json"],
        help="output format",
    )

    sub.add_parser("table1", help="print the platform Table 1")

    fig2 = sub.add_parser("fig2", help="run the mu sweep (Figure 2)")
    fig2.add_argument("--characteristic", default="work", choices=["work", "cp", "width"])
    fig2.add_argument("--family", default="random", choices=list(APPLICATION_FAMILIES))
    _add_scale_arguments(fig2)

    for number in (3, 4, 5):
        fig = sub.add_parser(f"fig{number}", help=f"run Figure {number}")
        _add_scale_arguments(fig)
        _add_parallel_arguments(fig)

    camp = sub.add_parser(
        "campaign",
        help="run a campaign with parallel workers and a persistent result store",
    )
    camp.add_argument(
        "--family", default="random", choices=list(APPLICATION_FAMILIES)
    )
    camp.add_argument(
        "--quiet", action="store_true", default=argparse.SUPPRESS,
        help="suppress progress output",
    )
    camp.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="attempts per shard before quarantining it (default: 1, no retry)",
    )
    camp.add_argument(
        "--executor", default=None, metavar="NAME",
        choices=["serial", "process-pool", "local-cluster"],
        help="execution engine for the shards (default: process-pool; "
             "see 'repro-ptg list executors')",
    )
    camp.add_argument(
        "--compact", action="store_true",
        help="compact the store's results into columnar segments after the run "
             "(requires --store)",
    )
    _add_scale_arguments(camp)
    _add_parallel_arguments(camp)

    store_cmd = sub.add_parser(
        "store",
        help="inspect or compact a campaign result store",
    )
    store_cmd.add_argument(
        "action", choices=["compact", "stat", "summarize"],
        help="compact: fold the JSONL write-ahead log into columnar segments; "
             "stat: report segment/WAL sizes; summarize: stream the paper "
             "aggregates out of the store",
    )
    store_cmd.add_argument("store", metavar="DIR", help="store directory")
    store_cmd.add_argument(
        "--channel", default="results",
        help="record channel to operate on (default: results)",
    )
    store_cmd.add_argument(
        "--batch-size", type=int, default=None, metavar="N",
        help="rows per columnar segment when compacting "
             "(default: 1000; bounds compaction memory)",
    )
    store_cmd.add_argument(
        "--format", default="text", choices=["text", "json"],
        help="output format",
    )

    sched = sub.add_parser("schedule", help="schedule one workload with one strategy")
    sched.add_argument("--family", default="random", choices=list(APPLICATION_FAMILIES))
    sched.add_argument("--n-ptgs", type=int, default=4)
    sched.add_argument("--platform", default="rennes", choices=grid5000.site_names())
    sched.add_argument("--strategy", default="WPS-width", choices=STRATEGY_NAMES)
    sched.add_argument("--seed", type=int, default=0)
    sched.add_argument("--max-tasks", type=int, default=None)

    gen = sub.add_parser("generate", help="generate a PTG and print it")
    gen.add_argument("--family", default="random", choices=["random", "fft", "strassen"])
    gen.add_argument("--tasks", type=int, default=20, help="task count (random family)")
    gen.add_argument("--points", type=int, default=8, help="FFT size (fft family)")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--format", default="json", choices=["json", "dot"])

    trc = sub.add_parser(
        "trace",
        help="run scenario spec(s) under telemetry and write a Chrome/Perfetto trace",
    )
    trc.add_argument(
        "spec", nargs="?", default=None, metavar="SPEC.json",
        help="JSON file holding one scenario spec or a list of specs "
             "(omitted: the default scenario, customised via --set)",
    )
    trc.add_argument(
        "-o", "--output", default="trace.json", metavar="FILE",
        help="Chrome trace output file (default: trace.json)",
    )
    trc.add_argument(
        "--summary", default=None, metavar="FILE",
        help="also write the full telemetry summary (spans + metrics) as JSON",
    )
    trc.add_argument(
        "--profile-spans", action="store_true",
        help="run each root span under cProfile and print the reports to stderr",
    )
    trc.add_argument(
        "--set", action="append", default=[], metavar="KEY=VALUE",
        help="override a spec field by dotted path, applied to every spec",
    )

    srv = sub.add_parser(
        "serve",
        help="run the admission daemon for a scenario spec (JSON over HTTP)",
    )
    srv.add_argument(
        "spec", nargs="?", default=None, metavar="SPEC.json",
        help="scenario spec the daemon serves (omitted: --restore from a "
             "checkpointed --store, or the default scenario via --set)",
    )
    srv.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    srv.add_argument(
        "--port", type=int, default=0,
        help="bind port (default 0: pick an ephemeral port and print it)",
    )
    srv.add_argument(
        "--store", default=None, metavar="DIR",
        help="campaign store checkpoints persist to (enables /checkpoint "
             "and the final checkpoint on shutdown)",
    )
    srv.add_argument(
        "--restore", action="store_true",
        help="restore every tenant from the latest checkpoint in --store",
    )
    srv.add_argument(
        "--set", action="append", default=[], metavar="KEY=VALUE",
        help="override a spec field by dotted path "
             "(e.g. --set service.queue_depth=16)",
    )

    cli = sub.add_parser(
        "client", help="talk to a running admission daemon"
    )
    cli.add_argument(
        "action",
        choices=[
            "submit", "status", "schedule", "metrics", "checkpoint", "shutdown",
        ],
        help="what to ask the daemon",
    )
    cli.add_argument(
        "spec", nargs="?", default=None, metavar="SPEC.json",
        help="streaming scenario file whose arrivals 'submit' sends",
    )
    cli.add_argument("--host", default="127.0.0.1", help="daemon address")
    cli.add_argument("--port", type=int, required=True, help="daemon port")
    cli.add_argument(
        "--tenant", default=None,
        help="tenant name (status: optional filter; schedule: required)",
    )
    cli.add_argument(
        "--offset", type=int, default=0,
        help="skip the first N arrivals of the spec (submit)",
    )
    cli.add_argument(
        "--limit", type=int, default=None,
        help="submit at most N arrivals of the spec",
    )
    cli.add_argument(
        "--set", action="append", default=[], metavar="KEY=VALUE",
        help="override a spec field by dotted path (submit)",
    )
    cli.add_argument(
        "--format", default="text", choices=["text", "json"],
        help="output format of 'schedule'",
    )

    met = sub.add_parser(
        "metrics",
        help="report the telemetry summaries stored in a campaign/scenario store",
    )
    met.add_argument(
        "store", metavar="DIR",
        help="store directory holding telemetry summaries (specs run with "
             "\"telemetry\" set)",
    )
    met.add_argument(
        "--format", default="text", choices=["text", "json", "prometheus"],
        help="output format of the aggregated metrics",
    )

    return parser


#: Number of profile entries ``--profile`` reports (re-exported from
#: :mod:`repro.obs.profile`, which owns the profiling machinery).
from repro.obs.profile import PROFILE_TOP_ENTRIES  # noqa: E402


def _profiled(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    """Dispatch under :mod:`cProfile`, reporting the top cumulative entries."""
    from repro.obs.profile import profile_call

    code, report = profile_call(_dispatch, parser, args)
    print(report, file=sys.stderr)
    return code


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro-ptg`` command."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = configure_cli_logging(verbose=args.verbose, quiet=args.quiet)
    try:
        if args.profile:
            return _profiled(parser, args)
        return _dispatch(parser, args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        remove_cli_logging(handler)


def _dispatch(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "stream":
        return _cmd_stream(args)
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "table1":
        return _cmd_table1(args)
    if args.command == "fig2":
        return _cmd_fig2(args)
    if args.command in ("fig3", "fig4", "fig5"):
        return _cmd_figure(int(args.command[-1]), args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "store":
        return _cmd_store(args)
    if args.command == "schedule":
        return _cmd_schedule(args)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "client":
        return _cmd_client(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
