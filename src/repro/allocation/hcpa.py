"""HCPA: Heterogeneous Critical Path and Area allocation.

HCPA extends CPA to heterogeneous multi-cluster platforms through the
homogeneous :class:`~repro.allocation.reference.ReferenceCluster`
abstraction: allocations are computed in reference processors and
translated to actual clusters by the mapping step.  The iterative loop and
the balance stopping criterion are those of CPA, evaluated on the
reference cluster.

HCPA is the unconstrained (dedicated-platform) allocator: it is what the
selfish ``S`` strategy effectively uses (``beta = 1``), and the
single-application schedules that define the slowdown metric (``M_own``)
are built with it.
"""

from __future__ import annotations

from repro.allocation.base import Allocation, AllocationProcedure
from repro.allocation.iterative import NoConstraint, run_iterative_allocation
from repro.allocation.reference import ReferenceCluster
from repro.dag.graph import PTG
from repro.platform.multicluster import MultiClusterPlatform


class HCPAAllocator(AllocationProcedure):
    """The HCPA allocation procedure (reference-cluster CPA)."""

    name = "HCPA"

    def __init__(self, efficiency_threshold: float = 0.0, fast: bool = True) -> None:
        """*efficiency_threshold* is the over-allocation guard of ref. [11].

        *fast* selects the fused iteration loop of
        :mod:`repro.allocation.fastloop` (bit-identical results either
        way; ``False`` is the benchmark / golden-test baseline).
        """
        self.efficiency_threshold = efficiency_threshold
        self.fast = fast

    def allocate(
        self, ptg: PTG, platform: MultiClusterPlatform, beta: float = 1.0
    ) -> Allocation:
        """Allocate *ptg* on *platform*.

        ``beta`` scales the reference cluster size used by the balance
        criterion (``T_A`` is computed over ``beta * N_ref`` processors),
        so HCPA with ``beta < 1`` behaves like a softly constrained
        allocator; the hard per-level guarantee of SCRAP-MAX is only
        provided by :class:`~repro.allocation.scrap.ScrapMaxAllocator`.
        """
        reference = ReferenceCluster.of(platform)
        allocation, _ = run_iterative_allocation(
            ptg,
            platform,
            reference,
            beta=beta,
            constraint=NoConstraint(),
            use_balance_stop=True,
            efficiency_threshold=self.efficiency_threshold,
            fast=self.fast,
        )
        return allocation
