"""Allocation step of the two-step scheduling process.

The allocation step determines, for every task of a PTG, *how many
processors* it should execute on -- without yet deciding *which*
processors.  Following the HCPA line of work, allocations are expressed in
processors of a *homogeneous reference cluster* that abstracts the
heterogeneous platform; the mapping step later translates a reference
allocation into an actual processor count on each candidate cluster.

Provided procedures:

* :class:`~repro.allocation.cpa.CPAAllocator` -- the classical CPA
  procedure for a homogeneous cluster (baseline),
* :class:`~repro.allocation.hcpa.HCPAAllocator` -- CPA on the reference
  cluster (heterogeneous platforms, dedicated usage),
* :class:`~repro.allocation.scrap.ScrapAllocator` -- SCRAP: constrained
  allocation with a *global area* resource constraint,
* :class:`~repro.allocation.scrap.ScrapMaxAllocator` -- SCRAP-MAX:
  constrained allocation with a *per precedence level* resource
  constraint.  This is the procedure used by the paper's concurrent
  scheduler.
"""

from repro.allocation.reference import ReferenceCluster
from repro.allocation.base import Allocation, AllocationProcedure
from repro.allocation.state import AllocationState
from repro.allocation.cpa import CPAAllocator
from repro.allocation.hcpa import HCPAAllocator
from repro.allocation.scrap import ScrapAllocator, ScrapMaxAllocator

__all__ = [
    "ReferenceCluster",
    "Allocation",
    "AllocationProcedure",
    "AllocationState",
    "CPAAllocator",
    "HCPAAllocator",
    "ScrapAllocator",
    "ScrapMaxAllocator",
]
