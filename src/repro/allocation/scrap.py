"""SCRAP and SCRAP-MAX constrained allocation procedures.

Both procedures (introduced in the authors' earlier PDCS'07 paper and
recalled in Section 4 of the reproduced paper) start from one reference
processor per task and repeatedly add a processor to the critical-path
task that benefits the most, exactly like HCPA.  They differ in how a
violation of the resource constraint ``beta`` is detected:

* **SCRAP** checks a *global area* condition: the sum of the task areas
  divided by the critical path length (i.e. the average processing power
  the schedule will occupy) must not exceed ``beta`` times the platform's
  aggregate power.  The first violation stops the procedure.

* **SCRAP-MAX** applies the constraint *per precedence level*: the
  aggregate power allocated to the tasks of any level must not exceed
  ``beta`` times the platform power.  A violating increment only freezes
  the offending task; other critical-path tasks may keep growing.  This
  guarantees that the concurrent ready tasks of a level (which is what the
  mapping step ends up scheduling together) fit within the application's
  share, and avoids the task post-poning SCRAP can suffer from.

The paper's concurrent scheduler uses SCRAP-MAX; SCRAP is kept for the
ablation benchmark comparing the two.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.allocation.base import Allocation, AllocationProcedure
from repro.allocation.iterative import (
    AreaConstraint,
    IterationStats,
    LevelConstraint,
    run_iterative_allocation,
)
from repro.allocation.reference import ReferenceCluster
from repro.dag.graph import PTG
from repro.platform.multicluster import MultiClusterPlatform


class ScrapAllocator(AllocationProcedure):
    """SCRAP: constrained allocation with a global area constraint."""

    name = "SCRAP"

    def __init__(
        self,
        use_balance_stop: bool = True,
        efficiency_threshold: float = 0.0,
        fast: bool = True,
    ) -> None:
        """*fast* selects the fused loop (bit-identical; see fastloop)."""
        self.use_balance_stop = use_balance_stop
        self.efficiency_threshold = efficiency_threshold
        self.fast = fast
        self.last_stats: Optional[IterationStats] = None

    def allocate(
        self, ptg: PTG, platform: MultiClusterPlatform, beta: float = 1.0
    ) -> Allocation:
        """Allocate *ptg* under the global area constraint ``beta``."""
        reference = ReferenceCluster.of(platform)
        constraint = AreaConstraint(beta, platform.total_power_gflops)
        allocation, stats = run_iterative_allocation(
            ptg,
            platform,
            reference,
            beta=beta,
            constraint=constraint,
            use_balance_stop=self.use_balance_stop,
            efficiency_threshold=self.efficiency_threshold,
            fast=self.fast,
        )
        self.last_stats = stats
        return allocation

    @staticmethod
    def respects_constraint(allocation: Allocation, platform: MultiClusterPlatform) -> bool:
        """Check the SCRAP (area) constraint on a finished allocation."""
        return (
            allocation.average_power()
            <= allocation.beta * platform.total_power_gflops + 1e-9
        )


class ScrapMaxAllocator(AllocationProcedure):
    """SCRAP-MAX: constrained allocation with a per-precedence-level constraint."""

    name = "SCRAP-MAX"

    def __init__(
        self,
        use_balance_stop: bool = True,
        efficiency_threshold: float = 0.0,
        fast: bool = True,
    ) -> None:
        """*fast* selects the fused loop (bit-identical; see fastloop)."""
        self.use_balance_stop = use_balance_stop
        self.efficiency_threshold = efficiency_threshold
        self.fast = fast
        self.last_stats: Optional[IterationStats] = None

    def allocate(
        self, ptg: PTG, platform: MultiClusterPlatform, beta: float = 1.0
    ) -> Allocation:
        """Allocate *ptg* under the per-level constraint ``beta``."""
        reference = ReferenceCluster.of(platform)
        constraint = LevelConstraint(beta, platform.total_power_gflops)
        allocation, stats = run_iterative_allocation(
            ptg,
            platform,
            reference,
            beta=beta,
            constraint=constraint,
            use_balance_stop=self.use_balance_stop,
            efficiency_threshold=self.efficiency_threshold,
            fast=self.fast,
        )
        self.last_stats = stats
        return allocation

    @staticmethod
    def respects_constraint(allocation: Allocation, platform: MultiClusterPlatform) -> bool:
        """Check the SCRAP-MAX (per-level) constraint on a finished allocation.

        The initial one-processor-per-task allocation may itself exceed the
        constraint on very wide levels with a very small ``beta`` (there is
        no way to allocate less than one processor per task); in that case
        the procedure never makes things worse, and this check reports
        whether the *final* allocation fits.
        """
        limit = allocation.beta * platform.total_power_gflops + 1e-9
        return all(power <= limit for power in allocation.level_powers().values())
