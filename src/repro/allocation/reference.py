"""Homogeneous reference cluster abstraction (HCPA).

HCPA "extends the CPA algorithm to heterogeneous platforms by using the
concept of a homogeneous reference cluster and by translating allocations
on that reference cluster into allocations on actual clusters containing
compute nodes of various speeds" (paper, Section 3).

The reference cluster aggregates the whole platform into ``N_ref``
processors of speed ``s_ref``:

* ``s_ref`` is the speed of the slowest processors of the platform (so a
  reference allocation never over-estimates what a real cluster can
  deliver per processor),
* ``N_ref = floor(total_power / s_ref)``, i.e. the reference cluster has
  the same aggregate processing power as the real platform.

Translating a reference allocation of ``a`` processors to cluster ``k``
uses the equivalent-power rule ``p_k = ceil(a * s_ref / s_k)`` (capped to
the cluster size): the task receives at least as much processing power on
the target cluster as it had on the reference cluster whenever possible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.dag.task import Task
from repro.exceptions import AllocationError
from repro.platform.cluster import Cluster, GFLOP
from repro.platform.multicluster import MultiClusterPlatform


@dataclass(frozen=True)
class ReferenceCluster:
    """The homogeneous reference view of a heterogeneous platform.

    Examples
    --------
    >>> from repro.platform import heterogeneous_platform
    >>> p = heterogeneous_platform((10, 10), (2.0, 4.0))
    >>> ref = ReferenceCluster.of(p)
    >>> ref.speed_gflops
    2.0
    >>> ref.size
    30
    """

    speed_gflops: float
    size: int
    platform_name: str = ""

    def __post_init__(self) -> None:
        if not self.speed_gflops > 0:
            raise AllocationError(
                f"reference speed must be positive, got {self.speed_gflops}"
            )
        if self.size < 1:
            raise AllocationError(f"reference size must be >= 1, got {self.size}")

    @classmethod
    def of(cls, platform: MultiClusterPlatform) -> "ReferenceCluster":
        """Build the reference cluster of *platform*."""
        speed = platform.min_speed_gflops
        size = int(math.floor(platform.total_power_gflops / speed))
        return cls(speed_gflops=speed, size=size, platform_name=platform.name)

    # ------------------------------------------------------------------ #
    # basic quantities
    # ------------------------------------------------------------------ #
    @property
    def speed_flops(self) -> float:
        """Reference processor speed in flop/s."""
        return self.speed_gflops * GFLOP

    @property
    def total_power_gflops(self) -> float:
        """Aggregate power of the reference cluster (GFlop/s)."""
        return self.size * self.speed_gflops

    # ------------------------------------------------------------------ #
    # task timing on the reference cluster
    # ------------------------------------------------------------------ #
    def execution_time(self, task: Task, processors: int) -> float:
        """Execution time of *task* on *processors* reference processors."""
        return task.execution_time(processors, self.speed_flops)

    def area(self, task: Task, processors: int) -> float:
        """Work area ``p * T(p)`` of *task* (reference processor-seconds)."""
        return task.area(processors, self.speed_flops)

    def power_used(self, processors: int) -> float:
        """Processing power of *processors* reference processors (GFlop/s)."""
        return processors * self.speed_gflops

    def marginal_gain(self, task: Task, processors: int) -> float:
        """CPA benefit of giving *task* one more reference processor."""
        return task.marginal_gain(processors, self.speed_flops)

    # ------------------------------------------------------------------ #
    # translation to real clusters
    # ------------------------------------------------------------------ #
    def translate(self, processors: int, cluster: Cluster) -> int:
        """Translate a reference allocation to a processor count on *cluster*.

        Uses the equivalent-power rule ``ceil(p_ref * s_ref / s_k)`` and
        clips the result to ``[1, cluster.num_processors]``.
        """
        if processors < 1:
            raise AllocationError(f"reference allocation must be >= 1, got {processors}")
        equivalent = math.ceil(processors * self.speed_gflops / cluster.speed_gflops)
        return max(1, min(cluster.num_processors, equivalent))

    def max_allocation(self, platform: MultiClusterPlatform) -> int:
        """Largest useful reference allocation for a single task.

        A task must fit inside a single cluster, so its reference
        allocation never needs to exceed the power of the most powerful
        cluster expressed in reference processors.
        """
        best = max(
            int(math.floor(c.power_gflops / self.speed_gflops)) for c in platform
        )
        return max(1, min(best, self.size))
