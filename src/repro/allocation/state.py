"""Array-compiled allocation state for the CPA-family hot loop.

The iterative allocation procedures (CPA, HCPA, SCRAP, SCRAP-MAX) evaluate
the same small set of quantities thousands of times: the execution time of
every task under its current reference allocation, the critical path of
the PTG under those times, the total area, and (for the constrained
procedures) the average power over the critical path or the aggregate
power of one precedence level.  The dict-based
:class:`~repro.allocation.base.Allocation` recomputes each of them from
scratch through per-task method calls -- including the construction of an
:class:`~repro.dag.cost_models.AmdahlTaskModel` per timing query.

:class:`AllocationState` compiles all of it once per
``(PTG, reference cluster, cap)``:

* the full duration table ``T(v, p)`` for ``p = 1..cap`` (vectorized
  Amdahl), plus the derived area table ``p * T(v, p)``, the CPA marginal
  gain table ``T(v,p)/p - T(v,p+1)/(p+1)`` and the parallel-efficiency
  table used by the over-allocation guard -- so ``task_time``,
  ``marginal_gain`` and the efficiency check become table lookups,
* the current per-task durations and areas, refreshed in O(1) per
  increment, which makes ``total_area`` (and hence SCRAP's
  ``average_power``) and SCRAP-MAX's ``level_power`` single fold-left
  sums instead of per-task method-call cascades,
* the critical-path DP over the precomputed topology of the shared
  :class:`~repro.dag.arrays.DagArrays` compilation -- the vectorized
  level-batched pass for large graphs, or its bit-identical scalar
  specialization below :data:`~repro.dag.arrays.SMALL_GRAPH_CUTOFF`
  tasks, where NumPy dispatch overhead would dominate.

Exactness
---------
Every table entry and every sum reproduces the IEEE-754 operation order
of the scalar code in :class:`~repro.allocation.base.Allocation` /
:class:`~repro.dag.cost_models.AmdahlTaskModel`: fold-left sums are
Python's built-in ``sum`` (the reference's own semantics) and maxima are
exact.  The resulting allocations and iteration diagnostics are therefore
**bit-identical** to the reference loop kept in
:mod:`repro.allocation._reference`, which
``tests/test_allocation_golden.py`` asserts across procedures, workload
families and betas.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.allocation.base import Allocation
from repro.allocation.reference import ReferenceCluster
from repro.dag.arrays import SMALL_GRAPH_CUTOFF
from repro.dag.graph import PTG
from repro.exceptions import AllocationError

#: Key under which batched Amdahl tables are parked in ``PTG._cache``
#: (cleared automatically on any structural mutation of the graph).
_TABLE_CACHE_KEY = "alloc_tables"


def prepare_allocation_tables(
    ptgs: Sequence[PTG], reference: ReferenceCluster, cap: int
) -> None:
    """Precompute the Amdahl tables of a whole batch in one sweep.

    Stacks the ``alpha`` / ``flops`` columns of every graph in *ptgs*
    and evaluates the duration, area and CPA-gain tables of the entire
    batch with a single vectorized pass each, then parks each graph's row
    block in its cache where :class:`AllocationState` picks it up.  All
    three tables are **elementwise** expressions, so a row of the stacked
    result is bit-identical to the row the per-graph construction
    computes -- only the NumPy dispatch overhead is amortized.

    Graphs whose tables are already cached for this ``(reference, cap)``
    are skipped.  Call :func:`discard_allocation_tables` once a graph's
    allocation has been materialised to keep a long stream's memory
    high-water mark flat.
    """
    if cap < 1:
        raise AllocationError(f"allocation cap must be >= 1, got {cap}")
    cap = int(cap)
    pending: List[PTG] = []
    seen_ids = set()
    for ptg in ptgs:
        if id(ptg) in seen_ids:
            continue
        seen_ids.add(id(ptg))
        cached = ptg._cache.get(_TABLE_CACHE_KEY)
        if isinstance(cached, dict) and (reference, cap) in cached:
            continue
        pending.append(ptg)
    if not pending:
        return

    arrays = [ptg.arrays() for ptg in pending]
    alpha_col = np.concatenate([a.alpha for a in arrays])[:, None]
    flops_col = np.concatenate([a.flops for a in arrays])[:, None]
    procs_row = np.arange(1, cap + 1, dtype=np.float64)
    durations = (
        (alpha_col + (1.0 - alpha_col) / procs_row)
        * flops_col
        / reference.speed_flops
    )
    areas = procs_row * durations
    gain = (
        durations[:, :-1] / procs_row[:-1] - durations[:, 1:] / procs_row[1:]
    )

    row = 0
    for ptg, a in zip(pending, arrays):
        n = a.n_tasks
        bucket = ptg._cache.setdefault(_TABLE_CACHE_KEY, {})
        bucket[(reference, cap)] = (
            durations[row : row + n],
            areas[row : row + n],
            gain[row : row + n],
        )
        row += n


def discard_allocation_tables(ptg: PTG) -> None:
    """Drop any batched Amdahl tables cached on *ptg*.

    The tables only serve the admissions of one batch; dropping them
    afterwards (the streaming session does it on commit) keeps the
    per-graph cache from pinning ``O(n_tasks * cap)`` floats for the
    lifetime of the stream.  A graph without cached tables is a no-op.
    """
    ptg._cache.pop(_TABLE_CACHE_KEY, None)


class AllocationState:
    """Flat-array working state of one iterative allocation run.

    Parameters
    ----------
    ptg:
        The (validated) graph being allocated.
    reference:
        The reference cluster timings are expressed against.
    cap:
        Largest useful per-task allocation
        (:meth:`~repro.allocation.reference.ReferenceCluster.max_allocation`).
    beta:
        The resource constraint, forwarded to the final
        :class:`~repro.allocation.base.Allocation`.
    """

    def __init__(
        self, ptg: PTG, reference: ReferenceCluster, cap: int, beta: float = 1.0
    ) -> None:
        if cap < 1:
            raise AllocationError(f"allocation cap must be >= 1, got {cap}")
        self.ptg = ptg
        self.reference = reference
        self.cap = int(cap)
        self.beta = float(beta)
        self.arrays = ptg.arrays()
        n = self.arrays.n_tasks

        # Duration table T(v, p), p = 1..cap, with the exact operation
        # order of AmdahlTaskModel.time: (alpha + (1-alpha)/p) * w / s.
        # Synthetic (zero-flop) rows are exactly 0.0 because the zero
        # sequential cost multiplies out, matching Task.execution_time.
        # A batch admission may have prebuilt the tables for the whole
        # arrival chunk (prepare_allocation_tables); the stacked sweep is
        # elementwise, so its row blocks are bit-identical to the ones
        # computed here.
        procs_row = np.arange(1, self.cap + 1, dtype=np.float64)
        bucket = ptg._cache.get(_TABLE_CACHE_KEY)
        prepared: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = (
            bucket.get((reference, self.cap)) if isinstance(bucket, dict) else None
        )
        if prepared is not None:
            self.durations_table, self.areas_table, self.gain_table = prepared
        else:
            alpha_col = self.arrays.alpha[:, None]
            flops_col = self.arrays.flops[:, None]
            self.durations_table = (
                (alpha_col + (1.0 - alpha_col) / procs_row)
                * flops_col
                / reference.speed_flops
            )
            #: Area table p * T(v, p), operation order of AmdahlTaskModel.area.
            self.areas_table = procs_row * self.durations_table
            #: CPA benefit table T(v,p)/p - T(v,p+1)/(p+1) for p = 1..cap-1.
            self.gain_table = (
                self.durations_table[:, :-1] / procs_row[:-1]
                - self.durations_table[:, 1:] / procs_row[1:]
            )
        self._procs_row = procs_row
        self._eff_table: Optional[np.ndarray] = None

        #: Current reference allocation of every task (insertion order).
        self.procs: List[int] = [1] * n
        #: Current execution times T(v, procs[v]) as Python floats.
        self.durations: List[float] = self.durations_table[:, 0].tolist()
        #: Current areas procs[v] * T(v, procs[v]) as Python floats.
        self.areas: List[float] = self.areas_table[:, 0].tolist()
        # NumPy view of the current durations, only maintained when the
        # vectorized DP runs (large graphs)
        self._vector_dp = n >= SMALL_GRAPH_CUTOFF
        self._durations_np = (
            self.durations_table[:, 0].copy() if self._vector_dp else None
        )
        # lazily materialised Python rows of the tables: scalar lookups in
        # the loop skip NumPy indexing, and only touched rows pay the
        # conversion (critical-path tasks are a small subset of V x cap)
        self._dur_rows: Dict[int, List[float]] = {}
        self._area_rows: Dict[int, List[float]] = {}
        self._gain_rows: Dict[int, List[float]] = {}
        self._eff_rows: Dict[int, List[float]] = {}

    # ------------------------------------------------------------------ #
    # lazy Python rows of the precomputed tables
    # ------------------------------------------------------------------ #
    def _row(self, cache: Dict[int, List[float]], table, index: int) -> List[float]:
        row = cache.get(index)
        if row is None:
            row = cache[index] = table[index].tolist()
        return row

    def duration_row(self, index: int) -> List[float]:
        """Durations ``T(v, 1..cap)`` of the task at *index* (Python floats)."""
        return self._row(self._dur_rows, self.durations_table, index)

    def gain_row(self, index: int) -> List[float]:
        """Marginal gains of the task at *index* for ``p = 1..cap-1``."""
        return self._row(self._gain_rows, self.gain_table, index)

    def area_row(self, index: int) -> List[float]:
        """Areas ``p * T(v, p)`` of the task at *index* for ``p = 1..cap``."""
        return self._row(self._area_rows, self.areas_table, index)

    def efficiency_row(self, index: int) -> List[float]:
        """Parallel efficiencies of the task at *index* for ``p = 1..cap``."""
        return self._row(self._eff_rows, self.efficiency_table(), index)

    def efficiency_table(self) -> np.ndarray:
        """Parallel efficiency table ``eff(v, p)`` for ``p = 1..cap``.

        Built lazily (only the over-allocation guard needs it) with the
        exact operation order of
        :meth:`~repro.dag.cost_models.AmdahlTaskModel.efficiency`:
        ``(1 / (alpha + (1-alpha)/p)) / p``.
        """
        if self._eff_table is None:
            alpha_col = self.arrays.alpha[:, None]
            speedup = 1.0 / (alpha_col + (1.0 - alpha_col) / self._procs_row)
            self._eff_table = speedup / self._procs_row
        return self._eff_table

    # ------------------------------------------------------------------ #
    # allocation updates
    # ------------------------------------------------------------------ #
    def set_processors(self, index: int, processors: int) -> None:
        """Set the allocation of the task at *index*; O(1) table refresh."""
        if processors < 1 or processors > self.cap:
            raise AllocationError(
                f"allocation must be in [1, {self.cap}], got {processors}"
            )
        self.procs[index] = processors
        duration = self._row(self._dur_rows, self.durations_table, index)[
            processors - 1
        ]
        self.durations[index] = duration
        self.areas[index] = self._row(self._area_rows, self.areas_table, index)[
            processors - 1
        ]
        if self._durations_np is not None:
            self._durations_np[index] = duration

    def increment(self, index: int) -> None:
        """Give the task at *index* one more reference processor."""
        self.set_processors(index, self.procs[index] + 1)

    def decrement(self, index: int) -> None:
        """Take one reference processor back (revert a tentative increment)."""
        self.set_processors(index, self.procs[index] - 1)

    # ------------------------------------------------------------------ #
    # lookups replacing per-call model construction
    # ------------------------------------------------------------------ #
    def task_time(self, index: int) -> float:
        """Execution time of the task at *index* on its current allocation."""
        return self.durations[index]

    def marginal_gain(self, index: int) -> float:
        """CPA benefit of one more processor for the task at *index*.

        Only meaningful while ``procs[index] < cap`` (the loop's
        ``_may_grow`` filter guarantees it).
        """
        return self.gain_row(index)[self.procs[index] - 1]

    # ------------------------------------------------------------------ #
    # graph quantities under the current allocation
    # ------------------------------------------------------------------ #
    def bottom_levels(self) -> List[float]:
        """Bottom levels under the current durations, as a Python list.

        Uses the vectorized level-batched DP of
        :meth:`~repro.dag.arrays.DagArrays.bottom_levels` for large
        graphs and its bit-identical scalar specialization below
        :data:`~repro.dag.arrays.SMALL_GRAPH_CUTOFF` tasks.
        """
        if self._vector_dp:
            return self.arrays.bottom_levels(self._durations_np).tolist()
        return self.arrays.bottom_levels_py(self.durations)

    def critical_path_length(self) -> float:
        """Critical path length, ``max`` over the bottom levels."""
        return max(self.bottom_levels())

    def critical_path(self, bl: Optional[List[float]] = None) -> List[int]:
        """Indices along one critical path (reference tie-breaks)."""
        if bl is None:
            bl = self.bottom_levels()
        return self.arrays.critical_path_py(bl)

    # ------------------------------------------------------------------ #
    # incremental resource sums
    # ------------------------------------------------------------------ #
    def total_area(self) -> float:
        """Sum of task areas, fold-left in insertion order.

        Matches :meth:`repro.allocation.base.Allocation.total_area`
        bit-for-bit: the per-task areas are maintained incrementally and
        summed with Python's built-in left-to-right ``sum``, the exact
        semantics of the reference generator sum.
        """
        return sum(self.areas)

    def total_work_power_seconds(self) -> float:
        """Total area expressed in (GFlop/s) x seconds (SCRAP's quantity)."""
        return self.total_area() * self.reference.speed_gflops

    def average_power(self) -> float:
        """Average power over the critical path, as SCRAP bounds it."""
        cp = self.critical_path_length()
        if cp <= 0.0:
            return 0.0
        return self.total_work_power_seconds() / cp

    def level_power(self, level: int) -> float:
        """Aggregate power of one precedence level, fold-left summed.

        The member order (and hence the float rounding) is the
        ``tasks_by_level`` order preserved by the
        :class:`~repro.dag.arrays.DagArrays` compilation; synthetic tasks
        contribute exactly 0.0 like
        :meth:`repro.allocation.base.Allocation.task_power`.
        """
        members = self.arrays.level_tuples[level]
        synthetic = self.arrays.synthetic_tuple
        procs = self.procs
        speed = self.reference.speed_gflops
        return sum(0.0 if synthetic[i] else procs[i] * speed for i in members)

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #
    def as_allocation(self) -> Allocation:
        """Materialise the final :class:`~repro.allocation.base.Allocation`.

        The processor dict is rebuilt in task insertion order, so the
        result is indistinguishable from one produced by the dict-based
        reference loop.
        """
        allocation = Allocation(self.ptg, self.reference, self.beta)
        allocation._procs = dict(zip(self.arrays.task_ids_tuple, self.procs))
        return allocation
