"""Fused fast path of the CPA-family iterative allocation loop.

:func:`repro.allocation.iterative.run_iterative_allocation` re-derives
the bottom levels of the whole graph **twice** per accepted increment --
once for the balance test and critical path, and (for SCRAP) once more
inside the constraint's ``average_power`` re-evaluation -- although a
single increment only shortens one task.  :func:`run_fused_loop` fuses
the iteration into one flat pass that exploits exactly that locality:

* **incremental bottom levels** -- after an increment only the task and
  its ancestors can change, so the DP is re-run over the dirty cone
  (a flag-guided sweep in decreasing topological position, with an undo
  log for rejected increments) instead of the whole graph;
* **freeze-skip** -- a rejected increment under SCRAP-MAX restores the
  state bit-for-bit, so the next iteration's bottom levels, critical
  path and balance test are *the same floats* as the last one's and are
  reused instead of recomputed (the iteration is still counted against
  ``max_iterations``);
* **hoisted constraint checks** -- the built-in area / level tests are
  dispatched once before the loop and evaluated inline over the
  incrementally maintained bottom levels and areas, instead of a fresh
  full DP (plus closure dispatch) per tentative increment;
* **flat hot path** -- candidate filtering, the ``(gain, -task_id)``
  selection and the per-increment table refresh run inline on
  lazily-materialised Python rows of the precomputed tables, with no
  per-iteration function calls besides the critical-path walk.

Exactness
---------
Every float the loop produces is bit-identical to the reference
formulation in :mod:`repro.allocation._reference` and to the non-fused
loop in :mod:`repro.allocation.iterative`:

* recomputing a node's bottom level from unchanged inputs yields the
  identical IEEE-754 value, so propagating only nodes whose recomputed
  value differs (and their predecessors), in decreasing topological
  position, reproduces the full DP exactly;
* the balance and constraint comparisons use the same fold-left sums
  (Python ``sum`` over the state's incrementally maintained areas and
  the level-member generator of ``AllocationState.level_power``) and
  the same ``beta * P + 1e-12`` limits, in the same operation order;
* the candidate scan keeps the first maximal ``(gain, -task_id)`` key
  exactly like the reference's ``max(candidates, key=...)``: a
  candidate only replaces the incumbent on a strictly greater key;
* the inline increment / revert performs the same row lookups as
  :meth:`~repro.allocation.state.AllocationState.set_processors`
  (bounds always hold: growth is filtered by ``procs < cap``).

``tests/test_allocation_golden.py`` and ``tests/test_delta_golden.py``
assert the resulting allocations and :class:`IterationStats` match the
reference across procedures, workload families and betas.  Custom
:class:`~repro.allocation.iterative.ConstraintCheck` subclasses never
reach this module: the dispatcher falls back to the mirrored dict-based
loop for them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.allocation.iterative import ConstraintCheck, IterationStats
    from repro.allocation.state import AllocationState


def _propagate(
    start: int,
    bl: List[float],
    durations: List[float],
    succ_of: Tuple[Tuple[int, ...], ...],
    pred_of: Tuple[Tuple[int, ...], ...],
    topo_order: List[int],
    topo_pos: List[int],
    dirty: List[bool],
) -> List[Tuple[int, float]]:
    """Re-run the bottom-level DP over the dirty cone above *start*.

    The sweep walks the topological order downwards from *start*'s
    position, recomputing exactly the flagged nodes; a node's
    predecessors are flagged only when its value actually changed.
    Every successor of a node is final before the node itself is
    recomputed -- the exact evaluation order (and hence the exact
    floats) of the full reverse-topological pass.  *dirty* is a
    caller-owned scratch list of ``False`` flags; the sweep leaves it
    all-``False`` again (every flagged node sits at a lower position
    and is therefore visited).  Returns an undo log of ``(index, old
    value)`` pairs so a rejected tentative increment can be rolled
    back.
    """
    undo: List[Tuple[int, float]] = []
    dirty[start] = True
    for pos in range(topo_pos[start], -1, -1):
        v = topo_order[pos]
        if not dirty[v]:
            continue
        dirty[v] = False
        best = 0.0
        for s in succ_of[v]:
            w = bl[s]
            if w > best:
                best = w
        new = durations[v] + best
        old = bl[v]
        if new == old:
            continue
        undo.append((v, old))
        bl[v] = new
        for p in pred_of[v]:
            dirty[p] = True
    return undo


def run_fused_loop(
    state: "AllocationState",
    constraint: "ConstraintCheck",
    stats: "IterationStats",
    use_balance_stop: bool,
    max_iterations: int,
    efficiency_threshold: float,
    effective_ref_size: float,
) -> None:
    """Run the fused allocation iteration, mutating *state* and *stats*.

    Drop-in replacement for the loop body of
    :func:`repro.allocation.iterative.run_iterative_allocation` when the
    constraint is one of the built-in checks; produces bit-identical
    allocations and iteration diagnostics (see the module docstring for
    the argument).
    """
    from repro.allocation.iterative import AreaConstraint, LevelConstraint

    arrays = state.arrays
    task_ids = arrays.task_ids_tuple
    synthetic = arrays.synthetic_tuple
    succ_of = arrays.succ_tuples
    pred_of = arrays.pred_tuples
    n = arrays.n_tasks
    topo_order = arrays.topo.tolist()
    topo_pos = [0] * n
    for pos, v in enumerate(topo_order):
        topo_pos[v] = pos
    dirty = [False] * n

    durations = state.durations  # live views: kept in sync by the
    areas = state.areas  # inline increment / revert below
    procs = state.procs
    cap = state.cap
    durations_np = state._durations_np
    frozen: set = set()
    efficiency_guard = efficiency_threshold - 1e-12
    use_efficiency_guard = efficiency_threshold > 0.0
    bl = state.bottom_levels()

    # constraint dispatch hoisted out of the loop: 0 = none, 1 = area
    # (SCRAP average power), 2 = level (SCRAP-MAX per-level power)
    speed_gflops = state.reference.speed_gflops
    check_kind = 0
    area_limit = level_limit = 0.0
    members_of: List[Tuple[int, ...]] = []
    if type(constraint) is AreaConstraint:
        check_kind = 1
        area_limit = constraint.beta * constraint.platform_power_gflops + 1e-12
    elif type(constraint) is LevelConstraint:
        check_kind = 2
        level_limit = constraint.beta * constraint.platform_power_gflops + 1e-12
        level_tuples = arrays.level_tuples
        levels_tuple = arrays.levels_tuple
        members_of = [level_tuples[levels_tuple[i]] for i in range(n)]
    stop_on_violation = constraint.stop_on_violation

    # lazily materialised Python rows of the precomputed tables, fetched
    # through the state so its own caches stay shared
    gain_rows: List[Optional[List[float]]] = [None] * n
    dur_rows: List[Optional[List[float]]] = [None] * n
    area_rows: List[Optional[List[float]]] = [None] * n
    eff_rows: List[Optional[List[float]]] = [None] * n

    # After a freeze the state is restored bit-for-bit, so the bottom
    # levels, balance test and critical path of the next iteration are
    # the floats already in hand -- only the candidate filter changes.
    path_valid = False
    path: List[int] = []
    while stats.iterations < max_iterations:
        stats.iterations += 1
        if not path_valid:
            t_cp = max(bl)
            if t_cp <= 0.0:
                # graph of only synthetic tasks: nothing to allocate
                break
            if use_balance_stop:
                if t_cp <= sum(areas) / effective_ref_size:
                    stats.stopped_by_balance = True
                    break
            path = arrays.critical_path_py(bl)
            path_valid = True

        # fused candidate filter + (gain, -task_id) argmax over the
        # critical path; only a strictly greater key replaces the
        # incumbent, like the reference's first-maximal ``max``
        best = -1
        best_gain = 0.0
        best_tid = 0
        for i in path:
            if synthetic[i] or i in frozen:
                continue
            p = procs[i]
            if p >= cap:
                continue
            if use_efficiency_guard:
                eff = eff_rows[i]
                if eff is None:
                    eff = eff_rows[i] = state.efficiency_row(i)
                if eff[p] < efficiency_guard:
                    continue
            row = gain_rows[i]
            if row is None:
                row = gain_rows[i] = state.gain_row(i)
            g = row[p - 1]
            tid = task_ids[i]
            if best < 0 or g > best_gain or (g == best_gain and tid < best_tid):
                best, best_gain, best_tid = i, g, tid
        if best < 0:
            stats.stopped_by_saturation = True
            break

        # inline state.increment(best); bounds always hold (p < cap)
        p1 = procs[best] + 1
        procs[best] = p1
        drow = dur_rows[best]
        if drow is None:
            drow = dur_rows[best] = state.duration_row(best)
        arow = area_rows[best]
        if arow is None:
            arow = area_rows[best] = state.area_row(best)
        d = drow[p1 - 1]
        durations[best] = d
        areas[best] = arow[p1 - 1]
        if durations_np is not None:
            durations_np[best] = d

        undo = _propagate(
            best, bl, durations, succ_of, pred_of, topo_order, topo_pos, dirty
        )

        if check_kind == 2:
            violated = (
                sum(
                    0.0 if synthetic[i] else procs[i] * speed_gflops
                    for i in members_of[best]
                )
                > level_limit
            )
        elif check_kind == 1:
            # operation order of AllocationState.average_power, with the
            # critical path length read off the maintained bottom levels
            cp = max(bl)
            violated = cp > 0.0 and sum(areas) * speed_gflops / cp > area_limit
        else:
            violated = False

        if violated:
            # inline state.decrement(best) + bottom-level rollback
            procs[best] = p1 - 1
            d = drow[p1 - 2]
            durations[best] = d
            areas[best] = arow[p1 - 2]
            if durations_np is not None:
                durations_np[best] = d
            for index, old in undo:
                bl[index] = old
            if stop_on_violation:
                stats.stopped_by_constraint = True
                break
            frozen.add(best)
            stats.frozen_tasks += 1
            continue
        stats.increments += 1
        path_valid = False
