"""CPA: Critical Path and Area-based allocation (Radulescu & van Gemund).

CPA is the classical allocation procedure for mixed-parallel applications
on a *homogeneous* cluster: starting from one processor per task, it gives
one more processor to the critical-path task with the largest benefit
until the critical path length no longer exceeds the average area
``T_A = (1/P) * sum_v T(v, n_v) * n_v``.

It is provided here as the homogeneous baseline the HCPA / SCRAP
procedures build upon and is restricted to single-cluster platforms (use
:class:`~repro.allocation.hcpa.HCPAAllocator` for multi-cluster
platforms).
"""

from __future__ import annotations

from repro.allocation.base import Allocation, AllocationProcedure
from repro.allocation.iterative import NoConstraint, run_iterative_allocation
from repro.allocation.reference import ReferenceCluster
from repro.dag.graph import PTG
from repro.exceptions import AllocationError
from repro.platform.multicluster import MultiClusterPlatform


class CPAAllocator(AllocationProcedure):
    """The CPA allocation procedure for homogeneous single-cluster platforms."""

    name = "CPA"

    def __init__(self, efficiency_threshold: float = 0.0, fast: bool = True) -> None:
        """The canonical CPA has no over-allocation guard (threshold 0).

        *fast* selects the fused iteration loop of
        :mod:`repro.allocation.fastloop` (bit-identical results either
        way; ``False`` is the benchmark / golden-test baseline).
        """
        self.efficiency_threshold = efficiency_threshold
        self.fast = fast

    def allocate(
        self, ptg: PTG, platform: MultiClusterPlatform, beta: float = 1.0
    ) -> Allocation:
        """Allocate *ptg* on the single cluster of *platform*.

        ``beta`` scales the processor count the balance criterion refers
        to, which allows CPA to be used as a (homogeneous) constrained
        allocator in ablation studies; the canonical CPA is ``beta = 1``.
        """
        if len(platform) != 1:
            raise AllocationError(
                f"CPA only supports single-cluster platforms; platform "
                f"{platform.name!r} has {len(platform)} clusters "
                "(use HCPAAllocator instead)"
            )
        reference = ReferenceCluster.of(platform)
        allocation, _ = run_iterative_allocation(
            ptg,
            platform,
            reference,
            beta=beta,
            constraint=NoConstraint(),
            use_balance_stop=True,
            efficiency_threshold=self.efficiency_threshold,
            fast=self.fast,
        )
        return allocation
