"""Allocation data structure and procedure interface.

An :class:`Allocation` records, for one PTG, how many *reference cluster*
processors each task should use.  It also provides the derived quantities
needed by the constrained allocation procedures (task execution time on
the reference cluster, per-task and per-level power usage, total area) and
by the mapping step (translation to concrete clusters).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from repro.allocation.reference import ReferenceCluster
from repro.dag.graph import PTG
from repro.dag.task import Task
from repro.exceptions import AllocationError
from repro.platform.cluster import Cluster
from repro.platform.multicluster import MultiClusterPlatform
from repro.utils.validation import check_fraction


class Allocation:
    """Processor allocation of one PTG on the reference cluster.

    Parameters
    ----------
    ptg:
        The graph the allocation refers to.
    reference:
        The reference cluster the allocation is expressed against.
    beta:
        The resource constraint the allocation was built under (in
        ``(0, 1]``); purely informational once the allocation exists.

    Notes
    -----
    Synthetic (zero-cost) tasks always keep an allocation of one processor
    and contribute nothing to areas or power sums.
    """

    def __init__(
        self, ptg: PTG, reference: ReferenceCluster, beta: float = 1.0
    ) -> None:
        check_fraction("beta", beta)
        self.ptg = ptg
        self.reference = reference
        self.beta = float(beta)
        self._procs: Dict[int, int] = {t.task_id: 1 for t in ptg.tasks()}

    # ------------------------------------------------------------------ #
    # basic access
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[int]:
        return iter(self._procs)

    def __len__(self) -> int:
        return len(self._procs)

    def processors(self, task_id: int) -> int:
        """Reference processors allocated to *task_id*."""
        try:
            return self._procs[task_id]
        except KeyError:
            raise AllocationError(
                f"task {task_id} is not part of the allocation for PTG {self.ptg.name!r}"
            ) from None

    def set_processors(self, task_id: int, processors: int) -> None:
        """Set the reference allocation of *task_id* to *processors*."""
        if task_id not in self._procs:
            raise AllocationError(
                f"task {task_id} is not part of the allocation for PTG {self.ptg.name!r}"
            )
        if not isinstance(processors, int) or processors < 1:
            raise AllocationError(
                f"allocation must be a positive integer, got {processors!r}"
            )
        if processors > self.reference.size:
            raise AllocationError(
                f"allocation of {processors} exceeds the reference cluster size "
                f"({self.reference.size})"
            )
        self._procs[task_id] = processors

    def increment(self, task_id: int) -> None:
        """Give one more reference processor to *task_id*."""
        self.set_processors(task_id, self.processors(task_id) + 1)

    def as_dict(self) -> Dict[int, int]:
        """A copy of the task-id -> processors mapping."""
        return dict(self._procs)

    # ------------------------------------------------------------------ #
    # reference-cluster timing
    # ------------------------------------------------------------------ #
    def task_time(self, task: Task) -> float:
        """Execution time of *task* on its current reference allocation."""
        return self.reference.execution_time(task, self.processors(task.task_id))

    def task_area(self, task: Task) -> float:
        """Area (processors x time) of *task* on the reference cluster."""
        if task.is_synthetic:
            return 0.0
        return self.reference.area(task, self.processors(task.task_id))

    def task_power(self, task: Task) -> float:
        """Processing power used by *task* (GFlop/s); zero for synthetic tasks."""
        if task.is_synthetic:
            return 0.0
        return self.reference.power_used(self.processors(task.task_id))

    def total_area(self) -> float:
        """Sum of the task areas (reference processor-seconds)."""
        return sum(self.task_area(t) for t in self.ptg.tasks())

    def total_work_power_seconds(self) -> float:
        """Sum of task areas expressed in (GFlop/s) x seconds.

        This is the quantity the SCRAP constraint compares (after division
        by the critical path length) to ``beta`` times the total platform
        power.
        """
        return self.total_area() * self.reference.speed_gflops

    def critical_path_length(self) -> float:
        """Critical path length of the PTG under the current allocation."""
        return self.ptg.critical_path_length(self.task_time)

    def critical_path(self) -> list:
        """Task ids of the critical path under the current allocation."""
        return self.ptg.critical_path(self.task_time)

    def level_power(self, level: int) -> float:
        """Aggregate power allocated to the tasks of precedence *level*."""
        by_level = self.ptg.tasks_by_level()
        if level not in by_level:
            raise AllocationError(
                f"PTG {self.ptg.name!r} has no precedence level {level}"
            )
        return sum(self.task_power(self.ptg.task(tid)) for tid in by_level[level])

    def level_powers(self) -> Dict[int, float]:
        """Aggregate allocated power of every precedence level."""
        return {
            level: sum(self.task_power(self.ptg.task(tid)) for tid in tids)
            for level, tids in self.ptg.tasks_by_level().items()
        }

    def average_power(self) -> float:
        """Average power usage over the critical path (GFlop/s).

        Defined as total area (in power x seconds) divided by the critical
        path length; this is the quantity SCRAP bounds by ``beta * P``.
        """
        cp = self.critical_path_length()
        if cp <= 0.0:
            return 0.0
        return self.total_work_power_seconds() / cp

    # ------------------------------------------------------------------ #
    # translation to the real platform
    # ------------------------------------------------------------------ #
    def cluster_processors(self, task: Task, cluster: Cluster) -> int:
        """Processor count for *task* when mapped on *cluster*."""
        if task.is_synthetic:
            return 1
        return self.reference.translate(self.processors(task.task_id), cluster)

    def cluster_time(self, task: Task, cluster: Cluster, processors: Optional[int] = None) -> float:
        """Execution time of *task* on *cluster* with *processors* (or the translated count)."""
        procs = processors if processors is not None else self.cluster_processors(task, cluster)
        return task.execution_time(procs, cluster.speed_flops)

    def copy(self) -> "Allocation":
        """An independent copy of the per-task processor counts.

        The processor mapping is copied, so mutating the clone (e.g.
        :meth:`set_processors`) never affects the original.  The ``ptg``
        and ``reference`` attributes are **shared**, not copied: the graph
        is treated as immutable once allocated and the reference cluster
        is a frozen dataclass, so sharing them is both safe and what the
        ablation/campaign code relies on (allocations of the same PTG
        compare by identity of their graph).
        """
        clone = Allocation(self.ptg, self.reference, self.beta)
        clone._procs = dict(self._procs)
        return clone

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Allocation({self.ptg.name}, beta={self.beta:.3f}, "
            f"procs={sorted(self._procs.items())})"
        )


class AllocationProcedure(abc.ABC):
    """Interface of the allocation procedures.

    An allocation procedure turns (PTG, platform, beta) into an
    :class:`Allocation`.  ``beta`` is the resource constraint: the
    fraction of the platform's aggregate processing power the resulting
    schedule is allowed to use (1.0 means the whole platform).
    """

    #: Human readable procedure name (used in reports and ablations).
    name: str = "abstract"

    @abc.abstractmethod
    def allocate(
        self, ptg: PTG, platform: MultiClusterPlatform, beta: float = 1.0
    ) -> Allocation:
        """Compute the allocation of *ptg* on *platform* under constraint *beta*."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
