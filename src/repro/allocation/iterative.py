"""Shared machinery of the CPA-family iterative allocation procedures.

CPA, HCPA, SCRAP and SCRAP-MAX all follow the same scheme:

1. start from an allocation of **one (reference) processor per task**;
2. repeatedly pick the task on the **critical path** that benefits the
   most from one extra processor (largest reduction of ``T(v,p)/p``) and
   give it that processor;
3. stop when the allocation is *balanced* -- the critical path length
   ``T_CP`` no longer exceeds the average area ``T_A`` -- or when the next
   increment would **violate the resource constraint**.

The procedures only differ in the resource-constraint check, encapsulated
by :class:`ConstraintCheck` implementations:

* no check at all (CPA / HCPA, which rely only on the balance criterion),
* a global area check (SCRAP),
* a per-precedence-level power check (SCRAP-MAX).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.allocation.base import Allocation
from repro.allocation.reference import ReferenceCluster
from repro.dag.graph import PTG
from repro.dag.task import Task
from repro.exceptions import AllocationError
from repro.platform.multicluster import MultiClusterPlatform


class ConstraintCheck(abc.ABC):
    """Resource-constraint violation test used during iterative allocation."""

    #: When True, the first violation aborts the whole procedure (SCRAP);
    #: when False, only the offending task is frozen and other critical
    #: path tasks may still grow (SCRAP-MAX).
    stop_on_violation: bool = True

    @abc.abstractmethod
    def violated(self, allocation: Allocation, task: Task) -> bool:
        """True if *allocation* (after a tentative increment of *task*) violates the constraint."""


class NoConstraint(ConstraintCheck):
    """No resource constraint (CPA / HCPA): the balance criterion alone stops the loop."""

    stop_on_violation = True

    def violated(self, allocation: Allocation, task: Task) -> bool:
        """Never violated: CPA/HCPA only stop on the time/area balance criterion."""
        return False


class AreaConstraint(ConstraintCheck):
    """SCRAP's global constraint.

    A violation is detected "if the sum of the areas of the tasks [...]
    using the current allocation divided by the time spent executing the
    critical path of the PTG exceeds beta" times the globally available
    processing power.
    """

    stop_on_violation = True

    def __init__(self, beta: float, platform_power_gflops: float) -> None:
        if not (0.0 < beta <= 1.0):
            raise AllocationError(f"beta must be in (0, 1], got {beta}")
        if platform_power_gflops <= 0:
            raise AllocationError("platform power must be positive")
        self.beta = beta
        self.platform_power_gflops = platform_power_gflops

    def violated(self, allocation: Allocation, task: Task) -> bool:
        """Paper rule: average power over the critical path exceeds ``beta * P``."""
        return allocation.average_power() > self.beta * self.platform_power_gflops + 1e-12


class LevelConstraint(ConstraintCheck):
    """SCRAP-MAX's per-precedence-level constraint.

    "The idea is to restrain the amount of resources allocated at any
    precedence level to beta": the aggregate power of the tasks of any
    level must not exceed ``beta`` times the platform power, which
    guarantees that all the ready tasks of a level can in principle run
    concurrently within the application's share.
    """

    stop_on_violation = False

    def __init__(self, beta: float, platform_power_gflops: float) -> None:
        if not (0.0 < beta <= 1.0):
            raise AllocationError(f"beta must be in (0, 1], got {beta}")
        if platform_power_gflops <= 0:
            raise AllocationError("platform power must be positive")
        self.beta = beta
        self.platform_power_gflops = platform_power_gflops

    def violated(self, allocation: Allocation, task: Task) -> bool:
        """Paper rule: the task's precedence level would exceed ``beta * P``."""
        level = allocation.ptg.precedence_level(task.task_id)
        return (
            allocation.level_power(level)
            > self.beta * self.platform_power_gflops + 1e-12
        )


@dataclass
class IterationStats:
    """Diagnostics returned next to an allocation (used by tests and ablations)."""

    iterations: int = 0
    increments: int = 0
    frozen_tasks: int = 0
    stopped_by_balance: bool = False
    stopped_by_constraint: bool = False
    stopped_by_saturation: bool = False


DEFAULT_EFFICIENCY_THRESHOLD = 0.0


def run_iterative_allocation(
    ptg: PTG,
    platform: MultiClusterPlatform,
    reference: ReferenceCluster,
    beta: float,
    constraint: ConstraintCheck,
    use_balance_stop: bool = True,
    max_iterations: Optional[int] = None,
    efficiency_threshold: float = DEFAULT_EFFICIENCY_THRESHOLD,
) -> tuple[Allocation, IterationStats]:
    """Run the CPA-style iterative allocation loop.

    Parameters
    ----------
    ptg:
        The graph to allocate; must be validated (single entry/exit).
    platform:
        The target platform (used for the per-task allocation cap and for
        the total power the constraints refer to).
    reference:
        The reference cluster abstraction of *platform*.
    beta:
        The resource constraint in ``(0, 1]``.
    constraint:
        Violation test applied after each tentative increment.
    use_balance_stop:
        Stop when ``T_CP <= T_A`` where ``T_A`` is the average area over
        ``beta * N_ref`` reference processors (the CPA balance criterion
        scaled by the constraint).
    max_iterations:
        Safety bound; defaults to ``n_tasks * max_task_allocation + 1``.
    efficiency_threshold:
        A task may only receive one more processor while its parallel
        efficiency stays at or above this value.  This is the
        over-allocation remedy applied to HCPA in the authors' earlier
        comparison paper (ref. [11] of the reproduced paper): without it
        the CPA benefit criterion keeps feeding critical-path tasks far
        past the point of diminishing returns, which starves task
        parallelism and hurts dedicated-platform (``beta = 1``) schedules.
        Set to 0 to disable the guard.

    Returns
    -------
    (Allocation, IterationStats)
    """
    if not (0.0 < beta <= 1.0):
        raise AllocationError(f"beta must be in (0, 1], got {beta}")
    if not (0.0 <= efficiency_threshold <= 1.0):
        raise AllocationError(
            f"efficiency_threshold must be in [0, 1], got {efficiency_threshold}"
        )
    ptg.validate()
    allocation = Allocation(ptg, reference, beta)
    stats = IterationStats()
    cap = reference.max_allocation(platform)
    effective_ref_size = max(1.0, beta * reference.size)
    frozen: Set[int] = set()
    if max_iterations is None:
        max_iterations = ptg.n_tasks * cap + 1

    def _may_grow(tid: int) -> bool:
        task = ptg.task(tid)
        if task.is_synthetic:
            return False
        if allocation.processors(tid) >= cap:
            return False
        if efficiency_threshold > 0.0:
            model = task.model
            if model is not None and model.efficiency(
                allocation.processors(tid) + 1
            ) < efficiency_threshold - 1e-12:
                return False
        return True

    while stats.iterations < max_iterations:
        stats.iterations += 1
        t_cp = allocation.critical_path_length()
        if t_cp <= 0.0:
            # graph of only synthetic tasks: nothing to allocate
            break
        if use_balance_stop:
            t_a = allocation.total_area() / effective_ref_size
            if t_cp <= t_a:
                stats.stopped_by_balance = True
                break
        path = allocation.critical_path()
        candidates = [
            tid for tid in path if tid not in frozen and _may_grow(tid)
        ]
        if not candidates:
            stats.stopped_by_saturation = True
            break
        best = max(
            candidates,
            key=lambda tid: (
                reference.marginal_gain(ptg.task(tid), allocation.processors(tid)),
                -tid,
            ),
        )
        current = allocation.processors(best)
        allocation.set_processors(best, current + 1)
        if constraint.violated(allocation, ptg.task(best)):
            allocation.set_processors(best, current)
            if constraint.stop_on_violation:
                stats.stopped_by_constraint = True
                break
            frozen.add(best)
            stats.frozen_tasks += 1
            continue
        stats.increments += 1

    return allocation, stats
