"""Shared machinery of the CPA-family iterative allocation procedures.

CPA, HCPA, SCRAP and SCRAP-MAX all follow the same scheme:

1. start from an allocation of **one (reference) processor per task**;
2. repeatedly pick the task on the **critical path** that benefits the
   most from one extra processor (largest reduction of ``T(v,p)/p``) and
   give it that processor;
3. stop when the allocation is *balanced* -- the critical path length
   ``T_CP`` no longer exceeds the average area ``T_A`` -- or when the next
   increment would **violate the resource constraint**.

The procedures only differ in the resource-constraint check, encapsulated
by :class:`ConstraintCheck` implementations:

* no check at all (CPA / HCPA, which rely only on the balance criterion),
* a global area check (SCRAP),
* a per-precedence-level power check (SCRAP-MAX).

Performance
-----------
:func:`run_iterative_allocation` is the allocation hot path: it runs up
to ``n_tasks * cap`` iterations, each of which needs the critical path
under the current allocation, the total area, the per-candidate marginal
gains and (for SCRAP / SCRAP-MAX) a constraint re-evaluation after the
tentative increment.  The loop therefore works on an
:class:`~repro.allocation.state.AllocationState`: durations, areas,
marginal gains and the efficiency guard are precomputed table lookups,
the critical-path DP is a vectorized pass over the shared
:class:`~repro.dag.arrays.DagArrays` topology, the resource sums are
incremental, and the best candidate is selected with a vectorized argmax
that preserves the exact ``(gain, -task_id)`` tie-break.  The produced
allocations and :class:`IterationStats` are **bit-identical** to the
pre-refactor formulation kept in :mod:`repro.allocation._reference`
(asserted by ``tests/test_allocation_golden.py``).  Custom
:class:`ConstraintCheck` subclasses keep working: they are evaluated
against a mirrored dict-based :class:`~repro.allocation.base.Allocation`,
only the built-in checks take the array fast path.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Optional

from repro.allocation.base import Allocation
from repro.allocation.reference import ReferenceCluster
from repro.dag.graph import PTG
from repro.dag.task import Task
from repro.exceptions import AllocationError
from repro.obs import meters, trace
from repro.platform.multicluster import MultiClusterPlatform


class ConstraintCheck(abc.ABC):
    """Resource-constraint violation test used during iterative allocation."""

    #: When True, the first violation aborts the whole procedure (SCRAP);
    #: when False, only the offending task is frozen and other critical
    #: path tasks may still grow (SCRAP-MAX).
    stop_on_violation: bool = True

    @abc.abstractmethod
    def violated(self, allocation: Allocation, task: Task) -> bool:
        """True if *allocation* (after a tentative increment of *task*) violates the constraint."""


class NoConstraint(ConstraintCheck):
    """No resource constraint (CPA / HCPA): the balance criterion alone stops the loop."""

    stop_on_violation = True

    def violated(self, allocation: Allocation, task: Task) -> bool:
        """Never violated: CPA/HCPA only stop on the time/area balance criterion."""
        return False


class AreaConstraint(ConstraintCheck):
    """SCRAP's global constraint.

    A violation is detected "if the sum of the areas of the tasks [...]
    using the current allocation divided by the time spent executing the
    critical path of the PTG exceeds beta" times the globally available
    processing power.
    """

    stop_on_violation = True

    def __init__(self, beta: float, platform_power_gflops: float) -> None:
        if not (0.0 < beta <= 1.0):
            raise AllocationError(f"beta must be in (0, 1], got {beta}")
        if platform_power_gflops <= 0:
            raise AllocationError("platform power must be positive")
        self.beta = beta
        self.platform_power_gflops = platform_power_gflops

    def violated(self, allocation: Allocation, task: Task) -> bool:
        """Paper rule: average power over the critical path exceeds ``beta * P``."""
        return allocation.average_power() > self.beta * self.platform_power_gflops + 1e-12


class LevelConstraint(ConstraintCheck):
    """SCRAP-MAX's per-precedence-level constraint.

    "The idea is to restrain the amount of resources allocated at any
    precedence level to beta": the aggregate power of the tasks of any
    level must not exceed ``beta`` times the platform power, which
    guarantees that all the ready tasks of a level can in principle run
    concurrently within the application's share.
    """

    stop_on_violation = False

    def __init__(self, beta: float, platform_power_gflops: float) -> None:
        if not (0.0 < beta <= 1.0):
            raise AllocationError(f"beta must be in (0, 1], got {beta}")
        if platform_power_gflops <= 0:
            raise AllocationError("platform power must be positive")
        self.beta = beta
        self.platform_power_gflops = platform_power_gflops

    def violated(self, allocation: Allocation, task: Task) -> bool:
        """Paper rule: the task's precedence level would exceed ``beta * P``."""
        level = allocation.ptg.precedence_level(task.task_id)
        return (
            allocation.level_power(level)
            > self.beta * self.platform_power_gflops + 1e-12
        )


@dataclass
class IterationStats:
    """Diagnostics returned next to an allocation (used by tests and ablations)."""

    iterations: int = 0
    increments: int = 0
    frozen_tasks: int = 0
    stopped_by_balance: bool = False
    stopped_by_constraint: bool = False
    stopped_by_saturation: bool = False


DEFAULT_EFFICIENCY_THRESHOLD = 0.0


def _fast_violation_check(
    constraint: ConstraintCheck, state
) -> Optional[Callable[[int], bool]]:
    """Array-native violation test for the built-in constraint checks.

    Returns ``None`` for custom :class:`ConstraintCheck` subclasses (the
    loop then mirrors the allocation into a dict-based
    :class:`~repro.allocation.base.Allocation` and calls
    :meth:`ConstraintCheck.violated` on it, preserving semantics).  The
    ``beta * P + 1e-12`` limits are precomputed with the same operation
    order as the reference checks.
    """
    if type(constraint) is NoConstraint:
        return lambda index: False
    if type(constraint) is AreaConstraint:
        area_limit = constraint.beta * constraint.platform_power_gflops + 1e-12
        return lambda index: state.average_power() > area_limit
    if type(constraint) is LevelConstraint:
        level_limit = constraint.beta * constraint.platform_power_gflops + 1e-12
        levels = state.arrays.levels
        return lambda index: state.level_power(int(levels[index])) > level_limit
    return None


def run_iterative_allocation(
    ptg: PTG,
    platform: MultiClusterPlatform,
    reference: ReferenceCluster,
    beta: float,
    constraint: ConstraintCheck,
    use_balance_stop: bool = True,
    max_iterations: Optional[int] = None,
    efficiency_threshold: float = DEFAULT_EFFICIENCY_THRESHOLD,
    fast: bool = True,
) -> tuple[Allocation, IterationStats]:
    """Run the CPA-style iterative allocation loop.

    Parameters
    ----------
    ptg:
        The graph to allocate; must be validated (single entry/exit).
    platform:
        The target platform (used for the per-task allocation cap and for
        the total power the constraints refer to).
    reference:
        The reference cluster abstraction of *platform*.
    beta:
        The resource constraint in ``(0, 1]``.
    constraint:
        Violation test applied after each tentative increment.
    use_balance_stop:
        Stop when ``T_CP <= T_A`` where ``T_A`` is the average area over
        ``beta * N_ref`` reference processors (the CPA balance criterion
        scaled by the constraint).
    max_iterations:
        Safety bound; defaults to ``n_tasks * max_task_allocation + 1``.
    efficiency_threshold:
        A task may only receive one more processor while its parallel
        efficiency stays at or above this value.  This is the
        over-allocation remedy applied to HCPA in the authors' earlier
        comparison paper (ref. [11] of the reproduced paper): without it
        the CPA benefit criterion keeps feeding critical-path tasks far
        past the point of diminishing returns, which starves task
        parallelism and hurts dedicated-platform (``beta = 1``) schedules.
        Set to 0 to disable the guard.
    fast:
        Use the fused loop of :mod:`repro.allocation.fastloop`
        (incremental bottom levels, freeze-skip) when the constraint is
        one of the built-in checks.  Bit-identical either way; ``False``
        forces the straightforward per-iteration recomputation, which
        the golden tests and benchmarks use as the comparison baseline.
        Custom :class:`ConstraintCheck` subclasses always take the
        mirrored dict-based path regardless of this flag.

    Returns
    -------
    (Allocation, IterationStats)
    """
    from repro.allocation.state import AllocationState

    if not (0.0 < beta <= 1.0):
        raise AllocationError(f"beta must be in (0, 1], got {beta}")
    if not (0.0 <= efficiency_threshold <= 1.0):
        raise AllocationError(
            f"efficiency_threshold must be in [0, 1], got {efficiency_threshold}"
        )
    ptg.validate()
    stats = IterationStats()
    cap = reference.max_allocation(platform)
    effective_ref_size = max(1.0, beta * reference.size)
    if max_iterations is None:
        max_iterations = ptg.n_tasks * cap + 1

    state = AllocationState(ptg, reference, cap=cap, beta=beta)
    violated_fast = _fast_violation_check(constraint, state)
    mirror: Optional[Allocation] = None
    if violated_fast is None:
        # custom ConstraintCheck subclass: keep a dict-based Allocation in
        # sync and evaluate the check against it, like the reference loop
        mirror = Allocation(ptg, reference, beta)

    # The span is coarse (one per allocate call) and the counters are
    # derived from IterationStats after the loop, so telemetry adds no
    # per-iteration work -- disabled or enabled.
    with trace.span("allocation.iterate", ptg=ptg.name) as obs_span:
        if fast and mirror is None:
            from repro.allocation.fastloop import run_fused_loop

            run_fused_loop(
                state,
                constraint,
                stats,
                use_balance_stop=use_balance_stop,
                max_iterations=max_iterations,
                efficiency_threshold=efficiency_threshold,
                effective_ref_size=effective_ref_size,
            )
        else:
            _run_reference_loop(
                state,
                constraint,
                stats,
                mirror,
                violated_fast,
                use_balance_stop=use_balance_stop,
                max_iterations=max_iterations,
                efficiency_threshold=efficiency_threshold,
                effective_ref_size=effective_ref_size,
            )

        registry = meters.active()
        if registry is not None:
            obs_span.annotate(
                iterations=stats.iterations, increments=stats.increments
            )
            registry.counter("allocation.calls").inc()
            registry.counter("allocation.iterations").inc(stats.iterations)
            registry.counter("allocation.increments").inc(stats.increments)
            registry.counter("allocation.frozen_tasks").inc(stats.frozen_tasks)
            if stats.stopped_by_constraint:
                registry.counter("allocation.stopped_by_constraint").inc()

    return state.as_allocation(), stats


def _run_reference_loop(
    state,
    constraint: ConstraintCheck,
    stats: IterationStats,
    mirror: Optional[Allocation],
    violated_fast: Optional[Callable[[int], bool]],
    use_balance_stop: bool,
    max_iterations: int,
    efficiency_threshold: float,
    effective_ref_size: float,
) -> None:
    """The straightforward per-iteration loop (``fast=False`` / mirrored).

    Recomputes the bottom levels, balance test and critical path from
    scratch every iteration; kept as the baseline the fused loop is
    asserted bit-identical against, and as the only path able to drive a
    custom :class:`ConstraintCheck` through its dict-based *mirror*.
    """
    arrays = state.arrays
    ptg = state.ptg
    task_ids = arrays.task_ids_tuple
    synthetic = arrays.synthetic_tuple
    procs = state.procs  # Python list, mutated in place by the state
    frozen: set = set()
    efficiency_guard = efficiency_threshold - 1e-12
    use_efficiency_guard = efficiency_threshold > 0.0

    def _may_grow(index: int) -> bool:
        if synthetic[index] or index in frozen or procs[index] >= state.cap:
            return False
        if use_efficiency_guard:
            # efficiency at procs + 1 is column `procs` of the table; a
            # task may only grow while it stays above threshold - 1e-12
            if state.efficiency_row(index)[procs[index]] < efficiency_guard:
                return False
        return True

    def _benefit(index: int):
        # reference selection key: max (marginal gain, -task id)
        return (state.gain_row(index)[procs[index] - 1], -task_ids[index])

    while stats.iterations < max_iterations:
        stats.iterations += 1
        bl = state.bottom_levels()
        t_cp = max(bl)
        if t_cp <= 0.0:
            # graph of only synthetic tasks: nothing to allocate
            break
        if use_balance_stop:
            t_a = state.total_area() / effective_ref_size
            if t_cp <= t_a:
                stats.stopped_by_balance = True
                break
        path = state.critical_path(bl)
        candidates = [index for index in path if _may_grow(index)]
        if not candidates:
            stats.stopped_by_saturation = True
            break
        best = max(candidates, key=_benefit)
        state.increment(best)
        if mirror is not None:
            mirror.set_processors(task_ids[best], procs[best])
            violated = constraint.violated(mirror, ptg.task(task_ids[best]))
        else:
            violated = violated_fast(best)
        if violated:
            state.decrement(best)
            if mirror is not None:
                mirror.set_processors(task_ids[best], procs[best])
            if constraint.stop_on_violation:
                stats.stopped_by_constraint = True
                break
            frozen.add(best)
            stats.frozen_tasks += 1
            continue
        stats.increments += 1
