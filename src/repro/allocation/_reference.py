"""Pre-refactor reference implementation of the allocation hot loop.

The array-compiled allocation core
(:class:`repro.allocation.state.AllocationState` driving
:func:`repro.allocation.iterative.run_iterative_allocation`) must produce
**bit-identical** :class:`~repro.allocation.base.Allocation` contents and
:class:`~repro.allocation.iterative.IterationStats` for CPA, HCPA, SCRAP
and SCRAP-MAX.  This module keeps the straightforward formulation it
replaced alive, verbatim: a Python loop that re-runs the dict-based
critical-path DP and the generator-based area sum of
:class:`~repro.allocation.base.Allocation` at every iteration, and pays
the full :meth:`~repro.allocation.base.Allocation.average_power` /
:meth:`~repro.allocation.base.Allocation.level_power` recomputation after
every tentative increment.

It exists only for the golden equivalence suite
(``tests/test_allocation_golden.py``) and the old-vs-new benchmarks
(``benchmarks/bench_allocation_core.py``,
``benchmarks/bench_pipeline_core.py``); production code must call
:func:`repro.allocation.iterative.run_iterative_allocation`.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from repro.allocation.base import Allocation
from repro.allocation.iterative import (
    DEFAULT_EFFICIENCY_THRESHOLD,
    ConstraintCheck,
    IterationStats,
)
from repro.allocation.reference import ReferenceCluster
from repro.dag.graph import PTG
from repro.exceptions import AllocationError
from repro.platform.multicluster import MultiClusterPlatform


def run_reference_allocation(
    ptg: PTG,
    platform: MultiClusterPlatform,
    reference: ReferenceCluster,
    beta: float,
    constraint: ConstraintCheck,
    use_balance_stop: bool = True,
    max_iterations: Optional[int] = None,
    efficiency_threshold: float = DEFAULT_EFFICIENCY_THRESHOLD,
) -> Tuple[Allocation, IterationStats]:
    """The original CPA-style iterative allocation loop, kept verbatim.

    Same signature and semantics as
    :func:`repro.allocation.iterative.run_iterative_allocation`; every
    per-iteration quantity is recomputed through the dict-based
    :class:`~repro.allocation.base.Allocation` helpers, which is what made
    the loop the dominant cost of allocation-heavy campaigns.
    """
    if not (0.0 < beta <= 1.0):
        raise AllocationError(f"beta must be in (0, 1], got {beta}")
    if not (0.0 <= efficiency_threshold <= 1.0):
        raise AllocationError(
            f"efficiency_threshold must be in [0, 1], got {efficiency_threshold}"
        )
    ptg.validate()
    allocation = Allocation(ptg, reference, beta)
    stats = IterationStats()
    cap = reference.max_allocation(platform)
    effective_ref_size = max(1.0, beta * reference.size)
    frozen: Set[int] = set()
    if max_iterations is None:
        max_iterations = ptg.n_tasks * cap + 1

    def _may_grow(tid: int) -> bool:
        task = ptg.task(tid)
        if task.is_synthetic:
            return False
        if allocation.processors(tid) >= cap:
            return False
        if efficiency_threshold > 0.0:
            model = task.model
            if model is not None and model.efficiency(
                allocation.processors(tid) + 1
            ) < efficiency_threshold - 1e-12:
                return False
        return True

    while stats.iterations < max_iterations:
        stats.iterations += 1
        t_cp = allocation.critical_path_length()
        if t_cp <= 0.0:
            # graph of only synthetic tasks: nothing to allocate
            break
        if use_balance_stop:
            t_a = allocation.total_area() / effective_ref_size
            if t_cp <= t_a:
                stats.stopped_by_balance = True
                break
        path = allocation.critical_path()
        candidates = [
            tid for tid in path if tid not in frozen and _may_grow(tid)
        ]
        if not candidates:
            stats.stopped_by_saturation = True
            break
        best = max(
            candidates,
            key=lambda tid: (
                reference.marginal_gain(ptg.task(tid), allocation.processors(tid)),
                -tid,
            ),
        )
        current = allocation.processors(best)
        allocation.set_processors(best, current + 1)
        if constraint.violated(allocation, ptg.task(best)):
            allocation.set_processors(best, current)
            if constraint.stop_on_violation:
                stats.stopped_by_constraint = True
                break
            frozen.add(best)
            stats.frozen_tasks += 1
            continue
        stats.increments += 1

    return allocation, stats
