"""Pre-refactor online scheduler, preserved verbatim as the golden baseline.

:class:`ReferenceOnlineScheduler` is the :class:`OnlineConcurrentScheduler`
as it stood before the ``repro.streaming`` rework: a batch replay of a
fixed arrival list that, after admitting each application, re-derives its
completion time with a full scan of the schedule built so far
(``Schedule.makespan`` iterates every placed entry of every earlier
application), which makes long streams quadratic in the number of
submissions.

It is kept for two purposes:

* ``tests/test_scheduler_online_golden.py`` asserts that the event-driven
  :class:`repro.streaming.engine.StreamSession` produces **bit-identical**
  schedules, betas, active sets and completion times on fixed arrival
  lists -- the rework is a pure performance refactor;
* ``benchmarks/bench_streaming.py`` uses it as the "naive replay"
  baseline: the only way to follow a growing arrival stream with this
  implementation is to re-replay the whole prefix after every batch.

Do not "fix" or optimise this module: its value is to stay exactly what
the optimized code must reproduce.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from repro.allocation.base import AllocationProcedure
from repro.allocation.scrap import ScrapMaxAllocator
from repro.constraints.base import ConstraintStrategy
from repro.constraints.strategies import EqualShareStrategy
from repro.dag.graph import PTG
from repro.exceptions import ConfigurationError
from repro.mapping.base import AllocatedPTG
from repro.mapping.eft import PlacementEngine
from repro.mapping.schedule import Schedule
from repro.platform.multicluster import MultiClusterPlatform
from repro.scheduler.online import Arrival, OnlineScheduleResult


class ReferenceOnlineScheduler:
    """First-come-first-served scheduler for staggered submissions.

    Verbatim copy of the pre-``repro.streaming`` implementation of
    :class:`~repro.scheduler.online.OnlineConcurrentScheduler` (see the
    module docstring for why it is preserved).
    """

    def __init__(
        self,
        strategy: Optional[ConstraintStrategy] = None,
        allocator: Optional[AllocationProcedure] = None,
        enable_packing: bool = True,
    ) -> None:
        """Same defaults as the optimized scheduler (ES + SCRAP-MAX + packing)."""
        self.strategy = strategy or EqualShareStrategy()
        self.allocator = allocator or ScrapMaxAllocator()
        self.enable_packing = enable_packing

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_arrivals(arrivals: Sequence[Arrival]) -> List[Arrival]:
        if not arrivals:
            raise ConfigurationError("at least one arrival is required")
        names = [a.ptg.name for a in arrivals]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"submitted applications must have unique names, got {names}"
            )
        for arrival in arrivals:
            arrival.ptg.validate()
        return sorted(arrivals, key=lambda a: (a.time, a.ptg.name))

    def _map_application(
        self,
        engine: PlacementEngine,
        schedule: Schedule,
        allocated: AllocatedPTG,
        release_time: float,
    ) -> None:
        """Place one application's tasks (bottom-level order, FCFS)."""
        ptg = allocated.ptg
        levels = allocated.bottom_levels()
        topo_index = {tid: i for i, tid in enumerate(ptg.topological_order())}
        order = sorted(
            ptg.task_ids(), key=lambda tid: (-levels[tid], topo_index[tid])
        )
        for tid in order:
            predecessors = [
                (pred, ptg.edge_data(pred, tid)) for pred in ptg.predecessors(tid)
            ]
            engine.place(
                ptg_name=ptg.name,
                task=ptg.task(tid),
                allocation=allocated.allocation,
                predecessors=predecessors,
                schedule=schedule,
                not_before=release_time,
            )

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def schedule(
        self, arrivals: Sequence[Arrival], platform: MultiClusterPlatform
    ) -> OnlineScheduleResult:
        """Schedule all submissions in arrival order."""
        ordered = self._check_arrivals(arrivals)
        # the preserved replay stays on the full per-cluster evaluation:
        # it is the baseline the delta-EFT session is compared against
        engine = PlacementEngine(
            platform, enable_packing=self.enable_packing, delta=False
        )
        schedule = Schedule(platform.name)

        betas: Dict[str, float] = {}
        allocations: Dict[str, "object"] = {}
        active_log: Dict[str, List[str]] = {}
        completion: Dict[str, float] = {}
        # Min-heap of (completion time, name) of admitted applications,
        # lazily invalidated: arrivals are processed in non-decreasing
        # time order, so popping every entry whose completion is <= now
        # (and deleting it from the insertion-ordered ``active_apps``
        # dict) leaves exactly the applications still in the system -- no
        # rescan of all previous arrivals per admission.
        running: List[Tuple[float, str]] = []
        active_apps: Dict[str, PTG] = {}

        for arrival in ordered:
            now = arrival.time
            while running and running[0][0] <= now:
                _, expired = heapq.heappop(running)
                active_apps.pop(expired, None)
            # applications still in the system at this instant, in
            # arrival order (the order the constraint strategies see)
            active = list(active_apps.values())
            concurrent = active + [arrival.ptg]
            strategy_betas = self.strategy.compute_betas(concurrent, platform)
            beta = strategy_betas[arrival.ptg.name]
            betas[arrival.ptg.name] = beta
            active_log[arrival.ptg.name] = [p.name for p in active]

            allocation = self.allocator.allocate(arrival.ptg, platform, beta=beta)
            allocations[arrival.ptg.name] = allocation
            self._map_application(
                engine, schedule, AllocatedPTG(arrival.ptg, allocation), now
            )
            done = schedule.makespan(arrival.ptg.name)
            completion[arrival.ptg.name] = done
            heapq.heappush(running, (done, arrival.ptg.name))
            active_apps[arrival.ptg.name] = arrival.ptg

        return OnlineScheduleResult(
            platform=platform,
            arrivals=ordered,
            betas=betas,
            active_at_admission=active_log,
            allocations=allocations,
            schedule=schedule,
            strategy_name=self.strategy.name,
        )
