"""Single-application two-step scheduler (dedicated platform).

Used to compute the makespan an application achieves "when it has the
resources on its own" (``M_own`` in the slowdown definition, Eq. 3 of the
paper).  By default it uses the same building blocks as the concurrent
scheduler -- SCRAP-MAX allocation with ``beta = 1`` and the ready-list
mapper -- so that the slowdown isolates the effect of *concurrency*, not
of a different heuristic.
"""

from __future__ import annotations

from typing import Optional

from repro.allocation.base import AllocationProcedure
from repro.allocation.scrap import ScrapMaxAllocator
from repro.dag.graph import PTG
from repro.exceptions import ConfigurationError
from repro.mapping.base import AllocatedPTG, Mapper
from repro.mapping.ready_list import ReadyListMapper
from repro.platform.multicluster import MultiClusterPlatform
from repro.scheduler.result import SingleScheduleResult
from repro.utils.validation import check_fraction


class SinglePTGScheduler:
    """Schedule one PTG on a dedicated platform."""

    def __init__(
        self,
        allocator: Optional[AllocationProcedure] = None,
        mapper: Optional[Mapper] = None,
        beta: float = 1.0,
    ) -> None:
        check_fraction("beta", beta)
        self.allocator = allocator or ScrapMaxAllocator()
        self.mapper = mapper or ReadyListMapper()
        self.beta = float(beta)

    def schedule(
        self, ptg: PTG, platform: MultiClusterPlatform
    ) -> SingleScheduleResult:
        """Allocate and map *ptg* alone on *platform*."""
        if ptg is None:
            raise ConfigurationError("ptg must not be None")
        ptg.validate()
        allocation = self.allocator.allocate(ptg, platform, beta=self.beta)
        schedule = self.mapper.map([AllocatedPTG(ptg, allocation)], platform)
        return SingleScheduleResult(
            ptg=ptg, platform=platform, allocation=allocation, schedule=schedule
        )

    def makespan(self, ptg: PTG, platform: MultiClusterPlatform) -> float:
        """Convenience wrapper returning only the makespan."""
        return self.schedule(ptg, platform).makespan
