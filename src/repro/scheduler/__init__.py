"""Two-step schedulers assembling allocation, constraint and mapping.

* :class:`~repro.scheduler.single.SinglePTGScheduler` schedules one
  application on a dedicated platform.  It is used to compute the
  reference makespan ``M_own`` entering the slowdown / unfairness metrics.
* :class:`~repro.scheduler.concurrent.ConcurrentScheduler` schedules a set
  of applications submitted together: a constraint strategy assigns each
  application its resource constraint ``beta``, the SCRAP-MAX procedure
  computes constrained allocations, and the ready-list mapper places all
  applications concurrently.
* :class:`~repro.scheduler.online.OnlineConcurrentScheduler` extends the
  system to staggered submission times (the paper's future-work scenario):
  constraints are recomputed at each arrival over the applications still
  present in the system.
"""

from repro.scheduler.single import SinglePTGScheduler
from repro.scheduler.concurrent import ConcurrentScheduler
from repro.scheduler.result import ConcurrentScheduleResult, SingleScheduleResult
from repro.scheduler.online import (
    Arrival,
    OnlineConcurrentScheduler,
    OnlineScheduleResult,
    StreamResult,
)

__all__ = [
    "SinglePTGScheduler",
    "ConcurrentScheduler",
    "ConcurrentScheduleResult",
    "SingleScheduleResult",
    "Arrival",
    "OnlineConcurrentScheduler",
    "OnlineScheduleResult",
    "StreamResult",
]
