"""Concurrent multi-application scheduler.

This is the paper's complete scheduling pipeline for a set of
applications ``A`` submitted together:

1. a **constraint strategy** assigns each application a resource
   constraint ``beta_i`` (S, ES, PS-*, WPS-*),
2. the **SCRAP-MAX** procedure computes, independently for each
   application, an allocation that respects its constraint per precedence
   level,
3. the **ready-list mapper** places all applications concurrently, in
   bottom-level order restricted to the ready tasks, with allocation
   packing.

Every step is pluggable so ablations (other allocators, the global-order
mapper, packing on/off) reuse the same driver.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence

from repro.allocation.base import Allocation, AllocationProcedure
from repro.allocation.reference import ReferenceCluster
from repro.allocation.scrap import ScrapMaxAllocator
from repro.allocation.state import discard_allocation_tables, prepare_allocation_tables
from repro.constraints.base import ConstraintStrategy
from repro.constraints.strategies import EqualShareStrategy
from repro.dag.arrays import compile_arrays_batch
from repro.dag.graph import PTG
from repro.exceptions import ConfigurationError
from repro.mapping.base import AllocatedPTG, Mapper
from repro.mapping.ready_list import ReadyListMapper
from repro.obs import meters, trace
from repro.platform.multicluster import MultiClusterPlatform
from repro.scheduler.result import ConcurrentScheduleResult


class ConcurrentScheduler:
    """Two-step concurrent scheduler for multiple PTGs."""

    def __init__(
        self,
        strategy: Optional[ConstraintStrategy] = None,
        allocator: Optional[AllocationProcedure] = None,
        mapper: Optional[Mapper] = None,
    ) -> None:
        self.strategy = strategy or EqualShareStrategy()
        self.allocator = allocator or ScrapMaxAllocator()
        self.mapper = mapper or ReadyListMapper()

    def schedule(
        self, ptgs: Sequence[PTG], platform: MultiClusterPlatform
    ) -> ConcurrentScheduleResult:
        """Schedule the applications of *ptgs* concurrently on *platform*."""
        if not ptgs:
            raise ConfigurationError("at least one PTG must be submitted")
        names = [p.name for p in ptgs]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"concurrent PTGs must have unique names, got {names}"
            )
        for ptg in ptgs:
            ptg.validate()
        if len(ptgs) > 1:
            # amortize graph compilation and the Amdahl table sweeps over
            # the whole submission (bit-identical per-graph results)
            compile_arrays_batch(ptgs)
            reference = ReferenceCluster.of(platform)
            prepare_allocation_tables(
                ptgs, reference, reference.max_allocation(platform)
            )

        # per-phase timers only tick while a metrics registry is active;
        # the disabled path adds two None checks per schedule() call
        registry = meters.active()

        with trace.span(
            "scheduler.betas", strategy=self.strategy.name, apps=str(len(ptgs))
        ):
            betas: Dict[str, float] = self.strategy.compute_betas(ptgs, platform)
        missing = [name for name in names if name not in betas]
        if missing:
            raise ConfigurationError(
                f"strategy {self.strategy.name!r} did not assign a constraint to {missing}"
            )

        started = time.perf_counter() if registry is not None else 0.0
        allocations: Dict[str, Allocation] = {}
        allocated = []
        with trace.span("scheduler.allocate", apps=str(len(ptgs))):
            for ptg in ptgs:
                allocation = self.allocator.allocate(ptg, platform, beta=betas[ptg.name])
                allocations[ptg.name] = allocation
                allocated.append(AllocatedPTG(ptg, allocation))
                # the prebuilt Amdahl tables served their one allocation
                discard_allocation_tables(ptg)
        if registry is not None:
            now = time.perf_counter()
            registry.histogram("allocation.phase_seconds").observe(now - started)
            started = now

        schedule = self.mapper.map(allocated, platform)
        if registry is not None:
            registry.histogram("mapping.phase_seconds").observe(
                time.perf_counter() - started
            )
        return ConcurrentScheduleResult(
            ptgs=list(ptgs),
            platform=platform,
            betas=betas,
            allocations=allocations,
            schedule=schedule,
            strategy_name=self.strategy.name,
        )
