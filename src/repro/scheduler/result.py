"""Result objects returned by the schedulers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.allocation.base import Allocation
from repro.dag.graph import PTG
from repro.exceptions import MappingError
from repro.mapping.schedule import Schedule
from repro.platform.multicluster import MultiClusterPlatform


@dataclass
class SingleScheduleResult:
    """Schedule of one application on a dedicated platform."""

    ptg: PTG
    platform: MultiClusterPlatform
    allocation: Allocation
    schedule: Schedule

    @property
    def makespan(self) -> float:
        """Completion time of the application."""
        return self.schedule.makespan(self.ptg.name)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SingleScheduleResult({self.ptg.name} on {self.platform.name}: "
            f"{self.makespan:.1f}s)"
        )


@dataclass
class ConcurrentScheduleResult:
    """Schedule of a set of concurrently submitted applications.

    Attributes
    ----------
    ptgs:
        The applications, in submission order.
    platform:
        The target platform.
    betas:
        Resource constraint assigned to each application by the strategy.
    allocations:
        Constrained allocation computed for each application.
    schedule:
        The concurrent schedule produced by the mapper.
    strategy_name:
        Name of the constraint strategy that produced ``betas``.
    """

    ptgs: Sequence[PTG]
    platform: MultiClusterPlatform
    betas: Dict[str, float]
    allocations: Dict[str, Allocation]
    schedule: Schedule
    strategy_name: str = ""

    @property
    def application_names(self) -> List[str]:
        """Names of the applications, in submission order."""
        return [p.name for p in self.ptgs]

    @property
    def makespans(self) -> Dict[str, float]:
        """Per-application completion times (planned by the mapper)."""
        return {name: self.schedule.makespan(name) for name in self.application_names}

    @property
    def global_makespan(self) -> float:
        """Completion time of the whole batch."""
        return self.schedule.global_makespan()

    def makespan(self, ptg_name: str) -> float:
        """Completion time of one application."""
        if ptg_name not in self.betas:
            raise MappingError(f"no application named {ptg_name!r} in this result")
        return self.schedule.makespan(ptg_name)

    def beta(self, ptg_name: str) -> float:
        """Resource constraint assigned to one application."""
        try:
            return self.betas[ptg_name]
        except KeyError:
            raise MappingError(f"no application named {ptg_name!r} in this result") from None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        spans = ", ".join(f"{n}={m:.1f}s" for n, m in self.makespans.items())
        return (
            f"ConcurrentScheduleResult[{self.strategy_name}] on {self.platform.name}: "
            f"{spans}"
        )
