"""Online scheduling of applications with different submission times.

The paper's future-work section sketches the harder problem where the
concurrent applications do *not* arrive together: "this implies that the
resource constraints have to be modified on the arrival of a new
application in the system".  This module is the batch front door of that
design point: :class:`OnlineConcurrentScheduler` replays a fixed arrival
list through the event-driven
:class:`~repro.streaming.engine.StreamSession`, which

* admits applications in arrival order,
* recomputes the resource constraint of each newcomer with the chosen
  strategy over the applications still present at that instant,
* allocates it (SCRAP-MAX by default) under that constraint and maps it
  -- without disturbing existing reservations -- with earliest-finish-
  time placement and allocation packing, released no earlier than its
  submission time.

The session keeps the per-application completion bookkeeping incremental
(see :mod:`repro.streaming.engine`), so long streams no longer pay the
quadratic schedule re-scans of the original replay -- which is preserved
verbatim in :mod:`repro.scheduler._reference` and pinned bit-identical by
``tests/test_scheduler_online_golden.py``.  For live / chunked streams
and windowed metrics, use :class:`~repro.streaming.engine.StreamSession`
and :mod:`repro.streaming` directly.

:class:`Arrival` and :class:`OnlineScheduleResult` are defined in
:mod:`repro.streaming.engine` and re-exported here, their historical
home.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.allocation.base import AllocationProcedure
from repro.constraints.base import ConstraintStrategy
from repro.exceptions import ConfigurationError
from repro.platform.multicluster import MultiClusterPlatform
from repro.streaming.engine import (
    Arrival,
    OnlineScheduleResult,
    StreamResult,
    StreamSession,
)

__all__ = [
    "Arrival",
    "OnlineConcurrentScheduler",
    "OnlineScheduleResult",
    "StreamResult",
]


class OnlineConcurrentScheduler:
    """First-come-first-served scheduler for staggered submissions.

    A thin batch wrapper over :class:`~repro.streaming.engine.StreamSession`:
    the arrival list is validated, globally sorted by ``(time, name)``
    and fed through a fresh session.  The returned
    :class:`~repro.streaming.engine.StreamResult` is a drop-in
    :class:`OnlineScheduleResult` with O(1) per-application accessors.
    """

    def __init__(
        self,
        strategy: Optional[ConstraintStrategy] = None,
        allocator: Optional[AllocationProcedure] = None,
        enable_packing: bool = True,
    ) -> None:
        """Configure the pipeline (defaults: equal share + SCRAP-MAX + packing)."""
        self.strategy = strategy
        self.allocator = allocator
        self.enable_packing = enable_packing

    @staticmethod
    def _check_arrivals(arrivals: Sequence[Arrival]) -> List[Arrival]:
        """Validate a batch and return it sorted by ``(time, name)``."""
        if not arrivals:
            raise ConfigurationError("at least one arrival is required")
        names = [a.ptg.name for a in arrivals]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"submitted applications must have unique names, got {names}"
            )
        return sorted(arrivals, key=lambda a: (a.time, a.ptg.name))

    def schedule(
        self, arrivals: Sequence[Arrival], platform: MultiClusterPlatform
    ) -> StreamResult:
        """Schedule all submissions in arrival order."""
        ordered = self._check_arrivals(arrivals)
        session = StreamSession(
            platform,
            strategy=self.strategy,
            allocator=self.allocator,
            enable_packing=self.enable_packing,
        )
        for arrival in ordered:
            session.admit(arrival)
        return session.result()
