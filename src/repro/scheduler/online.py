"""Online scheduling of applications with different submission times.

The paper's future-work section sketches the harder problem where the
concurrent applications do *not* arrive together: "this implies that the
resource constraints have to be modified on the arrival of a new
application in the system".  This module implements the simplest point of
that design space as an extension of the reproduced system:

* applications are admitted in arrival order;
* at each arrival the resource constraint of the *new* application is
  computed by the chosen strategy over the set of applications still
  present in the system at that instant (arrived and not yet completed
  according to the schedule built so far) plus the new one;
* the new application is allocated with SCRAP-MAX under that constraint
  and mapped -- without disturbing the reservations of the applications
  already scheduled -- using earliest-finish-time placement with
  allocation packing, its tasks ordered by bottom level and released no
  earlier than the submission time.

Already-running applications are neither re-allocated nor re-mapped; the
paper's full proposal (dynamically recomputing every constraint and
re-scheduling) is left as further work here too, but this extension makes
the system usable for trace-driven arrival studies and provides the
baseline any re-scheduling policy should beat.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.allocation.base import Allocation, AllocationProcedure
from repro.allocation.scrap import ScrapMaxAllocator
from repro.constraints.base import ConstraintStrategy
from repro.constraints.strategies import EqualShareStrategy
from repro.dag.graph import PTG
from repro.exceptions import ConfigurationError
from repro.mapping.base import AllocatedPTG
from repro.mapping.eft import PlacementEngine
from repro.mapping.schedule import Schedule
from repro.platform.multicluster import MultiClusterPlatform


@dataclass(frozen=True)
class Arrival:
    """One application submission: the graph and its submission time."""

    ptg: PTG
    time: float = 0.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError(
                f"submission time must be non-negative, got {self.time}"
            )


@dataclass
class OnlineScheduleResult:
    """Outcome of an online scheduling run."""

    platform: MultiClusterPlatform
    arrivals: Sequence[Arrival]
    betas: Dict[str, float]
    active_at_admission: Dict[str, List[str]]
    allocations: Dict[str, Allocation]
    schedule: Schedule
    strategy_name: str = ""

    @property
    def application_names(self) -> List[str]:
        """Names of the applications, in arrival order."""
        return [a.ptg.name for a in self.arrivals]

    def completion_time(self, name: str) -> float:
        """Absolute completion time of one application."""
        return self.schedule.makespan(name)

    def makespan(self, name: str) -> float:
        """Makespan measured from the application's own submission time."""
        arrival = next(a for a in self.arrivals if a.ptg.name == name)
        return self.completion_time(name) - arrival.time

    def makespans(self) -> Dict[str, float]:
        """Per-application makespans measured from their submission times."""
        return {name: self.makespan(name) for name in self.application_names}


class OnlineConcurrentScheduler:
    """First-come-first-served scheduler for staggered submissions."""

    def __init__(
        self,
        strategy: Optional[ConstraintStrategy] = None,
        allocator: Optional[AllocationProcedure] = None,
        enable_packing: bool = True,
    ) -> None:
        self.strategy = strategy or EqualShareStrategy()
        self.allocator = allocator or ScrapMaxAllocator()
        self.enable_packing = enable_packing

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_arrivals(arrivals: Sequence[Arrival]) -> List[Arrival]:
        if not arrivals:
            raise ConfigurationError("at least one arrival is required")
        names = [a.ptg.name for a in arrivals]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"submitted applications must have unique names, got {names}"
            )
        for arrival in arrivals:
            arrival.ptg.validate()
        return sorted(arrivals, key=lambda a: (a.time, a.ptg.name))

    def _map_application(
        self,
        engine: PlacementEngine,
        schedule: Schedule,
        allocated: AllocatedPTG,
        release_time: float,
    ) -> None:
        """Place one application's tasks (bottom-level order, FCFS)."""
        ptg = allocated.ptg
        levels = allocated.bottom_levels()
        topo_index = {tid: i for i, tid in enumerate(ptg.topological_order())}
        order = sorted(
            ptg.task_ids(), key=lambda tid: (-levels[tid], topo_index[tid])
        )
        for tid in order:
            predecessors = [
                (pred, ptg.edge_data(pred, tid)) for pred in ptg.predecessors(tid)
            ]
            engine.place(
                ptg_name=ptg.name,
                task=ptg.task(tid),
                allocation=allocated.allocation,
                predecessors=predecessors,
                schedule=schedule,
                not_before=release_time,
            )

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def schedule(
        self, arrivals: Sequence[Arrival], platform: MultiClusterPlatform
    ) -> OnlineScheduleResult:
        """Schedule all submissions in arrival order."""
        ordered = self._check_arrivals(arrivals)
        engine = PlacementEngine(platform, enable_packing=self.enable_packing)
        schedule = Schedule(platform.name)

        betas: Dict[str, float] = {}
        allocations: Dict[str, Allocation] = {}
        active_log: Dict[str, List[str]] = {}
        completion: Dict[str, float] = {}
        # Min-heap of (completion time, name) of admitted applications,
        # lazily invalidated: arrivals are processed in non-decreasing
        # time order, so popping every entry whose completion is <= now
        # (and deleting it from the insertion-ordered ``active_apps``
        # dict) leaves exactly the applications still in the system -- no
        # rescan of all previous arrivals per admission.
        running: List[Tuple[float, str]] = []
        active_apps: Dict[str, PTG] = {}

        for arrival in ordered:
            now = arrival.time
            while running and running[0][0] <= now:
                _, expired = heapq.heappop(running)
                active_apps.pop(expired, None)
            # applications still in the system at this instant, in
            # arrival order (the order the constraint strategies see)
            active = list(active_apps.values())
            concurrent = active + [arrival.ptg]
            strategy_betas = self.strategy.compute_betas(concurrent, platform)
            beta = strategy_betas[arrival.ptg.name]
            betas[arrival.ptg.name] = beta
            active_log[arrival.ptg.name] = [p.name for p in active]

            allocation = self.allocator.allocate(arrival.ptg, platform, beta=beta)
            allocations[arrival.ptg.name] = allocation
            self._map_application(
                engine, schedule, AllocatedPTG(arrival.ptg, allocation), now
            )
            done = schedule.makespan(arrival.ptg.name)
            completion[arrival.ptg.name] = done
            heapq.heappush(running, (done, arrival.ptg.name))
            active_apps[arrival.ptg.name] = arrival.ptg

        return OnlineScheduleResult(
            platform=platform,
            arrivals=ordered,
            betas=betas,
            active_at_admission=active_log,
            allocations=allocations,
            schedule=schedule,
            strategy_name=self.strategy.name,
        )
