"""Schedule-invariant validator.

Every schedule the system emits -- offline batches, online streams,
baselines -- must satisfy the same physical invariants regardless of
which pipeline produced it:

* **sane times**: starts and finishes are finite, non-negative and
  ordered (``start <= finish``);
* **precedence**: no task starts before all of its predecessors have
  finished (when the graphs are available);
* **completeness**: every task of every submitted application is placed
  exactly once, and no entry refers to an unknown task;
* **no overlap**: no processor executes two tasks at the same time
  (reservations may share an endpoint);
* **capacity**: every entry names a cluster of the platform, uses valid
  processor indices and never more processors than the cluster has
  (when the platform is available);
* **release**: no task starts before its application's submission time
  (when the submission times are available -- the online invariant);
* **availability**: no entry occupies a processor inside one of the
  down windows of a :class:`~repro.faults.timeline.FaultTimeline`
  (when a timeline is provided -- the perturbed-platform mode checking
  repaired schedules against the capacity that excludes the windows).

:func:`validate_schedule` runs every check the provided context allows
and returns a :class:`ValidationReport` listing each
:class:`Violation`; it never raises on invalid schedules (callers decide
-- tests assert ``report.ok``, the CLI prints the violations and exits
non-zero, :meth:`ValidationReport.raise_if_invalid` converts to an
exception).  :func:`validate_result` dispatches any scheduler result
object to the right check set, and
:func:`validate_experiment_metrics` re-derives the metric arithmetic of
a stored :class:`~repro.experiments.runner.ExperimentResult` record
(slowdowns and unfairness must match their definitions), which is what
``repro-ptg validate`` applies to batch campaign stores whose schedules
were not archived.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import MappingError
from repro.mapping.schedule import Schedule, ScheduledTask
from repro.platform.multicluster import MultiClusterPlatform

#: Tolerance of the time comparisons (seconds); matches the epsilon the
#: mapper uses when snapping reservations together.
TIME_EPS = 1e-9


@dataclass(frozen=True)
class Violation:
    """One broken invariant of a schedule.

    ``kind`` is a stable machine-readable tag (``times``,
    ``precedence``, ``completeness``, ``overlap``, ``capacity``,
    ``release``, ``availability``, ``metrics``); ``message`` the
    human-readable detail.
    """

    kind: str
    message: str
    ptg_name: str = ""
    task_id: Optional[int] = None

    def __str__(self) -> str:
        where = self.ptg_name
        if self.task_id is not None:
            where = f"{where}/task {self.task_id}" if where else f"task {self.task_id}"
        prefix = f"[{self.kind}] "
        return prefix + (f"{where}: {self.message}" if where else self.message)


@dataclass
class ValidationReport:
    """Outcome of validating one schedule (or one stored record)."""

    violations: List[Violation] = field(default_factory=list)
    entries_checked: int = 0
    applications_checked: int = 0
    checks: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """True when every performed check passed."""
        return not self.violations

    def add(
        self,
        kind: str,
        message: str,
        ptg_name: str = "",
        task_id: Optional[int] = None,
    ) -> None:
        """Record one violation."""
        self.violations.append(
            Violation(kind=kind, message=message, ptg_name=ptg_name, task_id=task_id)
        )

    def merge(self, other: "ValidationReport") -> None:
        """Fold another report into this one."""
        self.violations.extend(other.violations)
        self.entries_checked += other.entries_checked
        self.applications_checked += other.applications_checked
        self.checks = tuple(dict.fromkeys(self.checks + other.checks))

    def summary(self) -> str:
        """One-line human-readable outcome."""
        status = "OK" if self.ok else f"{len(self.violations)} violation(s)"
        return (
            f"{status}: {self.entries_checked} entries, "
            f"{self.applications_checked} application(s), "
            f"checks: {', '.join(self.checks) if self.checks else 'none'}"
        )

    def raise_if_invalid(self) -> None:
        """Raise :class:`~repro.exceptions.MappingError` on any violation."""
        if not self.ok:
            lines = "\n".join(str(v) for v in self.violations[:10])
            more = len(self.violations) - 10
            if more > 0:
                lines += f"\n... and {more} more"
            raise MappingError(
                f"schedule violates {len(self.violations)} invariant(s):\n{lines}"
            )


def _check_times(entry: ScheduledTask, report: ValidationReport) -> bool:
    """Sane-times check of one entry; False when its times are unusable."""
    values = (entry.start, entry.finish)
    if any(not math.isfinite(v) for v in values):
        report.add(
            "times",
            f"non-finite time window [{entry.start}, {entry.finish}]",
            entry.ptg_name,
            entry.task_id,
        )
        return False
    if entry.start < 0:
        report.add(
            "times", f"negative start {entry.start}", entry.ptg_name, entry.task_id
        )
        return False
    if entry.finish < entry.start - TIME_EPS:
        report.add(
            "times",
            f"finish {entry.finish} precedes start {entry.start}",
            entry.ptg_name,
            entry.task_id,
        )
        return False
    return True


def _check_capacity(
    entry: ScheduledTask,
    platform: MultiClusterPlatform,
    report: ValidationReport,
) -> None:
    """Cluster-capacity check of one entry."""
    if entry.cluster_name not in platform:
        report.add(
            "capacity",
            f"unknown cluster {entry.cluster_name!r}",
            entry.ptg_name,
            entry.task_id,
        )
        return
    cluster = platform.cluster(entry.cluster_name)
    if entry.num_processors > cluster.num_processors:
        report.add(
            "capacity",
            f"uses {entry.num_processors} processors on cluster "
            f"{entry.cluster_name!r} ({cluster.num_processors} available)",
            entry.ptg_name,
            entry.task_id,
        )
    bad = [p for p in entry.processors if p < 0 or p >= cluster.num_processors]
    if bad:
        report.add(
            "capacity",
            f"invalid processor indices {bad} on cluster "
            f"{entry.cluster_name!r} (0..{cluster.num_processors - 1})",
            entry.ptg_name,
            entry.task_id,
        )


def _check_overlaps(entries: Sequence[ScheduledTask], report: ValidationReport) -> None:
    """No processor may execute two reservations at once."""
    by_proc: Dict[Tuple[str, int], List[ScheduledTask]] = {}
    for entry in entries:
        for proc in entry.processors:
            by_proc.setdefault((entry.cluster_name, proc), []).append(entry)
    for (cluster, proc), rows in by_proc.items():
        rows.sort(key=lambda e: (e.start, e.finish, e.ptg_name, e.task_id))
        for first, second in zip(rows, rows[1:]):
            if second.start < first.finish - TIME_EPS:
                report.add(
                    "overlap",
                    f"processor {proc} of cluster {cluster!r} runs task "
                    f"{first.task_id} of {first.ptg_name!r} until "
                    f"{first.finish:.6f} and task {second.task_id} of "
                    f"{second.ptg_name!r} from {second.start:.6f}",
                    second.ptg_name,
                    second.task_id,
                )


def _check_applications(
    schedule: Schedule,
    ptgs: Sequence,
    report: ValidationReport,
) -> None:
    """Completeness + precedence checks against the submitted graphs."""
    known = set()
    for ptg in ptgs:
        report.applications_checked += 1
        for task in ptg.tasks():
            known.add((ptg.name, task.task_id))
            if not schedule.has_entry(ptg.name, task.task_id):
                report.add(
                    "completeness",
                    "task is not in the schedule",
                    ptg.name,
                    task.task_id,
                )
                continue
            entry = schedule.entry(ptg.name, task.task_id)
            for pred in ptg.predecessors(task.task_id):
                if not schedule.has_entry(ptg.name, pred):
                    continue  # already reported as missing
                pred_entry = schedule.entry(ptg.name, pred)
                if entry.start < pred_entry.finish - TIME_EPS:
                    report.add(
                        "precedence",
                        f"starts at {entry.start:.6f} before predecessor "
                        f"{pred} finishes at {pred_entry.finish:.6f}",
                        ptg.name,
                        task.task_id,
                    )
    for entry in schedule:
        key = (entry.ptg_name, entry.task_id)
        if key not in known:
            report.add(
                "completeness",
                "schedule entry does not match any submitted task",
                entry.ptg_name,
                entry.task_id,
            )


def _check_releases(
    schedule: Schedule,
    releases: Mapping[str, float],
    report: ValidationReport,
) -> None:
    """No task may start before its application's submission instant."""
    for entry in schedule:
        release = releases.get(entry.ptg_name)
        if release is None:
            continue
        if entry.start < release - TIME_EPS:
            report.add(
                "release",
                f"starts at {entry.start:.6f} before the application's "
                f"submission at {release:.6f}",
                entry.ptg_name,
                entry.task_id,
            )


def _check_availability(
    entries: Sequence[ScheduledTask],
    faults,
    report: ValidationReport,
) -> None:
    """No entry may occupy a processor inside a down window."""
    for entry in entries:
        window = faults.entry_conflicts(entry)
        if window is not None:
            report.add(
                "availability",
                f"runs on cluster {entry.cluster_name!r} during "
                f"[{entry.start:.6f}, {entry.finish:.6f}] while processors "
                f"{list(window.processors)[:5]} are down during "
                f"[{window.start:.6f}, {window.end:.6f}]",
                entry.ptg_name,
                entry.task_id,
            )


def validate_schedule(
    schedule: Schedule,
    ptgs: Optional[Sequence] = None,
    platform: Optional[MultiClusterPlatform] = None,
    releases: Optional[Mapping[str, float]] = None,
    faults=None,
) -> ValidationReport:
    """Check every schedule invariant the provided context allows.

    Parameters
    ----------
    schedule:
        The schedule to validate.
    ptgs:
        The submitted applications; enables the completeness and
        precedence checks.
    platform:
        The target platform; enables the cluster-capacity checks.
    releases:
        Per-application submission instants (``name -> seconds``);
        enables the online release check.
    faults:
        Optional :class:`~repro.faults.timeline.FaultTimeline`; enables
        the perturbed-platform availability check (no entry may overlap
        a down window on its processors -- the invariant a repaired
        schedule must satisfy).

    Returns
    -------
    ValidationReport
        Every violation found; ``report.ok`` is the overall verdict.
    """
    report = ValidationReport(checks=("times", "overlap"))
    entries = list(schedule)
    report.entries_checked = len(entries)
    sane = [entry for entry in entries if _check_times(entry, report)]
    _check_overlaps(sane, report)
    if platform is not None:
        report.checks += ("capacity",)
        for entry in entries:
            _check_capacity(entry, platform, report)
    if ptgs is not None:
        report.checks += ("completeness", "precedence")
        _check_applications(schedule, ptgs, report)
    else:
        report.applications_checked = len(schedule.application_names())
    if releases is not None:
        report.checks += ("release",)
        _check_releases(schedule, releases, report)
    if faults is not None:
        report.checks += ("availability",)
        _check_availability(sane, faults, report)
    return report


def validate_result(result) -> ValidationReport:
    """Validate any scheduler result object with its full context.

    Dispatches on shape: single results
    (:class:`~repro.scheduler.result.SingleScheduleResult`), batch
    results (:class:`~repro.scheduler.result.ConcurrentScheduleResult`)
    and online results
    (:class:`~repro.streaming.engine.OnlineScheduleResult` /
    :class:`~repro.streaming.engine.StreamResult`, whose submission
    times enable the release check).
    """
    schedule = getattr(result, "schedule", None)
    if schedule is None:
        raise MappingError(
            f"{type(result).__name__} carries no schedule to validate"
        )
    platform = getattr(result, "platform", None)
    arrivals = getattr(result, "arrivals", None)
    if arrivals is not None:
        ptgs = [arrival.ptg for arrival in arrivals]
        releases = {arrival.ptg.name: arrival.time for arrival in arrivals}
        return validate_schedule(schedule, ptgs, platform, releases)
    ptgs = getattr(result, "ptgs", None)
    if ptgs is None:
        single = getattr(result, "ptg", None)
        ptgs = [single] if single is not None else None
    return validate_schedule(schedule, ptgs, platform)


def validate_experiment_metrics(result) -> ValidationReport:
    """Re-derive the metric arithmetic of a stored experiment record.

    Stored batch campaign records hold metrics, not schedules; what can
    still be checked is that the record is *internally consistent*:
    every makespan is finite and positive, every slowdown equals
    ``M_own / M_multi`` and every unfairness equals the paper's Eq. 5
    over the recorded slowdowns.
    """
    from repro.metrics.fairness import unfairness as compute_unfairness

    report = ValidationReport(checks=("metrics",))
    report.applications_checked = len(result.own_makespans)
    for name, value in result.own_makespans.items():
        if not math.isfinite(value) or value <= 0:
            report.add("metrics", f"own makespan of {name!r} is {value}")
    for strategy_name, outcome in result.outcomes.items():
        for name, value in outcome.makespans.items():
            report.entries_checked += 1
            if not math.isfinite(value) or value <= 0:
                report.add(
                    "metrics",
                    f"{strategy_name}: makespan of {name!r} is {value}",
                )
                continue
            own = result.own_makespans.get(name)
            if own is None:
                report.add(
                    "metrics",
                    f"{strategy_name}: {name!r} has no own-makespan reference",
                )
                continue
            expected = own / value
            recorded = outcome.slowdowns.get(name)
            if recorded is None or abs(recorded - expected) > 1e-9 * max(
                1.0, abs(expected)
            ):
                report.add(
                    "metrics",
                    f"{strategy_name}: slowdown of {name!r} is {recorded}, "
                    f"expected M_own/M_multi = {expected}",
                )
        if outcome.slowdowns:
            expected_unfairness = compute_unfairness(outcome.slowdowns)
            if abs(outcome.unfairness - expected_unfairness) > 1e-9 * max(
                1.0, expected_unfairness
            ):
                report.add(
                    "metrics",
                    f"{strategy_name}: unfairness is {outcome.unfairness}, "
                    f"Eq. 5 over the recorded slowdowns gives "
                    f"{expected_unfairness}",
                )
    return report
