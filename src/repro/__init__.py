"""repro -- Concurrent scheduling of parallel task graphs on multi-clusters.

This package is a from-scratch reproduction of

    N'Takpe, T. and Suter, F.  "Concurrent Scheduling of Parallel Task
    Graphs on Multi-Clusters Using Constrained Resource Allocations",
    INRIA Research Report RR-6774, December 2008 (HCW/IPDPS 2009).

It provides:

* a heterogeneous multi-cluster platform model with the Grid'5000 subsets
  used in the paper (:mod:`repro.platform`),
* a parallel task graph (PTG) model with moldable data-parallel tasks and
  the paper's generators: random layered DAGs, FFT and Strassen
  (:mod:`repro.dag`),
* the two-step scheduling machinery: constrained allocation procedures
  (CPA, HCPA, SCRAP, SCRAP-MAX, :mod:`repro.allocation`), resource
  constraint strategies (S, ES, PS-*, WPS-*, :mod:`repro.constraints`)
  and concurrent mapping procedures (:mod:`repro.mapping`),
* single-PTG and concurrent multi-PTG schedulers (:mod:`repro.scheduler`),
* baseline comparators (HEFT, MHEFT, DAG aggregation,
  :mod:`repro.baselines`),
* a discrete-event simulation substrate replacing SimGrid
  (:mod:`repro.simulate`),
* the paper's evaluation metrics (:mod:`repro.metrics`) and the full
  experiment harness reproducing every table and figure
  (:mod:`repro.experiments`),
* a campaign orchestration subsystem -- shard fan-out across worker
  processes, append-only result persistence, own-makespan caching and
  resume-after-interrupt (:mod:`repro.campaigns`),
* a declarative scenario layer -- serializable scenario specs selecting
  every axis (allocator, strategy, mapper, packing, platform, workload
  family) by plugin-registry name, a fluent builder with cross-product
  sweeps, and spec-keyed execution with resume
  (:mod:`repro.scenarios`),
* a multi-tenant online workload engine -- seeded Poisson / bursty /
  trace-driven arrival streams, an incremental event-driven streaming
  scheduler, windowed fairness / utilisation / stall metrics, and
  resumable streaming sweeps (:mod:`repro.streaming`,
  :mod:`repro.metrics.windows`),
* a schedule-invariant validator checking any produced schedule for
  precedence, overlap, capacity, release and sane-time violations
  (:mod:`repro.validate`).

Quickstart
----------

The scenario API is the front door: describe the experiment
declaratively, run it, read the metrics.

>>> from repro import Scenario, run_scenario
>>> spec = (
...     Scenario.on("rennes")
...     .workload(family="fft", n_ptgs=2, seed=7)
...     .pipeline(allocator="scrap-max", strategy=["ES", "WPS-width"], mapper="ready-list")
...     .build()
... )
>>> result = run_scenario(spec)
>>> sorted(result.experiment.outcomes)
['ES', 'WPS-width']
>>> 0.0 <= result.unfairness_of("ES")
True
>>> spec == type(spec).from_dict(spec.to_dict())  # specs round-trip through JSON
True

The scheduling machinery underneath stays directly scriptable:

>>> from repro import grid5000, generate_random_ptg, RandomPTGConfig
>>> from repro import ConcurrentScheduler, strategy
>>> import numpy as np
>>> rng = np.random.default_rng(42)
>>> platform = grid5000.rennes()
>>> ptgs = [
...     generate_random_ptg(rng, RandomPTGConfig(n_tasks=20), name=f"app-{i}")
...     for i in range(4)
... ]
>>> scheduler = ConcurrentScheduler(strategy("WPS-width"))
>>> result = scheduler.schedule(ptgs, platform)
>>> set(result.makespans) == {ptg.name for ptg in ptgs}
True
>>> all(m > 0 for m in result.makespans.values())
True
>>> result.global_makespan >= max(result.makespans.values())
True
"""

from __future__ import annotations

import logging as _logging

# Library logging convention: the package never configures handlers for
# its users; the CLI (and any embedding application) attaches its own.
_logging.getLogger("repro").addHandler(_logging.NullHandler())

from repro._version import __version__
from repro.exceptions import (
    ReproError,
    InvalidGraphError,
    InvalidPlatformError,
    AllocationError,
    MappingError,
    SimulationError,
    ConfigurationError,
    CampaignError,
)
from repro.platform import (
    Cluster,
    MultiClusterPlatform,
    NetworkTopology,
    Switch,
    grid5000,
)
from repro.dag import (
    Task,
    PTG,
    ComplexityClass,
    AmdahlTaskModel,
    RandomPTGConfig,
    generate_random_ptg,
    generate_fft_ptg,
    generate_strassen_ptg,
)
from repro.allocation import (
    Allocation,
    ReferenceCluster,
    CPAAllocator,
    HCPAAllocator,
    ScrapAllocator,
    ScrapMaxAllocator,
)
from repro.constraints import (
    ConstraintStrategy,
    SelfishStrategy,
    EqualShareStrategy,
    ProportionalShareStrategy,
    WeightedProportionalShareStrategy,
    strategy,
    STRATEGY_NAMES,
)
from repro.mapping import (
    Schedule,
    ScheduledTask,
    ReadyListMapper,
    GlobalOrderMapper,
)
from repro.scheduler import (
    SinglePTGScheduler,
    ConcurrentScheduler,
    ConcurrentScheduleResult,
)
from repro.simulate import ScheduleExecutor, SimulationReport
from repro.metrics import slowdown, average_slowdown, unfairness, relative_makespans
from repro.campaigns import (
    CampaignStore,
    ExperimentShard,
    OwnMakespanCache,
    make_shards,
    run_campaign_parallel,
)
from repro.scenarios import (
    ALLOCATORS,
    ARRIVALS,
    FAMILIES,
    MAPPERS,
    PLATFORMS,
    REGISTRIES,
    STRATEGIES,
    PipelineSpec,
    Registry,
    Scenario,
    ScenarioResult,
    ScenarioSpec,
    WorkloadSpec2,
    run_scenario,
    run_scenarios,
)
from repro.streaming import (
    Arrival,
    ArrivalSpec,
    StreamResult,
    StreamSession,
    generate_arrivals,
    run_stream_scenario,
    run_stream_scenarios,
)
from repro.metrics.windows import WindowedMetrics, windowed_metrics
from repro.validate import ValidationReport, Violation, validate_result, validate_schedule
from repro import obs
from repro.obs import TelemetrySpec

__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "InvalidGraphError",
    "InvalidPlatformError",
    "AllocationError",
    "MappingError",
    "SimulationError",
    "ConfigurationError",
    "CampaignError",
    # platform
    "Cluster",
    "MultiClusterPlatform",
    "NetworkTopology",
    "Switch",
    "grid5000",
    # dag
    "Task",
    "PTG",
    "ComplexityClass",
    "AmdahlTaskModel",
    "RandomPTGConfig",
    "generate_random_ptg",
    "generate_fft_ptg",
    "generate_strassen_ptg",
    # allocation
    "Allocation",
    "ReferenceCluster",
    "CPAAllocator",
    "HCPAAllocator",
    "ScrapAllocator",
    "ScrapMaxAllocator",
    # constraints
    "ConstraintStrategy",
    "SelfishStrategy",
    "EqualShareStrategy",
    "ProportionalShareStrategy",
    "WeightedProportionalShareStrategy",
    "strategy",
    "STRATEGY_NAMES",
    # mapping
    "Schedule",
    "ScheduledTask",
    "ReadyListMapper",
    "GlobalOrderMapper",
    # scheduler
    "SinglePTGScheduler",
    "ConcurrentScheduler",
    "ConcurrentScheduleResult",
    # simulation
    "ScheduleExecutor",
    "SimulationReport",
    # metrics
    "slowdown",
    "average_slowdown",
    "unfairness",
    "relative_makespans",
    # campaigns
    "CampaignStore",
    "ExperimentShard",
    "OwnMakespanCache",
    "make_shards",
    "run_campaign_parallel",
    # scenarios
    "Registry",
    "ALLOCATORS",
    "ARRIVALS",
    "MAPPERS",
    "STRATEGIES",
    "PLATFORMS",
    "FAMILIES",
    "REGISTRIES",
    "ScenarioSpec",
    "PipelineSpec",
    "WorkloadSpec2",
    "Scenario",
    "ScenarioResult",
    "run_scenario",
    "run_scenarios",
    # streaming
    "Arrival",
    "ArrivalSpec",
    "StreamResult",
    "StreamSession",
    "generate_arrivals",
    "run_stream_scenario",
    "run_stream_scenarios",
    # windowed metrics
    "WindowedMetrics",
    "windowed_metrics",
    # validation
    "ValidationReport",
    "Violation",
    "validate_schedule",
    "validate_result",
    # observability
    "obs",
    "TelemetrySpec",
]
