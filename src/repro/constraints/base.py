"""Interface of the resource-constraint determination strategies."""

from __future__ import annotations

import abc
from typing import Dict, Sequence

from repro.dag.graph import PTG
from repro.exceptions import ConfigurationError
from repro.platform.multicluster import MultiClusterPlatform


class ConstraintStrategy(abc.ABC):
    """Assigns a resource constraint ``beta_i`` to every submitted PTG.

    Implementations must be stateless with respect to the applications:
    calling :meth:`compute_betas` twice with the same inputs must return
    the same result.
    """

    #: Strategy name as used in the paper's figures (e.g. ``"WPS-width"``).
    name: str = "abstract"

    @abc.abstractmethod
    def compute_betas(
        self, ptgs: Sequence[PTG], platform: MultiClusterPlatform
    ) -> Dict[str, float]:
        """Return ``{ptg.name: beta}`` for every PTG in *ptgs*.

        Every returned ``beta`` lies in ``(0, 1]``.  Raises
        :class:`~repro.exceptions.ConfigurationError` when *ptgs* is empty
        or contains duplicate application names.
        """

    # ------------------------------------------------------------------ #
    # shared helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_inputs(ptgs: Sequence[PTG]) -> None:
        if not ptgs:
            raise ConfigurationError("at least one PTG must be submitted")
        names = [p.name for p in ptgs]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"concurrent PTGs must have unique names, got {names}"
            )

    @staticmethod
    def _clamp(beta: float) -> float:
        """Clamp a computed constraint into ``(0, 1]``.

        Numerical noise can push a proportional share slightly above 1 or
        to 0 for degenerate characteristics; the clamp keeps ``beta``
        valid for the allocation procedures (which require a strictly
        positive fraction).
        """
        minimum = 1e-6
        return min(1.0, max(minimum, beta))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
