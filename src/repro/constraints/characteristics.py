"""Application characteristics driving the PS and WPS strategies.

The proportional strategies share the platform according to the relative
contribution ``gamma_i`` of each application for one of three structural
characteristics (Section 6 of the paper):

* **critical path length** -- an application with a long critical path may
  benefit from more resources to shorten the tasks along that path;
* **maximal width** -- an application with a large precedence level can
  exploit more task parallelism and suffers most from a tight constraint
  (SCRAP-MAX applies the constraint per level);
* **work** -- the total number of floating point operations of the tasks.

The critical path characteristic is evaluated with every task on a single
processor of the platform's reference cluster: the characteristic must be
computable *before* any allocation decision has been made.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.allocation.reference import ReferenceCluster
from repro.dag.graph import PTG
from repro.exceptions import ConfigurationError
from repro.platform.multicluster import MultiClusterPlatform

#: A characteristic maps (ptg, platform) to a non-negative scalar gamma.
Characteristic = Callable[[PTG, MultiClusterPlatform], float]


def critical_path_characteristic(ptg: PTG, platform: MultiClusterPlatform) -> float:
    """Length of the critical path with sequential tasks on the reference cluster."""
    reference = ReferenceCluster.of(platform)
    return ptg.critical_path_length(lambda task: reference.execution_time(task, 1))


def width_characteristic(ptg: PTG, platform: MultiClusterPlatform) -> float:
    """Maximal number of tasks in a precedence level (task parallelism)."""
    return float(ptg.max_width())


def work_characteristic(ptg: PTG, platform: MultiClusterPlatform) -> float:
    """Total sequential work of the application (flop)."""
    return ptg.total_work()


#: Registry keyed by the suffix used in the paper's strategy names.
CHARACTERISTICS: Dict[str, Characteristic] = {
    "cp": critical_path_characteristic,
    "width": width_characteristic,
    "work": work_characteristic,
}


def get_characteristic(key: str) -> Characteristic:
    """Return the characteristic function registered under *key*.

    *key* is one of ``"cp"``, ``"width"`` or ``"work"`` (case-insensitive).
    """
    try:
        return CHARACTERISTICS[key.lower()]
    except (KeyError, AttributeError):
        raise ConfigurationError(
            f"unknown characteristic {key!r}; available: {sorted(CHARACTERISTICS)}"
        ) from None
