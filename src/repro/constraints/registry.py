"""Name-based registry of constraint strategies.

The experiment harness and the command-line interface refer to strategies
by the names used in the paper's figures (``S``, ``ES``, ``PS-cp``,
``PS-width``, ``PS-work``, ``WPS-cp``, ``WPS-width``, ``WPS-work``).  The
``mu`` parameter of the WPS variants defaults to the values selected in
Section 7 of the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.constraints.base import ConstraintStrategy
from repro.constraints.strategies import (
    EqualShareStrategy,
    ProportionalShareStrategy,
    SelfishStrategy,
    WeightedProportionalShareStrategy,
)
from repro.exceptions import ConfigurationError

#: All strategy names, in the order of the paper's figure legends.
STRATEGY_NAMES: List[str] = [
    "S",
    "ES",
    "PS-cp",
    "PS-width",
    "PS-work",
    "WPS-cp",
    "WPS-width",
    "WPS-work",
]

#: Paper-selected mu values per (characteristic, application family).
#: "For the WPS-work variant, fixing mu to 0.7 is an appropriate value for
#: all kinds of PTG.  Similarly, for the WPS-cp variant, we use the same
#: value of mu for each category which is in this case set to 0.5.
#: Finally for the WPS-width variant, the mu parameter takes different
#: values, namely 0.3 for FFT applications and 0.5 for randomly generated
#: PTGs."
PAPER_MU: Dict[str, Dict[str, float]] = {
    "work": {"random": 0.7, "fft": 0.7, "strassen": 0.7, "default": 0.7},
    "cp": {"random": 0.5, "fft": 0.5, "strassen": 0.5, "default": 0.5},
    "width": {"random": 0.5, "fft": 0.3, "strassen": 0.5, "default": 0.5},
}


def default_mu(characteristic: str, family: str = "default") -> float:
    """The paper's ``mu`` for a WPS variant on a given application family."""
    try:
        per_family = PAPER_MU[characteristic.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown characteristic {characteristic!r}; available: {sorted(PAPER_MU)}"
        ) from None
    return per_family.get(family.lower(), per_family["default"])


def strategy(
    name: str, mu: Optional[float] = None, family: str = "default"
) -> ConstraintStrategy:
    """Instantiate the strategy called *name*.

    Parameters
    ----------
    name:
        One of :data:`STRATEGY_NAMES` (case-insensitive).
    mu:
        Override of the WPS weighting parameter; ignored by non-WPS
        strategies.  Defaults to the paper's value for the given
        *family*.
    family:
        Application family (``"random"``, ``"fft"``, ``"strassen"``) used
        to look up the paper's default ``mu``.

    Examples
    --------
    >>> strategy("ES").name
    'ES'
    >>> strategy("wps-width", family="fft").mu
    0.3
    """
    key = name.strip()
    canonical = {n.lower(): n for n in STRATEGY_NAMES}.get(key.lower())
    if canonical is None:
        raise ConfigurationError(
            f"unknown strategy {name!r}; available: {STRATEGY_NAMES}"
        )
    if canonical == "S":
        return SelfishStrategy()
    if canonical == "ES":
        return EqualShareStrategy()
    kind, characteristic = canonical.split("-", 1)
    if kind == "PS":
        return ProportionalShareStrategy(characteristic)
    chosen_mu = mu if mu is not None else default_mu(characteristic, family)
    return WeightedProportionalShareStrategy(characteristic, mu=chosen_mu)


def paper_strategies(
    family: str = "random", include_width: bool = True
) -> List[ConstraintStrategy]:
    """The strategy set compared in the paper's figures.

    For Strassen PTGs the width-based strategies are excluded ("the PS and
    the WPS [width variants] have absolutely no interest" because all
    Strassen graphs have the same width); pass ``include_width=False`` to
    reproduce that figure's legend.
    """
    names: Sequence[str] = STRATEGY_NAMES
    if not include_width:
        names = [n for n in names if "width" not in n]
    return [strategy(n, family=family) for n in names]
