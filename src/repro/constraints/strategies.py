"""The eight resource-constraint determination strategies of the paper."""

from __future__ import annotations

from typing import Dict, Sequence

from repro.constraints.base import ConstraintStrategy
from repro.constraints.characteristics import Characteristic, get_characteristic
from repro.dag.graph import PTG
from repro.exceptions import ConfigurationError
from repro.platform.multicluster import MultiClusterPlatform
from repro.utils.validation import check_in_unit_interval


class SelfishStrategy(ConstraintStrategy):
    """``S``: every application may use the whole platform (``beta = 1``).

    This reproduces the behaviour of two-step heuristics designed for a
    dedicated platform (HCPA, MHEFT) when they are naively applied to
    concurrent applications, and serves as the baseline of the
    evaluation.
    """

    name = "S"

    def compute_betas(
        self, ptgs: Sequence[PTG], platform: MultiClusterPlatform
    ) -> Dict[str, float]:
        """``beta = 1`` for every application, regardless of the workload."""
        self._check_inputs(ptgs)
        return {ptg.name: 1.0 for ptg in ptgs}


class EqualShareStrategy(ConstraintStrategy):
    """``ES``: every application gets an equal share ``beta = 1 / |A|``."""

    name = "ES"

    def compute_betas(
        self, ptgs: Sequence[PTG], platform: MultiClusterPlatform
    ) -> Dict[str, float]:
        """``beta = 1 / |A|`` for every application of the batch."""
        self._check_inputs(ptgs)
        share = 1.0 / len(ptgs)
        return {ptg.name: self._clamp(share) for ptg in ptgs}


class ProportionalShareStrategy(ConstraintStrategy):
    """``PS-<characteristic>``: share proportional to the application's contribution.

    ``beta_i = gamma_i / sum_j gamma_j`` (Equation 1 of the paper), where
    ``gamma`` is the critical path length, the maximal width, or the total
    work depending on the chosen characteristic.
    """

    def __init__(self, characteristic: str = "work") -> None:
        self.characteristic_key = characteristic.lower()
        self.characteristic: Characteristic = get_characteristic(characteristic)
        self.name = f"PS-{self.characteristic_key}"

    def compute_betas(
        self, ptgs: Sequence[PTG], platform: MultiClusterPlatform
    ) -> Dict[str, float]:
        """Equation 1: ``beta_i = gamma_i / sum_j gamma_j``."""
        self._check_inputs(ptgs)
        gammas = {ptg.name: self.characteristic(ptg, platform) for ptg in ptgs}
        total = sum(gammas.values())
        if total <= 0.0:
            # degenerate workload (all characteristics are zero): fall back
            # to an equal share, which is the natural limit of Eq. 1.
            share = 1.0 / len(ptgs)
            return {name: self._clamp(share) for name in gammas}
        return {name: self._clamp(gamma / total) for name, gamma in gammas.items()}


class WeightedProportionalShareStrategy(ConstraintStrategy):
    """``WPS-<characteristic>``: compromise between equal and proportional share.

    ``beta_i = mu / |A| + (1 - mu) * gamma_i / sum_j gamma_j``
    (Equation 2 of the paper).  ``mu = 0`` reduces to the PS strategy and
    ``mu = 1`` to ES.  The paper tunes ``mu`` per characteristic and per
    application family (see :data:`repro.constraints.registry.PAPER_MU`).
    """

    def __init__(self, characteristic: str = "work", mu: float = 0.7) -> None:
        check_in_unit_interval("mu", mu)
        self.characteristic_key = characteristic.lower()
        self.characteristic: Characteristic = get_characteristic(characteristic)
        self.mu = float(mu)
        self.name = f"WPS-{self.characteristic_key}"

    def compute_betas(
        self, ptgs: Sequence[PTG], platform: MultiClusterPlatform
    ) -> Dict[str, float]:
        """Equation 2: ``beta_i = mu/|A| + (1 - mu) * gamma_i / sum_j gamma_j``."""
        self._check_inputs(ptgs)
        n = len(ptgs)
        gammas = {ptg.name: self.characteristic(ptg, platform) for ptg in ptgs}
        total = sum(gammas.values())
        betas: Dict[str, float] = {}
        for name, gamma in gammas.items():
            proportional = (gamma / total) if total > 0.0 else (1.0 / n)
            betas[name] = self._clamp(self.mu / n + (1.0 - self.mu) * proportional)
        return betas
