"""Resource-constraint determination strategies (Section 6 of the paper).

Given the set ``A`` of applications submitted concurrently, a strategy
assigns each application a resource constraint ``beta_i`` in ``(0, 1]``:
the fraction of the platform's aggregate processing power the allocation
procedure may use when building that application's schedule.

Eight strategies are compared in the paper:

* ``S``      -- selfish: every application may use the whole platform
  (``beta = 1``); this is the behaviour of heuristics designed for a
  dedicated platform and serves as the baseline.
* ``ES``     -- equal share: ``beta = 1 / |A|``.
* ``PS-cp``, ``PS-width``, ``PS-work`` -- proportional share:
  ``beta_i = gamma_i / sum_j gamma_j`` where ``gamma`` is the critical
  path length, the maximal level width, or the total work.
* ``WPS-cp``, ``WPS-width``, ``WPS-work`` -- weighted proportional share:
  ``beta_i = mu/|A| + (1 - mu) * gamma_i / sum_j gamma_j``, a tunable
  compromise between ES (``mu = 1``) and PS (``mu = 0``).
"""

from repro.constraints.base import ConstraintStrategy
from repro.constraints.characteristics import (
    Characteristic,
    critical_path_characteristic,
    width_characteristic,
    work_characteristic,
    CHARACTERISTICS,
)
from repro.constraints.strategies import (
    SelfishStrategy,
    EqualShareStrategy,
    ProportionalShareStrategy,
    WeightedProportionalShareStrategy,
)
from repro.constraints.registry import (
    strategy,
    STRATEGY_NAMES,
    PAPER_MU,
    paper_strategies,
)

__all__ = [
    "ConstraintStrategy",
    "Characteristic",
    "critical_path_characteristic",
    "width_characteristic",
    "work_characteristic",
    "CHARACTERISTICS",
    "SelfishStrategy",
    "EqualShareStrategy",
    "ProportionalShareStrategy",
    "WeightedProportionalShareStrategy",
    "strategy",
    "STRATEGY_NAMES",
    "PAPER_MU",
    "paper_strategies",
]
