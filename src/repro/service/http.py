"""Minimal JSON-over-HTTP framing for the admission daemon (stdlib only).

The daemon's application logic is transport-agnostic
(:meth:`repro.service.app.ServiceApp.handle` consumes
:class:`~repro.service.app.Request` objects); this module is the thin
HTTP/1.1 skin on :func:`asyncio.start_server`:

* one request per connection (``Connection: close`` -- the clients are
  submission scripts and smoke tests, not browsers),
* the request body, when present, must be a JSON document,
* every response is a JSON document with ``Content-Length``, plus any
  endpoint headers (notably ``Retry-After`` on 429 backpressure).

:func:`run_daemon` is the blocking entry point ``repro serve`` calls:
it builds (or restores) the app *inside* the event loop, serves until
``POST /shutdown`` (or cancellation), then checkpoints on the way down
when a store is configured, so an operator stop never loses admitted
state.
"""

from __future__ import annotations

import asyncio
import json
import logging
from typing import Callable, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.scenarios.spec import ScenarioSpec
from repro.service.app import Request, Response, ServiceApp

logger = logging.getLogger("repro.service")

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

#: Largest accepted request body (a serialised PTG is a few kilobytes;
#: one megabyte is far beyond any legitimate submission).
MAX_BODY_BYTES = 1 << 20


def _encode_response(response: Response) -> bytes:
    """Render one :class:`Response` as an HTTP/1.1 byte string."""
    body = json.dumps(response.body).encode("utf-8")
    reason = _REASONS.get(response.status, "Unknown")
    head = [f"HTTP/1.1 {response.status} {reason}"]
    head.append("Content-Type: application/json")
    head.append(f"Content-Length: {len(body)}")
    for name, value in response.headers.items():
        head.append(f"{name}: {value}")
    head.append("Connection: close")
    return ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + body


async def _read_request(reader: asyncio.StreamReader) -> Request:
    """Parse one HTTP request from the stream (raises ValueError when bad)."""
    request_line = await reader.readline()
    parts = request_line.decode("ascii", "replace").split()
    if len(parts) != 3:
        raise ValueError(f"malformed request line {request_line!r}")
    method, target, _version = parts
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("ascii", "replace").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    if length < 0 or length > MAX_BODY_BYTES:
        raise ValueError(f"unacceptable content length {length}")
    raw = await reader.readexactly(length) if length else b""
    body = json.loads(raw.decode("utf-8")) if raw else None
    split = urlsplit(target)
    return Request(
        method=method,
        path=split.path,
        query=dict(parse_qsl(split.query)),
        body=body,
    )


def connection_handler(app: ServiceApp) -> Callable:
    """The per-connection coroutine :func:`asyncio.start_server` needs."""

    async def _handle(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await _read_request(reader)
            except (ValueError, json.JSONDecodeError, asyncio.IncompleteReadError) as exc:
                response = Response(400, {"error": f"malformed request: {exc}"})
            else:
                response = await app.handle(request)
            writer.write(_encode_response(response))
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    return _handle


async def start_http_server(
    app: ServiceApp, host: str = "127.0.0.1", port: int = 0
) -> Tuple[asyncio.AbstractServer, int]:
    """Bind the daemon to ``host:port``; returns (server, bound port).

    Port 0 binds an ephemeral port -- the tests use it to avoid
    collisions; the bound port is in the return value either way.
    """
    server = await asyncio.start_server(connection_handler(app), host, port)
    bound = server.sockets[0].getsockname()[1]
    return server, bound


async def serve_app(
    app: ServiceApp,
    host: str = "127.0.0.1",
    port: int = 0,
    ready: Optional[Callable[[int], None]] = None,
) -> None:
    """Serve *app* until its shutdown event fires, then stop cleanly.

    *ready* (if given) receives the bound port once the socket is
    listening.  On the way down the admission workers are stopped and,
    when the app has a store, a final checkpoint is written -- stopping
    a daemon never loses admitted state.
    """
    server, bound = await start_http_server(app, host, port)
    logger.info("service listening on %s:%d", host, bound)
    if ready is not None:
        ready(bound)
    await app.start()
    try:
        await app.shutdown_event.wait()
    finally:
        server.close()
        await server.wait_closed()
        await app.quiesce()
        await app.stop()
        if app.store is not None:
            from repro.service.checkpoint import write_checkpoint

            key = write_checkpoint(app, app.store)
            logger.info("final checkpoint written under %s", key)


def run_daemon(
    spec: ScenarioSpec,
    host: str = "127.0.0.1",
    port: int = 0,
    store=None,
    restore: bool = False,
    ready: Optional[Callable[[int], None]] = None,
) -> None:
    """Blocking entry point of ``repro serve``.

    Builds the app inside a fresh event loop (restoring from the
    store's latest checkpoint when *restore* is set) and serves until
    shutdown.
    """

    async def _main() -> None:
        if restore:
            from repro.service.checkpoint import restore_app

            app = restore_app(store, clock=None)
        else:
            app = ServiceApp(spec, store=store)
        await serve_app(app, host, port, ready=ready)

    asyncio.run(_main())
