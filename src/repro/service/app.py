"""The admission daemon: one :class:`StreamSession` per tenant, async.

:class:`ServiceApp` is the transport-agnostic core of ``repro serve``:
a long-lived asyncio application hosting one incremental
:class:`~repro.streaming.engine.StreamSession` per tenant behind five
JSON endpoints (``submit`` / ``status`` / ``schedule`` / ``metrics`` /
``checkpoint``).  The HTTP framing lives in :mod:`repro.service.http`
and a real daemon is just ``start_http_server(app, ...)``; tests and
the in-process benchmark drive :meth:`ServiceApp.handle` directly, so
every behaviour is provable without sockets.

Design points:

* **Per-tenant admission queues with backpressure.**  A submission
  enters its tenant's bounded queue (depth from the scenario's
  ``service`` section) and is admitted by that tenant's single worker
  coroutine, strictly FIFO.  A full queue rejects with HTTP 429 and a
  ``Retry-After`` hint instead of queueing -- the daemon never falls
  arbitrarily far behind a tenant.
* **Determinism.**  A tenant's schedule depends only on its own
  submission sequence (each tenant owns an independent session), so
  any interleaving of concurrent tenants yields per-tenant outcomes
  bit-identical to replaying each tenant's arrivals through a private
  :class:`StreamSession` -- the property
  ``tests/test_service_concurrency.py`` pins down.
* **Validated serving.**  ``schedule`` runs
  :func:`repro.validate.validate_schedule` over the tenant's schedule
  *before* returning it; an invalid schedule is a 500, never a served
  result.
* **Degraded tenants, not dead daemons.**  An admission that raises
  out of a tenant's session marks that tenant *degraded* instead of
  killing its drain worker: further submissions to it get a 503 with a
  ``Retry-After`` hint, its status row and ``healthz`` report the
  error, and every other tenant keeps serving untouched.
* **Observability.**  The app owns a
  :class:`~repro.obs.meters.MetricsRegistry`: the
  ``service.admission_latency`` histogram (checked against the SLO
  threshold, breaches counted in ``service.slo_violations``),
  per-tenant ``service.queue_depth.<tenant>`` gauges and the
  submission/rejection counters.  ``checkpoint`` persists the snapshot
  as a telemetry summary, so ``repro metrics <store>`` reports the
  daemon's p50/p99 next to any other stored run.
* **Checkpoint/restore.**  The admitted and still-queued arrivals of
  every tenant serialise through the campaign store's generic
  ``service`` channel (:mod:`repro.service.checkpoint`); a restored
  daemon re-feeds each tenant's admitted arrivals through the same
  deterministic engine and therefore resumes **bit-identically**.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.dag.io import ptg_from_dict, ptg_to_dict
from repro.exceptions import ConfigurationError, ReproError, ServiceError
from repro.obs import trace
from repro.obs.meters import MetricsRegistry
from repro.scenarios.registry import ALLOCATORS, PLATFORMS, STRATEGIES
from repro.scenarios.spec import ScenarioSpec
from repro.service.spec import ServiceSpec
from repro.streaming.engine import Arrival, StreamSession
from repro.streaming.run import schedule_to_rows
from repro.validate import validate_schedule


@dataclass(frozen=True)
class Request:
    """One transport-agnostic request: method, path, query, JSON body."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    body: Optional[Dict] = None


@dataclass(frozen=True)
class Response:
    """One JSON response: status code, document, extra headers."""

    status: int
    body: Dict
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True for 2xx statuses."""
        return 200 <= self.status < 300


class TenantState:
    """Live state of one tenant: its session, queue and bookkeeping."""

    def __init__(self, name: str, session: StreamSession, queue_depth: int) -> None:
        self.name = name
        self.session = session
        self.queue: "asyncio.Queue[Tuple[Arrival, float]]" = asyncio.Queue(
            maxsize=queue_depth
        )
        #: Mirror of the queue contents (checkpointing needs to read the
        #: not-yet-admitted arrivals without consuming the queue).
        self.pending: Deque[Arrival] = deque()
        self.worker: Optional["asyncio.Task"] = None
        #: ``(time, name)`` of the latest submission accepted (queued or
        #: admitted) -- the monotonicity guard runs at submit time so
        #: clients get a 409 instead of a dead worker.
        self.last_key: Optional[Tuple[float, str]] = None
        self.seen_names: set = set()
        self.slo_violations = 0
        self.admissions = 0
        #: Set when an admission raised out of the session: a short
        #: ``TypeName: message`` summary.  A degraded tenant rejects new
        #: submissions with 503 until the daemon restarts it; the other
        #: tenants keep serving.
        self.degraded: Optional[str] = None

    @property
    def depth(self) -> int:
        """Number of submissions queued but not yet admitted."""
        return len(self.pending)


class ServiceApp:
    """The admission daemon's application core (transport-agnostic).

    Parameters
    ----------
    spec:
        The scenario describing the pipeline every tenant session runs
        (platform, allocator, strategy, packing) plus the optional
        ``service`` section with the queue/SLO limits.  Streaming specs
        work as-is (their ``arrivals`` section seeds the workload
        clients submit); batch specs work too -- tenants always submit
        their own arrivals.
    store:
        Optional :class:`~repro.campaigns.store.CampaignStore` (or
        path) checkpoints persist to; without one, ``checkpoint``
        returns 400.
    clock:
        Injectable wall clock (seconds, monotonic) used for
        admission-latency tracking -- the fault-injection tests pin it.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        store=None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if spec.pipeline.mapper != "ready-list":
            raise ConfigurationError(
                f"the admission daemon maps with the ready-list discipline "
                f"(like every streaming run); got pipeline.mapper="
                f"{spec.pipeline.mapper!r}"
            )
        self.spec = spec
        self.service = spec.service if spec.service is not None else ServiceSpec()
        self.platform = PLATFORMS.create(spec.platform)
        self.strategy_name = spec.resolved_strategy_names()[0]
        if store is not None and not hasattr(store, "append_payload"):
            from repro.campaigns.store import CampaignStore

            store = CampaignStore(store)
        self.store = store
        self._clock = clock if clock is not None else time.perf_counter
        self.registry = MetricsRegistry()
        self.tenants: Dict[str, TenantState] = {}
        # created lazily inside the serving loop: pre-3.10 asyncio
        # primitives bind their loop at construction time
        self._shutdown_event: Optional[asyncio.Event] = None
        self._started_at = self._clock()

    @property
    def shutdown_event(self) -> asyncio.Event:
        """The event ``POST /shutdown`` sets (created on first use)."""
        if self._shutdown_event is None:
            self._shutdown_event = asyncio.Event()
        return self._shutdown_event

    # ------------------------------------------------------------------ #
    # tenant lifecycle
    # ------------------------------------------------------------------ #
    def _new_session(self) -> StreamSession:
        """One fresh per-tenant session from the scenario's pipeline."""
        strategy = STRATEGIES.create(
            self.strategy_name,
            mu=self.spec.pipeline.mu,
            family=self.spec.resolved_family(),
        )
        allocator = ALLOCATORS.create(self.spec.pipeline.allocator)
        return StreamSession(
            self.platform,
            strategy=strategy,
            allocator=allocator,
            enable_packing=self.spec.pipeline.packing,
        )

    def tenant(self, name: str, create: bool = True) -> TenantState:
        """The state of tenant *name*, created on first use.

        With ``create=False`` an unknown tenant raises
        :class:`~repro.exceptions.ServiceError` (mapped to HTTP 404).
        """
        state = self.tenants.get(name)
        if state is None:
            if not create:
                raise ServiceError(f"unknown tenant {name!r}", status=404)
            if not isinstance(name, str) or not name or len(name) > 100:
                raise ServiceError(
                    f"tenant must be a non-empty string of at most 100 "
                    f"characters, got {name!r}",
                    status=400,
                )
            state = self.tenants[name] = TenantState(
                name, self._new_session(), self.service.queue_depth
            )
            self.registry.gauge("service.tenants").set(len(self.tenants))
        return state

    def _ensure_worker(self, tenant: TenantState) -> None:
        """Start the tenant's admission worker if it is not running."""
        if tenant.worker is None or tenant.worker.done():
            tenant.worker = asyncio.get_running_loop().create_task(
                self._drain(tenant)
            )

    async def start(self) -> None:
        """Start the admission workers of every known tenant.

        Called once inside the event loop after construction; a daemon
        restored from a checkpoint starts draining its re-queued
        pending arrivals here.
        """
        for tenant in self.tenants.values():
            self._ensure_worker(tenant)

    async def _drain(self, tenant: TenantState) -> None:
        """Admission worker of one tenant: strictly FIFO, one at a time."""
        registry = self.registry
        while True:
            arrival, enqueued_at = await tenant.queue.get()
            try:
                with trace.span(
                    "service.admit", tenant=tenant.name, app=arrival.ptg.name
                ):
                    tenant.session.admit(arrival)
                tenant.admissions += 1
                latency = self._clock() - enqueued_at
                registry.histogram("service.admission_latency").observe(latency)
                registry.counter("service.admissions").inc()
                if latency > self.service.slo:
                    tenant.slo_violations += 1
                    registry.counter("service.slo_violations").inc()
            except Exception as exc:  # noqa: BLE001 -- the worker must survive
                # a raising session must not kill the drain worker (that
                # would silently poison every later submission of this
                # tenant): mark the tenant degraded, keep the loop alive
                # and keep every other tenant serving
                tenant.degraded = f"{type(exc).__name__}: {exc}"
                registry.counter("service.admission_errors").inc()
                registry.gauge("service.degraded_tenants").set(
                    sum(1 for t in self.tenants.values() if t.degraded)
                )
            finally:
                tenant.pending.popleft()
                registry.gauge(f"service.queue_depth.{tenant.name}").set(
                    tenant.depth
                )
                tenant.queue.task_done()
            # cooperative yield: long admission bursts must not starve
            # the other tenants' workers or the transport
            await asyncio.sleep(0)

    async def quiesce(self, name: Optional[str] = None) -> None:
        """Wait until the named tenant (default: all) has drained its queue."""
        tenants = (
            [self.tenant(name, create=False)]
            if name is not None
            else list(self.tenants.values())
        )
        for tenant in tenants:
            self._ensure_worker(tenant)
        await asyncio.gather(*(tenant.queue.join() for tenant in tenants))

    async def stop(self) -> None:
        """Cancel every admission worker (pending arrivals stay queued)."""
        workers = [
            t.worker for t in self.tenants.values() if t.worker is not None
        ]
        for worker in workers:
            worker.cancel()
        for worker in workers:
            try:
                await worker
            except asyncio.CancelledError:
                pass

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #
    async def handle(self, request: Request) -> Response:
        """Route one request; errors map to their JSON error responses."""
        try:
            return await self._route(request)
        except ServiceError as exc:
            return Response(exc.status, {"error": str(exc)})
        except ReproError as exc:
            return Response(400, {"error": str(exc)})
        except (TypeError, ValueError) as exc:
            return Response(400, {"error": f"malformed request: {exc}"})

    async def _route(self, request: Request) -> Response:
        """Dispatch one request to its endpoint handler."""
        route = (request.method.upper(), request.path)
        if route == ("POST", "/submit"):
            return await self._submit(request)
        if route == ("GET", "/status"):
            return await self._status(request)
        if route == ("GET", "/schedule"):
            return await self._schedule(request)
        if route == ("GET", "/metrics"):
            return await self._metrics(request)
        if route == ("POST", "/checkpoint"):
            return await self._checkpoint(request)
        if route == ("POST", "/shutdown"):
            self.shutdown_event.set()
            return Response(200, {"stopping": True})
        if route == ("GET", "/healthz"):
            degraded = sorted(
                name for name, t in self.tenants.items() if t.degraded
            )
            return Response(
                200,
                {
                    "ok": not degraded,
                    "tenants": len(self.tenants),
                    "degraded": degraded,
                },
            )
        raise ServiceError(
            f"no endpoint {request.method} {request.path}", status=404
        )

    async def _submit(self, request: Request) -> Response:
        """``POST /submit``: queue one arrival for its tenant."""
        body = request.body
        if not isinstance(body, dict):
            raise ServiceError("submit expects a JSON object body", status=400)
        tenant_name = body.get("tenant", "default")
        if "ptg" not in body:
            raise ServiceError("submit body misses the 'ptg' field", status=400)
        ptg = ptg_from_dict(body["ptg"])
        at = float(body.get("time", 0.0))
        tenant = self.tenant(tenant_name)
        arrival = Arrival(ptg, at, tenant=tenant_name)

        registry = self.registry
        registry.counter("service.submissions").inc()
        if tenant.degraded is not None:
            registry.counter("service.rejections").inc()
            return Response(
                503,
                {
                    "error": (
                        f"tenant {tenant_name!r} is degraded "
                        f"({tenant.degraded}); not accepting submissions"
                    ),
                    "retry_after": self.service.retry_after,
                },
                headers={"Retry-After": f"{self.service.retry_after:g}"},
            )
        name = ptg.name
        if name in tenant.seen_names:
            raise ServiceError(
                f"tenant {tenant_name!r} already submitted an application "
                f"named {name!r}",
                status=409,
            )
        key = (at, name)
        if tenant.last_key is not None and key < tenant.last_key:
            raise ServiceError(
                f"submission {name!r} at t={at} is in the past: tenant "
                f"{tenant_name!r} already submitted {tenant.last_key[1]!r} "
                f"at t={tenant.last_key[0]}",
                status=409,
            )
        try:
            tenant.queue.put_nowait((arrival, self._clock()))
        except asyncio.QueueFull:
            registry.counter("service.rejections").inc()
            return Response(
                429,
                {
                    "error": (
                        f"admission queue of tenant {tenant_name!r} is full "
                        f"({self.service.queue_depth} pending)"
                    ),
                    "retry_after": self.service.retry_after,
                },
                headers={"Retry-After": f"{self.service.retry_after:g}"},
            )
        tenant.pending.append(arrival)
        tenant.seen_names.add(name)
        tenant.last_key = key
        registry.gauge(f"service.queue_depth.{tenant_name}").set(tenant.depth)
        self._ensure_worker(tenant)
        return Response(
            202,
            {
                "tenant": tenant_name,
                "application": name,
                "queued": tenant.depth,
            },
        )

    def _tenant_status(self, tenant: TenantState) -> Dict:
        """The status document of one tenant."""
        session = tenant.session
        return {
            "admitted": session.admitted,
            "pending": tenant.depth,
            "active": session.active_applications,
            "slo_violations": tenant.slo_violations,
            "completion_times": dict(session.completions),
            "degraded": tenant.degraded,
        }

    async def _status(self, request: Request) -> Response:
        """``GET /status``: daemon-wide or (with ``?tenant=``) per-tenant."""
        name = request.query.get("tenant")
        if name is not None:
            tenant = self.tenant(name, create=False)
            return Response(200, self._tenant_status(tenant))
        return Response(
            200,
            {
                "uptime": self._clock() - self._started_at,
                "tenants": {
                    name: self._tenant_status(tenant)
                    for name, tenant in sorted(self.tenants.items())
                },
                "admissions": sum(
                    t.session.admitted for t in self.tenants.values()
                ),
                "pending": sum(t.depth for t in self.tenants.values()),
            },
        )

    async def _schedule(self, request: Request) -> Response:
        """``GET /schedule?tenant=``: the tenant's schedule, validated.

        The endpoint quiesces the tenant (every queued submission is
        admitted first) and runs the schedule-invariant validator
        before serving; an invalid schedule is a 500, never a payload.
        """
        name = request.query.get("tenant")
        if name is None:
            raise ServiceError("schedule expects ?tenant=<name>", status=400)
        tenant = self.tenant(name, create=False)
        await self.quiesce(name)
        session = tenant.session
        arrivals = session.arrivals
        report = validate_schedule(
            session.schedule,
            ptgs=[a.ptg for a in arrivals],
            platform=self.platform,
            releases={a.ptg.name: a.time for a in arrivals},
        )
        if not report.ok:
            return Response(
                500,
                {
                    "error": (
                        f"schedule of tenant {name!r} failed validation: "
                        f"{report.summary()}"
                    ),
                    "violations": [str(v) for v in report.violations[:10]],
                },
            )
        return Response(
            200,
            {
                "tenant": name,
                "valid": True,
                "rows": schedule_to_rows(session.schedule),
                "completion_times": dict(session.completions),
            },
        )

    async def _metrics(self, request: Request) -> Response:
        """``GET /metrics``: the daemon's meter snapshot plus a summary."""
        snapshot = self.registry.snapshot()
        latency = self.registry.histograms.get("service.admission_latency")
        return Response(
            200,
            {
                "metrics": snapshot,
                "tenants": len(self.tenants),
                "admissions": sum(
                    t.session.admitted for t in self.tenants.values()
                ),
                "slo": self.service.slo,
                "p50_admission_latency": (
                    latency.quantile(0.5) if latency is not None else None
                ),
                "p99_admission_latency": (
                    latency.quantile(0.99) if latency is not None else None
                ),
            },
        )

    async def _checkpoint(self, request: Request) -> Response:
        """``POST /checkpoint``: quiesce and persist every live session."""
        if self.store is None:
            raise ServiceError(
                "this daemon has no store configured (serve with --store)",
                status=400,
            )
        from repro.service.checkpoint import write_checkpoint

        await self.quiesce()
        key = write_checkpoint(self, self.store)
        return Response(
            200,
            {
                "key": key,
                "tenants": len(self.tenants),
                "admitted": sum(
                    t.session.admitted for t in self.tenants.values()
                ),
            },
        )

    # ------------------------------------------------------------------ #
    # checkpoint support
    # ------------------------------------------------------------------ #
    def snapshot_tenants(self) -> Dict[str, Dict]:
        """Serializable per-tenant state (admitted + pending arrivals).

        Call after :meth:`quiesce` for a clean cut; pending arrivals
        that remain are checkpointed too and re-queued on restore.
        """
        return {
            name: {
                "admitted": [
                    [arrival.time, ptg_to_dict(arrival.ptg)]
                    for arrival in tenant.session.arrivals
                ],
                "pending": [
                    [arrival.time, ptg_to_dict(arrival.ptg)]
                    for arrival in tenant.pending
                ],
            }
            for name, tenant in sorted(self.tenants.items())
        }

    def restore_tenant(
        self,
        name: str,
        admitted: List[Tuple[float, Dict]],
        pending: List[Tuple[float, Dict]],
    ) -> TenantState:
        """Rebuild one tenant from checkpointed arrival lists.

        The admitted arrivals are re-fed through a fresh session in
        their original admission order -- the engine is deterministic,
        so the restored schedule is bit-identical to the checkpointed
        one.  Pending arrivals are re-queued for the worker.
        """
        tenant = self.tenant(name)
        for at, payload in admitted:
            arrival = Arrival(ptg_from_dict(payload), float(at), tenant=name)
            tenant.session.admit(arrival)
            tenant.seen_names.add(arrival.ptg.name)
            tenant.last_key = (arrival.time, arrival.ptg.name)
            tenant.admissions += 1
        for at, payload in pending:
            arrival = Arrival(ptg_from_dict(payload), float(at), tenant=name)
            tenant.queue.put_nowait((arrival, self._clock()))
            tenant.pending.append(arrival)
            tenant.seen_names.add(arrival.ptg.name)
            tenant.last_key = (arrival.time, arrival.ptg.name)
        self.registry.gauge(f"service.queue_depth.{name}").set(tenant.depth)
        return tenant
