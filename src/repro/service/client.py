"""Synchronous client of the admission daemon (stdlib :mod:`http.client`).

The daemon's callers are batch submitters and smoke tests, so the
client is deliberately blocking: one request, one connection, JSON in
and out.  Backpressure handling is built in -- :meth:`ServiceClient.submit`
honours the daemon's ``Retry-After`` hint and retries until admitted
(bounded by ``max_retries``), or surfaces the 429 as a
:class:`~repro.exceptions.ServiceError` when asked not to wait.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, Optional

from repro.dag.graph import PTG
from repro.dag.io import ptg_to_dict
from repro.exceptions import ServiceError

#: Default per-request socket timeout, generous enough for a daemon
#: that is quiescing a large tenant before answering ``/schedule``.
DEFAULT_TIMEOUT = 30.0


class ServiceClient:
    """Blocking JSON client of one admission daemon.

    >>> client = ServiceClient("127.0.0.1", 8462)  # doctest: +SKIP
    >>> client.submit("tenant-a", 0.0, ptg)        # doctest: +SKIP
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = DEFAULT_TIMEOUT,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)

    def request(
        self,
        method: str,
        path: str,
        body: Optional[Dict] = None,
    ) -> Dict:
        """One HTTP round-trip; returns the decoded JSON body.

        Raises :class:`ServiceError` (carrying the HTTP status) on any
        non-2xx answer except 429, which is returned to the caller so
        submission loops can honour ``Retry-After``.
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            raw = connection.getresponse()
            answer = json.loads(raw.read().decode("utf-8") or "null")
            status = raw.status
            retry_after = raw.getheader("Retry-After")
        except (OSError, ValueError) as exc:
            raise ServiceError(
                f"request {method} {path} to "
                f"{self.host}:{self.port} failed: {exc}",
                status=503,
            ) from exc
        finally:
            connection.close()
        if status == 429:
            answer = dict(answer or {})
            answer["status"] = status
            if retry_after is not None:
                answer.setdefault("retry_after", float(retry_after))
            return answer
        if status >= 400:
            detail = (answer or {}).get("error", answer)
            raise ServiceError(
                f"{method} {path} answered {status}: {detail}", status=status
            )
        return answer if isinstance(answer, dict) else {"result": answer}

    # -- endpoints -----------------------------------------------------

    def submit(
        self,
        tenant: str,
        time_: float,
        ptg: PTG,
        wait: bool = True,
        max_retries: int = 50,
        sleep=time.sleep,
    ) -> Dict:
        """Submit one application; retries on backpressure when *wait*.

        Each 429 answer is retried after the daemon's ``Retry-After``
        hint, up to *max_retries* times; with ``wait=False`` the first
        429 raises a :class:`ServiceError` instead.
        """
        body = {"tenant": tenant, "time": float(time_), "ptg": ptg_to_dict(ptg)}
        for _attempt in range(max_retries + 1):
            answer = self.request("POST", "/submit", body)
            if answer.get("status") != 429:
                return answer
            if not wait:
                raise ServiceError(
                    f"tenant {tenant!r} queue is full "
                    f"(retry after {answer.get('retry_after')}s)",
                    status=429,
                )
            sleep(float(answer.get("retry_after", 0.05)))
        raise ServiceError(
            f"tenant {tenant!r} still backpressured after "
            f"{max_retries} retries",
            status=429,
        )

    def status(self, tenant: Optional[str] = None) -> Dict:
        """Daemon-wide status, or one tenant's with *tenant* given."""
        path = "/status"
        if tenant is not None:
            path += f"?tenant={tenant}"
        return self.request("GET", path)

    def schedule(self, tenant: str) -> Dict:
        """A tenant's validated schedule (quiesces the tenant first)."""
        return self.request("GET", f"/schedule?tenant={tenant}")

    def metrics(self) -> Dict:
        """The daemon's metrics snapshot with admission p50/p99."""
        return self.request("GET", "/metrics")

    def checkpoint(self) -> Dict:
        """Quiesce every tenant and persist a checkpoint to the store."""
        return self.request("POST", "/checkpoint")

    def shutdown(self) -> Dict:
        """Ask the daemon to stop serving (it checkpoints on exit)."""
        return self.request("POST", "/shutdown")

    def wait_ready(self, attempts: int = 50, delay: float = 0.1) -> None:
        """Block until ``/healthz`` answers (daemon finished booting)."""
        last: Optional[ServiceError] = None
        for _ in range(attempts):
            try:
                self.request("GET", "/healthz")
                return
            except ServiceError as exc:
                last = exc
                time.sleep(delay)
        raise ServiceError(
            f"daemon at {self.host}:{self.port} never became ready: {last}",
            status=503,
        )
