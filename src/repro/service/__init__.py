"""repro.service -- a long-lived async admission daemon for streaming PTGs.

The subsystems below turn the offline pipeline into a multi-tenant
scheduler-as-a-service (the deployment mode the paper's online
experiments presuppose): one deterministic
:class:`~repro.streaming.engine.StreamSession` per tenant behind
bounded admission queues, JSON-over-HTTP endpoints
(``submit / status / schedule / metrics / checkpoint``), SLO-tracked
admission latency through :mod:`repro.obs` meters, and graceful
checkpoint/restore through the campaign store so a restarted daemon
resumes every tenant bit-identically.

Only :class:`ServiceSpec` is imported eagerly -- it is what
:mod:`repro.scenarios.spec` embeds, and the application modules import
scenarios in turn, so the heavyweight names (:class:`ServiceApp`,
:class:`ServiceClient`, the checkpoint helpers) load lazily via
:pep:`562` to keep the import graph acyclic.
"""

from __future__ import annotations

from repro.service.spec import DEFAULT_QUEUE_DEPTH, DEFAULT_SLO_SECONDS, ServiceSpec

#: Lazily-resolved public names and the modules providing them.
_LAZY = {
    "ServiceApp": "repro.service.app",
    "Request": "repro.service.app",
    "Response": "repro.service.app",
    "ServiceClient": "repro.service.client",
    "SERVICE_CHANNEL": "repro.service.checkpoint",
    "checkpoint_payload": "repro.service.checkpoint",
    "write_checkpoint": "repro.service.checkpoint",
    "load_checkpoint": "repro.service.checkpoint",
    "restore_app": "repro.service.checkpoint",
    "start_http_server": "repro.service.http",
    "serve_app": "repro.service.http",
    "run_daemon": "repro.service.http",
}

__all__ = [
    "DEFAULT_QUEUE_DEPTH",
    "DEFAULT_SLO_SECONDS",
    "ServiceSpec",
] + sorted(_LAZY)


def __getattr__(name: str):
    """Resolve the application-layer names on first use (:pep:`562`)."""
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
