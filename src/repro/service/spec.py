"""Declarative service-level objectives of the admission daemon.

A :class:`ServiceSpec` is the optional ``service`` section of a
:class:`~repro.scenarios.spec.ScenarioSpec`: it fixes the per-tenant
admission queue depth (the backpressure limit behind the daemon's HTTP
429 responses), the admission-latency SLO threshold the
``service.slo_violations`` counter is checked against, and the
``Retry-After`` hint rejected clients receive.  Like the ``arrivals``
and ``telemetry`` sections before it, the section only extends the
scenario content hash **when set**, so every existing spec and store
key is unchanged.

Examples
--------
>>> spec = ServiceSpec.from_dict({"queue_depth": 8, "slo": 0.25})
>>> spec.queue_depth, spec.slo, spec.retry_after
(8, 0.25, 1.0)
>>> ServiceSpec.from_dict(spec.to_dict()) == spec
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.exceptions import ConfigurationError

#: Default per-tenant admission queue depth.
DEFAULT_QUEUE_DEPTH = 64

#: Default admission-latency SLO threshold (seconds of wall time between
#: a submission entering its tenant queue and its admission completing).
DEFAULT_SLO_SECONDS = 0.5


def _check_known_keys(payload: Dict, allowed: Sequence[str], where: str) -> None:
    """Reject non-objects and unknown keys with an error naming the allowed ones."""
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"a {where} must be a JSON object, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise ConfigurationError(
            f"unknown key(s) {unknown} in {where}; allowed: {sorted(allowed)}"
        )


@dataclass(frozen=True)
class ServiceSpec:
    """Admission-daemon limits: queue depth, latency SLO, retry hint.

    Parameters
    ----------
    queue_depth:
        Maximum number of submissions a tenant's admission queue may
        hold; a submission arriving at a full queue is rejected with
        HTTP 429 and a ``Retry-After`` header instead of being queued.
    slo:
        Admission-latency objective in seconds.  Every admission whose
        queue-to-admitted wall time exceeds it increments the
        ``service.slo_violations`` counter (the admission still
        happens -- the SLO is an observability threshold, not a
        timeout).
    retry_after:
        The ``Retry-After`` value (seconds) returned with 429
        responses; clients use it to pace their retries.
    """

    queue_depth: int = DEFAULT_QUEUE_DEPTH
    slo: float = DEFAULT_SLO_SECONDS
    retry_after: float = 1.0

    def __post_init__(self) -> None:
        """Validate and canonicalise the field values."""
        if not isinstance(self.queue_depth, int) or self.queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be a positive integer, got {self.queue_depth!r}"
            )
        slo = float(self.slo)
        if slo <= 0:
            raise ConfigurationError(f"slo must be positive, got {self.slo!r}")
        object.__setattr__(self, "slo", slo)
        retry_after = float(self.retry_after)
        if retry_after <= 0:
            raise ConfigurationError(
                f"retry_after must be positive, got {self.retry_after!r}"
            )
        object.__setattr__(self, "retry_after", retry_after)

    def to_dict(self) -> Dict:
        """Plain-JSON representation (inverse of :meth:`from_dict`)."""
        return {
            "queue_depth": self.queue_depth,
            "slo": self.slo,
            "retry_after": self.retry_after,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "ServiceSpec":
        """Build a spec from a plain dict; unknown keys raise."""
        _check_known_keys(
            payload, ("queue_depth", "slo", "retry_after"), "service spec"
        )
        return cls(**payload)

    def hash_payload(self) -> Dict:
        """The contribution to the scenario content hash (when set)."""
        return self.to_dict()
