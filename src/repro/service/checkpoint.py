"""Checkpoint/restore of live daemon sessions through the campaign store.

A checkpoint is one JSON record in the store's generic ``service``
channel (the same crash-safe append-only machinery campaign shards and
streaming scenarios persist through): the daemon's scenario spec, and
per tenant the **admitted** arrivals (in admission order) plus the
**pending** ones still queued, each arrival as its submission instant
and the full serialised PTG.  The record key is the scenario's content
hash, so checkpoints of the same service configuration overwrite each
other on read (last record wins) while different configurations coexist
in one store.

Restoring re-feeds every tenant's admitted arrivals through a fresh
:class:`~repro.streaming.engine.StreamSession` -- the engine is
deterministic, so the restored schedules are **bit-identical** to the
checkpointed ones (``tests/test_service_faults.py`` kills a daemon
mid-stream and proves the resumed run equals an uninterrupted one) --
and re-queues the pending arrivals for the admission workers.

Alongside the state record, a checkpoint persists the daemon's metrics
snapshot as a telemetry summary (the ``telemetry`` channel), so
``repro metrics <store>`` reports the service's p50/p99 admission
latency and SLO-violation counts like any other stored run.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.campaigns.store import CampaignStore
from repro.exceptions import CampaignError
from repro.obs.export import TELEMETRY_CHANNEL, telemetry_summary
from repro.obs.meters import Histogram, MetricsRegistry
from repro.scenarios.spec import ScenarioSpec
from repro.service.app import ServiceApp

#: Store channel holding admission-daemon checkpoints.
SERVICE_CHANNEL = "service"

#: Version stamp of the checkpoint record format.
CHECKPOINT_FORMAT_VERSION = 1


def checkpoint_payload(app: ServiceApp) -> Dict:
    """The plain-JSON checkpoint record of one (quiesced) daemon.

    Call :meth:`~repro.service.app.ServiceApp.quiesce` first for a
    clean admitted/pending cut; arrivals still queued at snapshot time
    are checkpointed as pending and re-queued on restore.
    """
    return {
        "checkpoint_version": CHECKPOINT_FORMAT_VERSION,
        "spec": app.spec.to_dict(),
        "tenants": app.snapshot_tenants(),
        "metrics": app.registry.snapshot(),
    }


def write_checkpoint(app: ServiceApp, store: CampaignStore) -> str:
    """Persist one checkpoint (and its telemetry summary); returns the key."""
    if not hasattr(store, "append_payload"):
        store = CampaignStore(store)
    key = app.spec.content_hash()
    store.append_payload(SERVICE_CHANNEL, key, checkpoint_payload(app))
    store.append_payload(
        TELEMETRY_CHANNEL,
        key,
        telemetry_summary(
            [],
            snapshot=app.registry.snapshot(),
            labels={"service": app.spec.label(), "key": key},
        ),
    )
    return key


def load_checkpoint(store: CampaignStore, key: Optional[str] = None) -> Dict:
    """The latest checkpoint record of a store's ``service`` channel.

    With several distinct service configurations in one store, *key*
    selects which one; a single-configuration store needs no key.
    """
    if not hasattr(store, "append_payload"):
        store = CampaignStore(store)
    records = store.payloads_by_key(SERVICE_CHANNEL)
    if not records:
        raise CampaignError(
            f"store {store.root} holds no service checkpoint"
        )
    if key is None:
        if len(records) > 1:
            raise CampaignError(
                f"store {store.root} holds checkpoints of "
                f"{len(records)} service configurations; pass the key of "
                f"the one to restore (available: {sorted(records)})"
            )
        key = next(iter(records))
    if key not in records:
        raise CampaignError(
            f"store {store.root} holds no service checkpoint under key "
            f"{key!r} (available: {sorted(records)})"
        )
    payload = records[key]
    version = payload.get("checkpoint_version")
    if version != CHECKPOINT_FORMAT_VERSION:
        raise CampaignError(
            f"unsupported service checkpoint version {version!r} (this "
            f"build reads version {CHECKPOINT_FORMAT_VERSION})"
        )
    return payload


def _restore_registry(registry: MetricsRegistry, snapshot: Dict) -> None:
    """Rebuild a registry's meters from a stored snapshot.

    Counters and histograms resume their checkpointed totals, so
    latency quantiles and SLO-violation counts accumulate across
    restarts instead of resetting.
    """
    for name, value in snapshot.get("counters", {}).items():
        registry.counter(name).value = float(value)
    for name, payload in snapshot.get("gauges", {}).items():
        gauge = registry.gauge(name)
        gauge.value = float(payload["value"])
        gauge.max = float(payload["max"])
    for name, payload in snapshot.get("histograms", {}).items():
        registry.histograms[name] = Histogram.from_dict(payload)


def restore_app(
    store,
    key: Optional[str] = None,
    clock=None,
    attach_store: bool = True,
) -> ServiceApp:
    """Rebuild a daemon from the latest checkpoint of *store*.

    Must run inside the event loop that will serve the app (the
    restored tenants' queues bind to it).  The restored daemon carries
    the checkpointed metrics forward and, with ``attach_store`` (the
    default), keeps checkpointing to the same store.

    Call :meth:`~repro.service.app.ServiceApp.start` afterwards to
    begin draining the re-queued pending arrivals.
    """
    if not hasattr(store, "append_payload"):
        store = CampaignStore(store)
    payload = load_checkpoint(store, key)
    spec = ScenarioSpec.from_dict(payload["spec"])
    app = ServiceApp(spec, store=store if attach_store else None, clock=clock)
    try:
        for name, state in payload["tenants"].items():
            app.restore_tenant(
                str(name), state["admitted"], state["pending"]
            )
    except KeyError as exc:
        raise CampaignError(
            f"service checkpoint record misses field {exc}"
        ) from None
    _restore_registry(app.registry, payload.get("metrics", {}))
    return app
