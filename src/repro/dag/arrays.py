"""Array compilation of a PTG (the ``DagArrays`` structure).

The dict-based :class:`~repro.dag.graph.PTG` is convenient to build and
query, but the scheduling hot loops (the CPA-family allocation procedures
and the mapping prioritisation) traverse the same graph thousands of
times.  This module compiles a PTG **once** into flat NumPy arrays:

* the tasks in **insertion order** (the order ``PTG.tasks()`` iterates,
  which is also the order the reference formulations fold their floating
  point sums in),
* CSR predecessor / successor adjacency, with each adjacency list sorted
  by task id so vectorized arg-max tie-breaks match the reference
  ``sorted()``-based ones,
* the cached **topological order** and **precedence levels** of the
  graph, plus the per-level member lists in exactly the order
  ``PTG.tasks_by_level()`` produces them,
* per-task ``flops`` / ``alpha`` / synthetic flags, so Amdahl timings can
  be evaluated as vectorized table lookups,
* a level-batched **DP plan** that lets the bottom-level recursion run as
  one :func:`numpy.maximum.reduceat` pass per precedence level instead of
  a Python loop over tasks and dict lookups.

The compiled object is immutable and cached on the graph
(:meth:`~repro.dag.graph.PTG.arrays`); any structural mutation of the PTG
invalidates the cache.  Both the allocation step
(:class:`repro.allocation.state.AllocationState`) and the mapping step
(:meth:`repro.mapping.base.AllocatedPTG.bottom_levels`) share the same
compilation.

Exactness
---------
Every numeric routine here reproduces the IEEE-754 operation order of the
scalar formulation it accelerates, so consumers can assert bit-identical
results against the dict-based code paths: the bottom-level DP performs
the same ``duration + max(successor levels)`` additions (``max`` itself
is exact), and consumers that need fold-left float sums over these
arrays (e.g. :class:`repro.allocation.state.AllocationState`) use
Python's built-in left-to-right ``sum`` -- the reference's own
semantics -- never the pairwise-summing :func:`numpy.sum`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

import numpy as np

from repro.exceptions import InvalidGraphError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.dag.graph import PTG

#: Below this task count the scalar (Python-list) DP specializations beat
#: the vectorized ones: a 50-task graph needs ~150 trivial float
#: operations per pass, which is cheaper than ~4 NumPy dispatches per
#: precedence level.  Both formulations are bit-identical, so the cutoff
#: is purely a performance knob.
SMALL_GRAPH_CUTOFF = 512


@dataclass(frozen=True, eq=False)
class DagArrays:
    """Flat-array view of one PTG, shared by allocation and mapping.

    All per-task arrays are indexed by the task's **insertion position**
    (the order of :meth:`repro.dag.graph.PTG.tasks`), not by task id;
    :attr:`task_ids` and :attr:`index_of` translate between the two.
    """

    #: Task ids in insertion order; ``task_ids[i]`` is the id of index ``i``.
    task_ids: np.ndarray
    #: Inverse of :attr:`task_ids`: task id -> insertion index.
    index_of: Dict[int, int]
    #: Sequential cost ``w`` of each task (flop).
    flops: np.ndarray
    #: Amdahl non-parallelizable fraction of each task.
    alpha: np.ndarray
    #: True for zero-cost synthetic entry/exit tasks.
    synthetic: np.ndarray
    #: Indices in the graph's cached topological order.
    topo: np.ndarray
    #: Precedence level of each index.
    levels: np.ndarray
    #: Indices grouped by level, in ``PTG.tasks_by_level()`` order.
    level_members: np.ndarray
    #: CSR offsets into :attr:`level_members`; level ``l`` owns
    #: ``level_members[level_offsets[l]:level_offsets[l + 1]]``.
    level_offsets: np.ndarray
    #: CSR predecessor offsets (``pred_ptr[i]:pred_ptr[i+1]`` slices
    #: :attr:`pred_idx`); adjacency sorted by predecessor task id.
    pred_ptr: np.ndarray
    #: CSR predecessor indices.
    pred_idx: np.ndarray
    #: CSR successor offsets, mirroring :attr:`pred_ptr`.
    succ_ptr: np.ndarray
    #: CSR successor indices, each list sorted by successor task id.
    succ_idx: np.ndarray
    #: Indices of the tasks without predecessors, in insertion order.
    entries: np.ndarray
    #: Indices of the tasks without successors, in insertion order.
    exits: np.ndarray

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #
    @property
    def n_tasks(self) -> int:
        """Number of tasks (synthetic entry/exit included)."""
        return int(self.task_ids.size)

    @property
    def n_edges(self) -> int:
        """Number of dependency edges."""
        return int(self.succ_idx.size)

    @property
    def depth(self) -> int:
        """Number of precedence levels."""
        return int(self.level_offsets.size - 1)

    def successors_of(self, index: int) -> np.ndarray:
        """Successor indices of *index*, sorted by successor task id."""
        return self.succ_idx[self.succ_ptr[index] : self.succ_ptr[index + 1]]

    def predecessors_of(self, index: int) -> np.ndarray:
        """Predecessor indices of *index*, sorted by predecessor task id."""
        return self.pred_idx[self.pred_ptr[index] : self.pred_ptr[index + 1]]

    def level_slice(self, level: int) -> np.ndarray:
        """Member indices of precedence *level* in ``tasks_by_level`` order."""
        if level < 0 or level >= self.depth:
            raise InvalidGraphError(f"no precedence level {level} (depth {self.depth})")
        return self.level_members[
            self.level_offsets[level] : self.level_offsets[level + 1]
        ]

    # ------------------------------------------------------------------ #
    # plain-Python mirrors (cached; cheap scalar access for small graphs)
    # ------------------------------------------------------------------ #
    @cached_property
    def task_ids_tuple(self) -> Tuple[int, ...]:
        """:attr:`task_ids` as a tuple of Python ints (no NumPy boxing)."""
        return tuple(self.task_ids.tolist())

    @cached_property
    def synthetic_tuple(self) -> Tuple[bool, ...]:
        """:attr:`synthetic` as a tuple of Python bools."""
        return tuple(self.synthetic.tolist())

    @cached_property
    def flops_tuple(self) -> Tuple[float, ...]:
        """:attr:`flops` as a tuple of Python floats."""
        return tuple(self.flops.tolist())

    @cached_property
    def alpha_tuple(self) -> Tuple[float, ...]:
        """:attr:`alpha` as a tuple of Python floats."""
        return tuple(self.alpha.tolist())

    @cached_property
    def levels_tuple(self) -> Tuple[int, ...]:
        """:attr:`levels` as a tuple of Python ints."""
        return tuple(self.levels.tolist())

    @cached_property
    def entries_tuple(self) -> Tuple[int, ...]:
        """:attr:`entries` as a tuple of Python ints."""
        return tuple(self.entries.tolist())

    @cached_property
    def topo_reversed(self) -> Tuple[int, ...]:
        """Reverse topological order as a tuple of Python ints."""
        return tuple(self.topo.tolist()[::-1])

    @cached_property
    def succ_tuples(self) -> Tuple[Tuple[int, ...], ...]:
        """Per-task successor tuples (tid-sorted), indexed like :attr:`task_ids`."""
        ptr, idx = self.succ_ptr.tolist(), self.succ_idx.tolist()
        return tuple(
            tuple(idx[ptr[i] : ptr[i + 1]]) for i in range(self.n_tasks)
        )

    @cached_property
    def pred_tuples(self) -> Tuple[Tuple[int, ...], ...]:
        """Per-task predecessor tuples (tid-sorted), indexed like :attr:`task_ids`."""
        ptr, idx = self.pred_ptr.tolist(), self.pred_idx.tolist()
        return tuple(
            tuple(idx[ptr[i] : ptr[i + 1]]) for i in range(self.n_tasks)
        )

    @cached_property
    def dp_plan(
        self,
    ) -> Tuple[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray], ...]:
        """Level-batched plan for the reverse (bottom-level) DP.

        One ``(with_succ, reduce_offsets, succ_flat, without_succ)`` tuple
        per precedence level, deepest level first.  Built lazily: small
        graphs that only ever run the scalar
        :meth:`bottom_levels_py` specialization never pay for it.
        """
        succ_ptr, succ_idx = self.succ_ptr, self.succ_idx
        level_members, level_offsets = self.level_members, self.level_offsets
        plan: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        for level in range(self.depth - 1, -1, -1):
            nodes = level_members[level_offsets[level] : level_offsets[level + 1]]
            counts = succ_ptr[nodes + 1] - succ_ptr[nodes]
            with_succ = nodes[counts > 0]
            without_succ = nodes[counts == 0]
            if with_succ.size:
                succ_flat = np.concatenate(
                    [succ_idx[succ_ptr[i] : succ_ptr[i + 1]] for i in with_succ]
                )
                offsets = np.zeros(with_succ.size, dtype=np.int64)
                np.cumsum(
                    (succ_ptr[with_succ + 1] - succ_ptr[with_succ])[:-1],
                    out=offsets[1:],
                )
            else:
                succ_flat = np.empty(0, dtype=np.int64)
                offsets = np.empty(0, dtype=np.int64)
            plan.append((with_succ, offsets, succ_flat, without_succ))
        return tuple(plan)

    @cached_property
    def level_tuples(self) -> Tuple[Tuple[int, ...], ...]:
        """Per-level member tuples in ``tasks_by_level`` order."""
        ptr, members = self.level_offsets.tolist(), self.level_members.tolist()
        return tuple(
            tuple(members[ptr[l] : ptr[l + 1]]) for l in range(self.depth)
        )

    # ------------------------------------------------------------------ #
    # vectorized graph algorithms
    # ------------------------------------------------------------------ #
    def bottom_levels(self, durations: np.ndarray) -> np.ndarray:
        """Bottom level of every task under the given *durations*.

        Implements ``bl(v) = T(v) + max_{w in succ(v)} bl(w)`` as one
        vectorized :func:`numpy.maximum.reduceat` pass per precedence
        level (deepest first), which is valid because every successor
        lives at a strictly deeper level.  The additions follow the exact
        scalar operation order of :meth:`repro.dag.graph.PTG.bottom_levels`
        with no communication function, so the resulting floats are
        bit-identical to the dict-based recursion.
        """
        bl = np.zeros(self.n_tasks, dtype=np.float64)
        for with_succ, offsets, succ_flat, without_succ in self.dp_plan:
            if without_succ.size:
                bl[without_succ] = durations[without_succ]
            if with_succ.size:
                best = np.maximum.reduceat(bl[succ_flat], offsets)
                bl[with_succ] = durations[with_succ] + np.maximum(best, 0.0)
        return bl

    def critical_path_length(self, durations: np.ndarray) -> float:
        """Critical path length (seconds) under *durations*."""
        if self.n_tasks == 0:
            return 0.0
        return float(self.bottom_levels(durations).max())

    def critical_path(self, bl: np.ndarray) -> List[int]:
        """Indices along one critical path, from entry to exit.

        *bl* is a bottom-level array previously returned by
        :meth:`bottom_levels`.  Tie-breaks reproduce
        :meth:`repro.dag.graph.PTG.critical_path`: the entry (and each
        successor step) with the maximal bottom level wins, ties going to
        the smallest task id -- which is why the CSR adjacency is stored
        sorted by task id, making ``argmax`` pick the right duplicate.
        """
        if self.n_tasks == 0:
            return []
        entry_bl = bl[self.entries]
        best = entry_bl.max()
        tied = self.entries[entry_bl == best]
        current = int(tied[np.argmin(self.task_ids[tied])])
        path = [current]
        succ_ptr, succ_idx = self.succ_ptr, self.succ_idx
        while succ_ptr[current] != succ_ptr[current + 1]:
            succs = succ_idx[succ_ptr[current] : succ_ptr[current + 1]]
            current = int(succs[np.argmax(bl[succs])])
            path.append(current)
        return path

    def bottom_levels_py(self, durations: List[float]) -> List[float]:
        """Scalar bottom-level DP over Python lists (small-graph fast path).

        Bit-identical to :meth:`bottom_levels` -- it performs the very
        same additions and (exact) maxima in reverse topological order --
        but avoids all NumPy dispatch overhead, which dominates on graphs
        below :data:`SMALL_GRAPH_CUTOFF` tasks.  *durations* and the
        result are plain Python lists indexed like :attr:`task_ids`.
        """
        bl = [0.0] * self.n_tasks
        succ_of = self.succ_tuples
        for v in self.topo_reversed:
            best = 0.0
            for s in succ_of[v]:
                w = bl[s]
                if w > best:
                    best = w
            bl[v] = durations[v] + best
        return bl

    def critical_path_py(self, bl: List[float]) -> List[int]:
        """Scalar critical-path walk over a Python bottom-level list.

        Same tie-breaks as :meth:`critical_path` (maximal bottom level,
        ties to the smallest task id) without NumPy per-step overhead.
        """
        if self.n_tasks == 0:
            return []
        task_ids = self.task_ids_tuple
        current = best_tid = None
        best = float("-inf")
        for i in self.entries_tuple:
            w = bl[i]
            tid = task_ids[i]
            if w > best or (w == best and tid < best_tid):
                best, best_tid, current = w, tid, i
        path = [current]
        succ_of = self.succ_tuples
        succs = succ_of[current]
        while succs:
            # adjacency is tid-sorted, so the first maximal bottom level
            # is the smallest-tid tie-break of the reference walk
            best = float("-inf")
            for s in succs:
                w = bl[s]
                if w > best:
                    best, current = w, s
            path.append(current)
            succs = succ_of[current]
        return path



#: Per-graph list fields gathered by :func:`_gather`, with the dtype the
#: concatenated arena (or the single-graph array) is built with.
_FIELD_DTYPES: Tuple[Tuple[str, type], ...] = (
    ("task_ids", np.int64),
    ("flops", np.float64),
    ("alpha", np.float64),
    ("synthetic", bool),
    ("topo", np.int64),
    ("levels", np.int64),
    ("level_members", np.int64),
    ("level_offsets", np.int64),
    ("pred_ptr", np.int64),
    ("pred_idx", np.int64),
    ("succ_ptr", np.int64),
    ("succ_idx", np.int64),
    ("entries", np.int64),
    ("exits", np.int64),
)


def _gather(ptg: "PTG") -> Dict[str, object]:
    """Collect one graph's compilation data as plain Python lists.

    Shared by :func:`compile_arrays` (which wraps each list in its own
    array) and :func:`compile_arrays_batch` (which concatenates the lists
    of a whole batch into one arena per field).  All indices are local to
    the graph, so a slice of the concatenated arena is exactly the array
    the single-graph compilation would have produced.
    """
    tasks = ptg.tasks()
    n = len(tasks)
    task_ids = [t.task_id for t in tasks]
    index_of = {tid: i for i, tid in enumerate(task_ids)}

    # the graph's cached topological order and precedence levels; their
    # iteration order defines the per-level member order reproduced below
    topo = [index_of[tid] for tid in ptg.topological_order()]
    level_of = ptg.precedence_levels()
    levels = [level_of[t.task_id] for t in tasks]
    depth = max(levels) + 1 if n else 0
    members_per_level: List[List[int]] = [[] for _ in range(depth)]
    for tid, level in level_of.items():  # dict order == tasks_by_level order
        members_per_level[level].append(index_of[tid])
    level_members: List[int] = []
    level_offsets: List[int] = [0]
    for members in members_per_level:
        level_members.extend(members)
        level_offsets.append(len(level_members))

    # CSR adjacency, each list sorted by neighbour task id so vectorized
    # argmax tie-breaks match the reference sorted() iteration
    pred_ptr: List[int] = [0]
    succ_ptr: List[int] = [0]
    pred_idx: List[int] = []
    succ_idx: List[int] = []
    for task in tasks:
        pred_idx.extend(index_of[p] for p in sorted(ptg.predecessors(task.task_id)))
        succ_idx.extend(index_of[s] for s in sorted(ptg.successors(task.task_id)))
        pred_ptr.append(len(pred_idx))
        succ_ptr.append(len(succ_idx))

    return {
        "task_ids": task_ids,
        "index_of": index_of,
        "flops": [t.flops for t in tasks],
        "alpha": [t.alpha for t in tasks],
        "synthetic": [t.is_synthetic for t in tasks],
        "topo": topo,
        "levels": levels,
        "level_members": level_members,
        "level_offsets": level_offsets,
        "pred_ptr": pred_ptr,
        "pred_idx": pred_idx,
        "succ_ptr": succ_ptr,
        "succ_idx": succ_idx,
        "entries": [i for i in range(n) if pred_ptr[i] == pred_ptr[i + 1]],
        "exits": [i for i in range(n) if succ_ptr[i] == succ_ptr[i + 1]],
    }


def compile_arrays(ptg: "PTG") -> DagArrays:
    """Compile *ptg* into a :class:`DagArrays`.

    Prefer :meth:`repro.dag.graph.PTG.arrays`, which caches the result on
    the graph and invalidates it on mutation.  Raises
    :class:`~repro.exceptions.InvalidGraphError` for an empty or cyclic
    graph (via the graph's own topological sort).
    """
    if ptg.n_tasks == 0:
        raise InvalidGraphError(f"PTG {ptg.name!r} is empty")
    gathered = _gather(ptg)
    return DagArrays(
        index_of=gathered["index_of"],
        **{
            name: np.array(gathered[name], dtype=dtype)
            for name, dtype in _FIELD_DTYPES
        },
    )


def compile_arrays_batch(ptgs: Sequence["PTG"]) -> List[DagArrays]:
    """Compile a batch of PTGs at once, sharing one backing arena.

    For every graph without a cached compilation, the per-field data of
    the whole batch is concatenated and converted with **one**
    list-to-array pass per field; each graph's :class:`DagArrays` then
    views its slice of the shared buffers.  Amortizing the array
    construction this way makes admitting a :meth:`StreamSession.feed
    <repro.streaming.engine.StreamSession.feed>` chunk or a campaign
    shard noticeably cheaper than compiling arrival-by-arrival, while the
    per-graph values stay identical to :func:`compile_arrays` (the same
    Python lists feed the same dtype conversion).

    Results are seeded into each graph's cache, so a later
    :meth:`~repro.dag.graph.PTG.arrays` call reuses them; graphs already
    compiled are left untouched.  Raises
    :class:`~repro.exceptions.InvalidGraphError` on an empty or cyclic
    graph, like the single-graph compilation.
    """
    pending: List["PTG"] = []
    seen_ids = set()
    for ptg in ptgs:
        if id(ptg) in seen_ids or "arrays" in ptg._cache:
            continue
        seen_ids.add(id(ptg))
        if ptg.n_tasks == 0:
            raise InvalidGraphError(f"PTG {ptg.name!r} is empty")
        pending.append(ptg)

    if pending:
        gathered = [_gather(ptg) for ptg in pending]
        views: List[Dict[str, np.ndarray]] = [{} for _ in pending]
        for name, dtype in _FIELD_DTYPES:
            flat: List[object] = []
            offsets = [0]
            for g in gathered:
                flat.extend(g[name])
                offsets.append(len(flat))
            arena = np.array(flat, dtype=dtype)
            for i in range(len(pending)):
                views[i][name] = arena[offsets[i] : offsets[i + 1]]
        for ptg, g, kwargs in zip(pending, gathered, views):
            ptg._cache["arrays"] = DagArrays(index_of=g["index_of"], **kwargs)

    return [ptg.arrays() for ptg in ptgs]
