"""FFT parallel task graph.

The paper evaluates its heuristics on Fast Fourier Transform PTGs, "a
classical test case for PTG scheduling algorithms", referring to Cormen et
al. for the structure.  We build the standard FFT task graph used in the
scheduling literature (e.g. the HEFT paper) for an input vector of
``n = 2**k`` points:

* a **recursive-splitting phase**: a complete binary tree of ``2n - 1``
  tasks (depth ``k + 1``) that recursively splits the input vector,
* a **butterfly phase**: ``k`` levels of ``n`` butterfly tasks each
  (``n * k`` tasks) that combine the partial results.

The total task count is ``2n - 1 + n*log2(n)``, i.e. 15, 39 and 95 tasks
for n = 4, 8 and 16.  The paper quotes "15, 37 and 95 tasks" for its FFT
graphs of "4, 8 or 16 levels"; the 4- and 16-point graphs match exactly
and we attribute the 37-vs-39 difference for n = 8 to a transcription
artefact (the structure is identical).

All tasks of a given level have the same cost, which is the defining
regularity property the paper relies on ("every task in a given level
have the same cost").
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.dag.cost_models import (
    ComplexityClass,
    sample_a_factor,
    sample_alpha,
    sample_data_elements,
    sequential_flops,
    MIN_DATA_ELEMENTS,
    MAX_DATA_ELEMENTS,
)
from repro.dag.graph import PTG
from repro.dag.task import Task
from repro.exceptions import ConfigurationError
from repro.utils.rng import ensure_rng

#: FFT sizes used in the paper's evaluation (yielding 15 / 39 / 95 tasks).
PAPER_FFT_SIZES = (4, 8, 16)


def fft_task_count(n_points: int) -> int:
    """Number of tasks of the FFT PTG for an *n_points*-point transform."""
    k = _check_power_of_two(n_points)
    return 2 * n_points - 1 + n_points * k


def _check_power_of_two(n_points: int) -> int:
    """Validate *n_points* and return ``log2(n_points)``."""
    if not isinstance(n_points, int) or n_points < 2:
        raise ConfigurationError(
            f"n_points must be an integer power of two >= 2, got {n_points!r}"
        )
    k = int(round(math.log2(n_points)))
    if 2**k != n_points:
        raise ConfigurationError(
            f"n_points must be a power of two, got {n_points!r}"
        )
    return k


def generate_fft_ptg(
    n_points: int = 8,
    rng=None,
    data_elements: Optional[float] = None,
    alpha: Optional[float] = None,
    a_factor: Optional[float] = None,
    name: Optional[str] = None,
) -> PTG:
    """Build the FFT PTG for an *n_points*-point transform.

    Parameters
    ----------
    n_points:
        Transform size (power of two).  The paper uses 4, 8 and 16.
    rng:
        Random source for the sampled parameters (dataset size and Amdahl
        alpha) when they are not given explicitly.
    data_elements:
        Dataset size ``d`` manipulated by the whole transform.  Each task
        of the graph works on a slice of it; when ``None`` it is drawn
        from the paper's [4M, 121M] range.
    alpha:
        Amdahl non-parallelizable fraction common to all tasks; drawn in
        [0, 0.25] when ``None``.
    a_factor:
        Multiplicative factor of the log-linear cost model, common to all
        tasks of the transform ("tasks often perform multiple
        iterations"); drawn in [2**6, 2**9] when ``None``, like the
        random PTGs, so FFT workloads have costs in the same range.
    name:
        Application name (default ``"fft-<n_points>"``).

    Returns
    -------
    PTG
        Validated graph with ``fft_task_count(n_points)`` computational
        tasks: a single entry task (the root of the splitting tree) and a
        zero-cost synthetic exit task joining the last butterfly level
        (so ``len(graph.real_tasks()) == fft_task_count(n_points)``).
    """
    generator = ensure_rng(rng)
    k = _check_power_of_two(n_points)
    if data_elements is None:
        data_elements = sample_data_elements(generator, MIN_DATA_ELEMENTS, MAX_DATA_ELEMENTS)
    if alpha is None:
        alpha = sample_alpha(generator)
    if a_factor is None:
        a_factor = sample_a_factor(generator)
    if data_elements <= 0:
        raise ConfigurationError("data_elements must be positive")
    if not (0.0 <= alpha <= 1.0):
        raise ConfigurationError("alpha must be in [0, 1]")
    if a_factor <= 0:
        raise ConfigurationError("a_factor must be positive")

    graph = PTG(name or f"fft-{n_points}")
    next_id = 0

    def make_task(level_points: float) -> Task:
        """One task operating on *level_points* elements (log-linear cost)."""
        nonlocal next_id
        flops = sequential_flops(ComplexityClass.LOG_LINEAR, level_points, a_factor=a_factor)
        task = Task(
            task_id=next_id,
            flops=flops,
            alpha=alpha,
            data_elements=level_points,
            complexity=ComplexityClass.LOG_LINEAR,
        )
        graph.add_task(task)
        next_id += 1
        return task

    # ------------------------------------------------------------------ #
    # recursive splitting phase: a binary tree of depth k (2n - 1 tasks)
    # ------------------------------------------------------------------ #
    # tree_levels[l] holds the task ids of depth l (2**l tasks each
    # operating on data_elements / 2**l elements).
    tree_levels: List[List[int]] = []
    for level in range(k + 1):
        level_tasks: List[int] = []
        points = data_elements / (2**level)
        for _ in range(2**level):
            level_tasks.append(make_task(points).task_id)
        tree_levels.append(level_tasks)
        if level > 0:
            parents = tree_levels[level - 1]
            for idx, tid in enumerate(level_tasks):
                parent = parents[idx // 2]
                graph.add_edge(parent, tid, graph.task(parent).output_bytes / 2.0)

    # ------------------------------------------------------------------ #
    # butterfly phase: k levels of n tasks
    # ------------------------------------------------------------------ #
    previous_level = tree_levels[-1]  # n leaves of the splitting tree
    leaf_expansion = n_points // len(previous_level)  # == 1 by construction
    butterfly_prev: List[int] = []
    for leaf in previous_level:
        for _ in range(leaf_expansion):
            butterfly_prev.append(leaf)

    points_per_task = data_elements / n_points
    for level in range(k):
        current: List[int] = [make_task(points_per_task).task_id for _ in range(n_points)]
        stride = 2**level
        for i in range(n_points):
            partner = i ^ stride  # classic butterfly pairing
            src_a = butterfly_prev[i]
            src_b = butterfly_prev[partner]
            graph.add_edge(src_a, current[i], graph.task(src_a).output_bytes)
            if not graph.has_edge(src_b, current[i]):
                graph.add_edge(src_b, current[i], graph.task(src_b).output_bytes)
        butterfly_prev = current

    # single exit task
    graph.ensure_single_entry_exit()
    graph.validate()
    return graph


def paper_fft_workload(rng=None, n_ptgs: int = 4, name_prefix: str = "fft") -> List[PTG]:
    """A workload of *n_ptgs* FFT PTGs with sizes drawn from the paper's set."""
    generator = ensure_rng(rng)
    if n_ptgs < 1:
        raise ConfigurationError(f"n_ptgs must be positive, got {n_ptgs}")
    workload = []
    for i in range(n_ptgs):
        size = int(generator.choice(list(PAPER_FFT_SIZES)))
        workload.append(
            generate_fft_ptg(size, rng=generator, name=f"{name_prefix}-{i}-n{size}")
        )
    return workload
