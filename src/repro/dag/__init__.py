"""Parallel task graph (PTG) model and application generators.

A PTG is a Directed Acyclic Graph whose nodes are *moldable data-parallel
tasks* and whose edges carry the amount of data exchanged (and possibly
redistributed) between tasks.  This package provides:

* :mod:`repro.dag.cost_models` -- the paper's task cost model: a task
  operates on a dataset of ``d`` double-precision elements, its sequential
  cost follows one of three complexity classes (``a*d``, ``a*d*log d``,
  ``d^(3/2)``) and its parallel execution time follows Amdahl's law with a
  non-parallelizable fraction ``alpha``,
* :mod:`repro.dag.task` -- the :class:`Task` node type,
* :mod:`repro.dag.graph` -- the :class:`PTG` container with the graph
  algorithms used by the schedulers (topological order, precedence levels,
  bottom levels, critical path, width, work),
* :mod:`repro.dag.arrays` -- the :class:`DagArrays` flat-array (CSR)
  compilation of a PTG, cached on the graph and shared by the allocation
  and mapping hot loops,
* :mod:`repro.dag.generator` -- the random layered DAG generator
  (width / regularity / density / jump parameters, as in the authors' DAG
  generation program),
* :mod:`repro.dag.fft` and :mod:`repro.dag.strassen` -- the two regular
  applications used in the evaluation,
* :mod:`repro.dag.io` -- JSON and DOT serialisation.
"""

from repro.dag.cost_models import (
    ComplexityClass,
    AmdahlTaskModel,
    sequential_flops,
    BYTES_PER_ELEMENT,
    MIN_DATA_ELEMENTS,
    MAX_DATA_ELEMENTS,
)
from repro.dag.task import Task
from repro.dag.graph import PTG
from repro.dag.arrays import DagArrays, compile_arrays
from repro.dag.generator import RandomPTGConfig, generate_random_ptg
from repro.dag.fft import generate_fft_ptg, fft_task_count
from repro.dag.strassen import generate_strassen_ptg, STRASSEN_TASK_COUNT
from repro.dag.io import ptg_to_dict, ptg_from_dict, ptg_to_json, ptg_from_json, ptg_to_dot

__all__ = [
    "ComplexityClass",
    "AmdahlTaskModel",
    "sequential_flops",
    "BYTES_PER_ELEMENT",
    "MIN_DATA_ELEMENTS",
    "MAX_DATA_ELEMENTS",
    "Task",
    "PTG",
    "DagArrays",
    "compile_arrays",
    "RandomPTGConfig",
    "generate_random_ptg",
    "generate_fft_ptg",
    "fft_task_count",
    "generate_strassen_ptg",
    "STRASSEN_TASK_COUNT",
    "ptg_to_dict",
    "ptg_from_dict",
    "ptg_to_json",
    "ptg_from_json",
    "ptg_to_dot",
]
