"""Moldable data-parallel task.

A task is a node of a PTG.  It is *moldable*: the scheduler decides, before
execution, on how many processors (of a single cluster) it runs; the
execution time then follows the Amdahl model of
:class:`repro.dag.cost_models.AmdahlTaskModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.dag.cost_models import (
    AmdahlTaskModel,
    ComplexityClass,
    communication_bytes,
    sequential_flops,
)
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class Task:
    """A data-parallel task.

    Parameters
    ----------
    task_id:
        Identifier, unique inside its PTG.
    flops:
        Sequential computational cost ``w`` in flop.
    alpha:
        Amdahl non-parallelizable fraction in ``[0, 1]``.
    data_elements:
        Size ``d`` of the dataset the task produces, in double-precision
        elements.  It determines the volume of data sent along the task's
        outgoing edges (``8 * d`` bytes).  Zero for synthetic entry/exit
        tasks that carry no data.
    complexity:
        The complexity class the cost was derived from (informational).
    name:
        Human-readable name; defaults to ``"t<task_id>"``.

    Examples
    --------
    >>> t = Task(0, flops=1e9, alpha=0.0, data_elements=4e6)
    >>> t.execution_time(2, 1e9)
    0.5
    >>> t.output_bytes
    32000000.0
    """

    task_id: int
    flops: float
    alpha: float
    data_elements: float = 0.0
    complexity: Optional[ComplexityClass] = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.flops < 0:
            raise ConfigurationError(f"task flops must be non-negative, got {self.flops}")
        if not (0.0 <= self.alpha <= 1.0):
            raise ConfigurationError(f"task alpha must be in [0, 1], got {self.alpha}")
        if self.data_elements < 0:
            raise ConfigurationError(
                f"task data_elements must be non-negative, got {self.data_elements}"
            )
        if not self.name:
            object.__setattr__(self, "name", f"t{self.task_id}")

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    @property
    def is_synthetic(self) -> bool:
        """True for zero-cost structural tasks (virtual entry/exit nodes)."""
        return self.flops == 0.0

    @property
    def model(self) -> Optional[AmdahlTaskModel]:
        """The Amdahl model of the task, or ``None`` for synthetic tasks."""
        if self.is_synthetic:
            return None
        return AmdahlTaskModel(flops=self.flops, alpha=self.alpha)

    @property
    def output_bytes(self) -> float:
        """Data volume produced by the task (bytes), ``8 * d``."""
        return communication_bytes(self.data_elements)

    # ------------------------------------------------------------------ #
    # timing
    # ------------------------------------------------------------------ #
    def execution_time(self, processors: int, speed_flops: float) -> float:
        """Execution time on *processors* processors of speed *speed_flops*.

        Synthetic (zero-flop) tasks take no time regardless of the
        allocation.
        """
        if processors < 1:
            raise ConfigurationError(f"processors must be >= 1, got {processors}")
        if self.is_synthetic:
            return 0.0
        return AmdahlTaskModel(self.flops, self.alpha).time(processors, speed_flops)

    def area(self, processors: int, speed_flops: float) -> float:
        """Work area ``p * T(p)`` (processor-seconds); zero for synthetic tasks."""
        if self.is_synthetic:
            return 0.0
        return AmdahlTaskModel(self.flops, self.alpha).area(processors, speed_flops)

    def marginal_gain(self, processors: int, speed_flops: float) -> float:
        """Benefit of adding one processor (see :meth:`AmdahlTaskModel.marginal_gain`)."""
        if self.is_synthetic:
            return 0.0
        return AmdahlTaskModel(self.flops, self.alpha).marginal_gain(
            processors, speed_flops
        )

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_cost_model(
        cls,
        task_id: int,
        complexity: ComplexityClass,
        data_elements: float,
        a_factor: float,
        alpha: float,
        name: str = "",
    ) -> "Task":
        """Build a task from the paper's cost model parameters."""
        flops = sequential_flops(complexity, data_elements, a_factor)
        return cls(
            task_id=task_id,
            flops=flops,
            alpha=alpha,
            data_elements=data_elements,
            complexity=complexity,
            name=name,
        )

    @classmethod
    def synthetic(cls, task_id: int, name: str = "") -> "Task":
        """A zero-cost structural task (virtual entry or exit node)."""
        return cls(task_id=task_id, flops=0.0, alpha=0.0, data_elements=0.0, name=name)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Task {self.name} (w={self.flops:.3g} flop, alpha={self.alpha:.2f})"
