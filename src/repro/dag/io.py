"""Serialisation of PTGs (JSON dictionaries and Graphviz DOT).

JSON round-tripping is used to archive generated workloads next to
experiment results so a campaign can be re-run on the exact same graphs;
DOT export is a convenience for visual inspection of generated graphs.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.dag.cost_models import ComplexityClass
from repro.dag.graph import PTG
from repro.dag.task import Task
from repro.exceptions import InvalidGraphError

#: Format version written into serialised graphs.
FORMAT_VERSION = 1


def ptg_to_dict(graph: PTG) -> Dict:
    """Convert *graph* to a plain JSON-serialisable dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "name": graph.name,
        "tasks": [
            {
                "task_id": t.task_id,
                "name": t.name,
                "flops": t.flops,
                "alpha": t.alpha,
                "data_elements": t.data_elements,
                "complexity": t.complexity.value if t.complexity else None,
            }
            for t in graph.tasks()
        ],
        "edges": [
            {"src": src, "dst": dst, "data_bytes": data}
            for src, dst, data in graph.edges()
        ],
    }


def ptg_from_dict(payload: Dict) -> PTG:
    """Rebuild a :class:`PTG` from the dictionary produced by :func:`ptg_to_dict`."""
    if not isinstance(payload, dict):
        raise InvalidGraphError(f"expected a dict, got {type(payload).__name__}")
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise InvalidGraphError(
            f"unsupported PTG format version {version!r} (expected {FORMAT_VERSION})"
        )
    try:
        name = payload["name"]
        task_payloads = payload["tasks"]
        edge_payloads = payload["edges"]
    except KeyError as exc:
        raise InvalidGraphError(f"missing PTG field: {exc}") from None
    graph = PTG(name)
    for tp in task_payloads:
        complexity = (
            ComplexityClass(tp["complexity"]) if tp.get("complexity") else None
        )
        graph.add_task(
            Task(
                task_id=int(tp["task_id"]),
                flops=float(tp["flops"]),
                alpha=float(tp["alpha"]),
                data_elements=float(tp.get("data_elements", 0.0)),
                complexity=complexity,
                name=tp.get("name", ""),
            )
        )
    for ep in edge_payloads:
        graph.add_edge(int(ep["src"]), int(ep["dst"]), float(ep.get("data_bytes", 0.0)))
    return graph


def ptg_to_json(graph: PTG, indent: Optional[int] = None) -> str:
    """Serialise *graph* to a JSON string."""
    return json.dumps(ptg_to_dict(graph), indent=indent)


def ptg_from_json(text: str) -> PTG:
    """Parse a JSON string produced by :func:`ptg_to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise InvalidGraphError(f"invalid PTG JSON: {exc}") from None
    return ptg_from_dict(payload)


def ptg_to_dot(graph: PTG) -> str:
    """Render *graph* as a Graphviz DOT digraph (labels show flop counts)."""
    lines: List[str] = [f'digraph "{graph.name}" {{', "  rankdir=TB;"]
    for task in graph.tasks():
        shape = "ellipse" if not task.is_synthetic else "point"
        label = f"{task.name}\\n{task.flops:.2e} flop"
        lines.append(
            f'  t{task.task_id} [label="{label}", shape={shape}];'
        )
    for src, dst, data in graph.edges():
        lines.append(f'  t{src} -> t{dst} [label="{data:.2e} B"];')
    lines.append("}")
    return "\n".join(lines)


def save_workload(graphs: List[PTG], path: str) -> None:
    """Write a list of PTGs to *path* as a JSON array."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump([ptg_to_dict(g) for g in graphs], handle)


def load_workload(path: str) -> List[PTG]:
    """Read back a workload written by :func:`save_workload`."""
    with open(path, "r", encoding="utf-8") as handle:
        payloads = json.load(handle)
    if not isinstance(payloads, list):
        raise InvalidGraphError("workload file must contain a JSON array")
    return [ptg_from_dict(p) for p in payloads]
