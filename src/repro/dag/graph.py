"""The parallel task graph (PTG) container.

A PTG is a DAG ``G = (V, E)`` whose vertices are data-parallel
:class:`~repro.dag.task.Task` objects and whose edges carry the amount of
data (in bytes) that the source task must send to the destination task.
"Without loss of generality we assume that G has a single entry task and a
single exit task" (paper, Section 2); :meth:`PTG.ensure_single_entry_exit`
adds zero-cost synthetic tasks when a generated graph has several sources
or sinks.

The class also implements the graph quantities used throughout the
scheduling heuristics:

* **topological order** and **precedence levels** ("the precedence level
  of a task t is a if all its predecessors are at level < a and at least
  one of them is at level a-1", i.e. the longest path from the entry task
  in number of edges),
* **bottom level** -- distance to the exit task in execution time, used
  to prioritise tasks in the mapping step,
* **critical path** -- the path of maximal total execution time,
* **maximal width** -- size of the largest precedence level, one of the
  characteristics driving the PS/WPS constraint strategies,
* **total work** -- sum of the sequential costs of the tasks, the other
  characteristic used by PS-work / WPS-work.

All time-dependent quantities take a ``time_fn(task) -> seconds``
callable so the same graph code serves the allocation procedures (which
evaluate tasks on the reference cluster with their current allocation) and
the mappers (which evaluate them with their final allocation).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.dag.task import Task
from repro.exceptions import InvalidGraphError

TimeFunction = Callable[[Task], float]
CommFunction = Callable[[Task, Task, float], float]

#: Identifier offset used for synthetic entry/exit tasks added by
#: :meth:`PTG.ensure_single_entry_exit`.
_SYNTHETIC_ENTRY_NAME = "__entry__"
_SYNTHETIC_EXIT_NAME = "__exit__"


class PTG:
    """A parallel task graph.

    Parameters
    ----------
    name:
        Application name, unique within a submitted set of applications.
    tasks:
        Optional initial tasks.
    edges:
        Optional initial edges as ``(src_id, dst_id, data_bytes)`` triples.

    Examples
    --------
    >>> from repro.dag import Task, PTG
    >>> g = PTG("demo")
    >>> g.add_task(Task(0, 1e9, 0.1))
    >>> g.add_task(Task(1, 2e9, 0.1))
    >>> g.add_edge(0, 1, 8e6)
    >>> g.n_tasks
    2
    >>> g.precedence_level(1)
    1
    """

    def __init__(
        self,
        name: str,
        tasks: Optional[Iterable[Task]] = None,
        edges: Optional[Iterable[Tuple[int, int, float]]] = None,
    ) -> None:
        if not name:
            raise InvalidGraphError("a PTG needs a non-empty name")
        self.name = name
        self._tasks: Dict[int, Task] = {}
        self._succ: Dict[int, Dict[int, float]] = {}
        self._pred: Dict[int, Dict[int, float]] = {}
        self._cache: Dict[str, object] = {}
        for task in tasks or ():
            self.add_task(task)
        for src, dst, data in edges or ():
            self.add_edge(src, dst, data)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_task(self, task: Task) -> None:
        """Add *task* to the graph.  Task ids must be unique."""
        if task.task_id in self._tasks:
            raise InvalidGraphError(
                f"PTG {self.name!r}: duplicate task id {task.task_id}"
            )
        self._tasks[task.task_id] = task
        self._succ[task.task_id] = {}
        self._pred[task.task_id] = {}
        self._cache.clear()

    def add_edge(self, src_id: int, dst_id: int, data_bytes: float = 0.0) -> None:
        """Add a dependency edge carrying *data_bytes* bytes.

        Self loops and duplicate edges are rejected; cycles are detected
        lazily by :meth:`validate` / :meth:`topological_order`.
        """
        if src_id not in self._tasks:
            raise InvalidGraphError(f"PTG {self.name!r}: unknown source task {src_id}")
        if dst_id not in self._tasks:
            raise InvalidGraphError(f"PTG {self.name!r}: unknown destination task {dst_id}")
        if src_id == dst_id:
            raise InvalidGraphError(f"PTG {self.name!r}: self loop on task {src_id}")
        if dst_id in self._succ[src_id]:
            raise InvalidGraphError(
                f"PTG {self.name!r}: duplicate edge {src_id} -> {dst_id}"
            )
        if data_bytes < 0:
            raise InvalidGraphError(
                f"PTG {self.name!r}: negative data on edge {src_id} -> {dst_id}"
            )
        self._succ[src_id][dst_id] = float(data_bytes)
        self._pred[dst_id][src_id] = float(data_bytes)
        self._cache.clear()

    def ensure_single_entry_exit(self) -> None:
        """Add synthetic zero-cost entry/exit tasks if needed.

        The schedulers assume a single entry and a single exit task.  If
        the graph already satisfies this, nothing is changed.
        """
        entries = self.entry_tasks()
        exits = self.exit_tasks()
        next_id = (max(self._tasks) + 1) if self._tasks else 0
        if len(entries) != 1:
            entry = Task.synthetic(next_id, name=_SYNTHETIC_ENTRY_NAME)
            self.add_task(entry)
            for t in entries:
                self.add_edge(entry.task_id, t.task_id, 0.0)
            next_id += 1
        if len(exits) != 1:
            exit_task = Task.synthetic(next_id, name=_SYNTHETIC_EXIT_NAME)
            self.add_task(exit_task)
            for t in exits:
                self.add_edge(t.task_id, exit_task.task_id, 0.0)
        self._cache.clear()

    # ------------------------------------------------------------------ #
    # container protocol / basic queries
    # ------------------------------------------------------------------ #
    @property
    def n_tasks(self) -> int:
        """Number of tasks (including synthetic entry/exit tasks)."""
        return len(self._tasks)

    @property
    def n_edges(self) -> int:
        """Number of dependency edges."""
        return sum(len(s) for s in self._succ.values())

    def __len__(self) -> int:
        return self.n_tasks

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks.values())

    def __contains__(self, task_id: int) -> bool:
        return task_id in self._tasks

    def task(self, task_id: int) -> Task:
        """Return the task with identifier *task_id*."""
        try:
            return self._tasks[task_id]
        except KeyError:
            raise InvalidGraphError(
                f"PTG {self.name!r} has no task with id {task_id}"
            ) from None

    def tasks(self) -> List[Task]:
        """All tasks, in insertion order."""
        return list(self._tasks.values())

    def task_ids(self) -> List[int]:
        """All task identifiers, in insertion order."""
        return list(self._tasks)

    def real_tasks(self) -> List[Task]:
        """Tasks that actually compute (synthetic entry/exit excluded)."""
        return [t for t in self._tasks.values() if not t.is_synthetic]

    def edges(self) -> List[Tuple[int, int, float]]:
        """All edges as ``(src_id, dst_id, data_bytes)`` triples."""
        return [
            (src, dst, data)
            for src, succs in self._succ.items()
            for dst, data in succs.items()
        ]

    def edge_data(self, src_id: int, dst_id: int) -> float:
        """Data volume carried by the edge ``src -> dst`` (bytes)."""
        try:
            return self._succ[src_id][dst_id]
        except KeyError:
            raise InvalidGraphError(
                f"PTG {self.name!r} has no edge {src_id} -> {dst_id}"
            ) from None

    def has_edge(self, src_id: int, dst_id: int) -> bool:
        """True when the edge ``src -> dst`` exists."""
        return dst_id in self._succ.get(src_id, {})

    def predecessors(self, task_id: int) -> List[int]:
        """Ids of the direct predecessors of *task_id*."""
        self.task(task_id)
        return list(self._pred[task_id])

    def successors(self, task_id: int) -> List[int]:
        """Ids of the direct successors of *task_id*."""
        self.task(task_id)
        return list(self._succ[task_id])

    def in_degree(self, task_id: int) -> int:
        """Number of direct predecessors."""
        return len(self._pred[task_id])

    def out_degree(self, task_id: int) -> int:
        """Number of direct successors."""
        return len(self._succ[task_id])

    def entry_tasks(self) -> List[Task]:
        """Tasks without predecessors."""
        return [t for tid, t in self._tasks.items() if not self._pred[tid]]

    def exit_tasks(self) -> List[Task]:
        """Tasks without successors."""
        return [t for tid, t in self._tasks.items() if not self._succ[tid]]

    @property
    def entry_task(self) -> Task:
        """The unique entry task (raises if the graph has several)."""
        entries = self.entry_tasks()
        if len(entries) != 1:
            raise InvalidGraphError(
                f"PTG {self.name!r} has {len(entries)} entry tasks; "
                "call ensure_single_entry_exit() first"
            )
        return entries[0]

    @property
    def exit_task(self) -> Task:
        """The unique exit task (raises if the graph has several)."""
        exits = self.exit_tasks()
        if len(exits) != 1:
            raise InvalidGraphError(
                f"PTG {self.name!r} has {len(exits)} exit tasks; "
                "call ensure_single_entry_exit() first"
            )
        return exits[0]

    # ------------------------------------------------------------------ #
    # structural algorithms
    # ------------------------------------------------------------------ #
    def topological_order(self) -> List[int]:
        """Task ids in a topological order (Kahn's algorithm).

        Raises :class:`InvalidGraphError` if the graph contains a cycle.
        The result is cached until the graph is modified.
        """
        cached = self._cache.get("topo")
        if cached is not None:
            return list(cached)  # type: ignore[arg-type]
        in_deg = {tid: len(self._pred[tid]) for tid in self._tasks}
        frontier = [tid for tid, d in in_deg.items() if d == 0]
        order: List[int] = []
        while frontier:
            tid = frontier.pop()
            order.append(tid)
            for succ in self._succ[tid]:
                in_deg[succ] -= 1
                if in_deg[succ] == 0:
                    frontier.append(succ)
        if len(order) != len(self._tasks):
            raise InvalidGraphError(f"PTG {self.name!r} contains a cycle")
        self._cache["topo"] = tuple(order)
        return order

    def precedence_levels(self) -> Dict[int, int]:
        """Map every task id to its precedence level.

        The level of an entry task is 0; the level of any other task is
        one more than the maximum level of its predecessors (the paper's
        definition in Section 4).
        """
        cached = self._cache.get("levels")
        if cached is not None:
            return dict(cached)  # type: ignore[arg-type]
        levels: Dict[int, int] = {}
        for tid in self.topological_order():
            preds = self._pred[tid]
            levels[tid] = 0 if not preds else 1 + max(levels[p] for p in preds)
        self._cache["levels"] = dict(levels)
        return levels

    def precedence_level(self, task_id: int) -> int:
        """Precedence level of a single task."""
        return self.precedence_levels()[task_id]

    def tasks_by_level(self) -> Dict[int, List[int]]:
        """Group task ids by precedence level (level -> list of task ids)."""
        by_level: Dict[int, List[int]] = {}
        for tid, level in self.precedence_levels().items():
            by_level.setdefault(level, []).append(tid)
        return dict(sorted(by_level.items()))

    @property
    def depth(self) -> int:
        """Number of precedence levels."""
        if not self._tasks:
            return 0
        return max(self.precedence_levels().values()) + 1

    def level_widths(self) -> List[int]:
        """Number of tasks per precedence level, ordered by level."""
        by_level = self.tasks_by_level()
        return [len(by_level[level]) for level in sorted(by_level)]

    def max_width(self, include_synthetic: bool = False) -> int:
        """Size of the largest precedence level.

        This is the "maximal width" characteristic used by the PS-width
        and WPS-width strategies: it measures the maximum task parallelism
        the application can exploit.  Synthetic entry/exit tasks are
        excluded by default so adding them does not change the width.
        """
        if not self._tasks:
            return 0
        widths: Dict[int, int] = {}
        levels = self.precedence_levels()
        for tid, level in levels.items():
            if not include_synthetic and self._tasks[tid].is_synthetic:
                continue
            widths[level] = widths.get(level, 0) + 1
        return max(widths.values()) if widths else 0

    def total_work(self) -> float:
        """Total sequential work of the application (flop).

        This is the "work" characteristic used by the PS-work and
        WPS-work strategies.
        """
        return sum(t.flops for t in self._tasks.values())

    def total_data_bytes(self) -> float:
        """Total volume of data carried by the edges (bytes)."""
        return sum(data for _, _, data in self.edges())

    # ------------------------------------------------------------------ #
    # timed algorithms
    # ------------------------------------------------------------------ #
    def bottom_levels(
        self, time_fn: TimeFunction, comm_fn: Optional[CommFunction] = None
    ) -> Dict[int, float]:
        """Bottom level of every task.

        The bottom level of a task is its distance to the exit of the PTG
        in execution time: ``bl(v) = T(v) + max_{w in succ(v)} (c(v, w) +
        bl(w))`` where ``c`` is the (optional) communication cost.  Tasks
        are prioritised by decreasing bottom level in the mapping step.
        """
        order = self.topological_order()
        bl: Dict[int, float] = {}
        for tid in reversed(order):
            task = self._tasks[tid]
            exec_time = time_fn(task)
            best = 0.0
            for succ, data in self._succ[tid].items():
                comm = comm_fn(task, self._tasks[succ], data) if comm_fn else 0.0
                candidate = comm + bl[succ]
                if candidate > best:
                    best = candidate
            bl[tid] = exec_time + best
        return bl

    def top_levels(
        self, time_fn: TimeFunction, comm_fn: Optional[CommFunction] = None
    ) -> Dict[int, float]:
        """Top level (distance from the entry task, excluding the task itself)."""
        order = self.topological_order()
        tl: Dict[int, float] = {}
        for tid in order:
            best = 0.0
            for pred, data in self._pred[tid].items():
                pred_task = self._tasks[pred]
                comm = comm_fn(pred_task, self._tasks[tid], data) if comm_fn else 0.0
                candidate = tl[pred] + time_fn(pred_task) + comm
                if candidate > best:
                    best = candidate
            tl[tid] = best
        return tl

    def critical_path_length(
        self, time_fn: TimeFunction, comm_fn: Optional[CommFunction] = None
    ) -> float:
        """Length of the critical path (seconds) under *time_fn*."""
        if not self._tasks:
            return 0.0
        bl = self.bottom_levels(time_fn, comm_fn)
        return max(bl.values())

    def critical_path(
        self, time_fn: TimeFunction, comm_fn: Optional[CommFunction] = None
    ) -> List[int]:
        """Task ids along one critical path, from entry to exit.

        Ties are broken deterministically by task id so that the
        allocation procedures are reproducible.
        """
        if not self._tasks:
            return []
        bl = self.bottom_levels(time_fn, comm_fn)
        entries = self.entry_tasks()
        current = min(
            (t.task_id for t in entries), key=lambda tid: (-bl[tid], tid)
        )
        path = [current]
        while self._succ[current]:

            def _weight(succ_id: int) -> float:
                data = self._succ[current][succ_id]
                comm = (
                    comm_fn(self._tasks[current], self._tasks[succ_id], data)
                    if comm_fn
                    else 0.0
                )
                return comm + bl[succ_id]

            succs = sorted(self._succ[current])
            current = min(succs, key=lambda tid: (-_weight(tid), tid))
            path.append(current)
        return path

    def average_execution_time(self, time_fn: TimeFunction) -> float:
        """Mean of ``time_fn`` over the non-synthetic tasks (0 if none)."""
        real = self.real_tasks()
        if not real:
            return 0.0
        return sum(time_fn(t) for t in real) / len(real)

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def validate(self, require_single_entry_exit: bool = True) -> None:
        """Check structural invariants, raising :class:`InvalidGraphError`.

        Checks: non-empty, acyclic, connected entry/exit reachability,
        and (optionally) a single entry and a single exit task.
        """
        if not self._tasks:
            raise InvalidGraphError(f"PTG {self.name!r} is empty")
        self.topological_order()  # raises on cycles
        entries = self.entry_tasks()
        exits = self.exit_tasks()
        if not entries:
            raise InvalidGraphError(f"PTG {self.name!r} has no entry task")
        if not exits:
            raise InvalidGraphError(f"PTG {self.name!r} has no exit task")
        if require_single_entry_exit:
            if len(entries) != 1:
                raise InvalidGraphError(
                    f"PTG {self.name!r} has {len(entries)} entry tasks (expected 1)"
                )
            if len(exits) != 1:
                raise InvalidGraphError(
                    f"PTG {self.name!r} has {len(exits)} exit tasks (expected 1)"
                )

    def arrays(self):
        """The :class:`~repro.dag.arrays.DagArrays` compilation of this graph.

        Compiled lazily and cached until the graph is mutated (the cache
        is cleared by :meth:`add_task` / :meth:`add_edge`).  The compiled
        arrays are shared by the allocation hot loop
        (:class:`repro.allocation.state.AllocationState`) and the mapping
        prioritisation (:meth:`repro.mapping.base.AllocatedPTG.bottom_levels`).
        """
        cached = self._cache.get("arrays")
        if cached is None:
            from repro.dag.arrays import compile_arrays

            cached = compile_arrays(self)
            self._cache["arrays"] = cached
        return cached

    def copy(self, name: Optional[str] = None) -> "PTG":
        """A structural copy of the graph (tasks are shared, they are immutable)."""
        return PTG(name or self.name, tasks=self.tasks(), edges=self.edges())

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PTG {self.name}: {self.n_tasks} tasks, {self.n_edges} edges, "
            f"depth {self.depth}, width {self.max_width()}"
        )
