"""Task cost models (Section 2 of the paper).

Data-parallel tasks operate on a dataset of ``d`` double-precision
elements (for instance a ``sqrt(d) x sqrt(d)`` matrix).  The paper bounds
``d`` between 4M and 121M elements (processors have at most 1 GByte of
memory).  The amount of data communicated between two dependent tasks is
``8 * d`` bytes.

The sequential computational cost (in flop) of a task follows one of three
complexity classes that are representative of common applications:

* ``a * d``          -- e.g. a stencil computation on a sqrt(d) x sqrt(d) domain,
* ``a * d * log2(d)``-- e.g. sorting an array of d elements,
* ``d ** 1.5``       -- e.g. a multiplication of sqrt(d) x sqrt(d) matrices.

For the first two classes the factor ``a`` is picked randomly between
``2**6`` and ``2**9`` to capture the fact that such tasks often perform
several iterations.

Parallel execution follows **Amdahl's law**: a fraction ``alpha`` of the
sequential execution time is non-parallelizable, so the execution time of
a task of ``w`` flop on ``p`` processors of speed ``s`` flop/s is::

    T(p) = (alpha + (1 - alpha) / p) * w / s

``alpha`` is drawn uniformly between 0% and 25% in the paper.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import ensure_rng

#: Bytes per double-precision element.
BYTES_PER_ELEMENT = 8
#: Lower bound on the dataset size (elements).  Below this the task
#: "should most likely be fused with its predecessor or successor".
MIN_DATA_ELEMENTS = 4_000_000
#: Upper bound on the dataset size (elements): 1 GByte of memory / 8 bytes,
#: i.e. the paper's "d <= 121M".
MAX_DATA_ELEMENTS = 121_000_000
#: Range of the multiplicative factor ``a`` for the first two complexity classes.
A_FACTOR_MIN = 2**6
A_FACTOR_MAX = 2**9
#: Range of the Amdahl non-parallelizable fraction.
ALPHA_MIN = 0.0
ALPHA_MAX = 0.25


class ComplexityClass(enum.Enum):
    """The three task computational complexity classes of the paper.

    ``MIXED`` is the fourth experimental scenario in which each task's
    class is itself drawn at random among the three concrete classes; it
    is only meaningful as a *generator* option, a concrete task always has
    one of the three concrete classes.
    """

    LINEAR = "a*d"
    LOG_LINEAR = "a*d*log(d)"
    MATMUL = "d^1.5"
    MIXED = "mixed"

    @classmethod
    def concrete(cls) -> tuple:
        """The three classes a task can actually have."""
        return (cls.LINEAR, cls.LOG_LINEAR, cls.MATMUL)


def sequential_flops(
    complexity: ComplexityClass, data_elements: float, a_factor: float = 1.0
) -> float:
    """Sequential cost in flop of a task.

    Parameters
    ----------
    complexity:
        One of the three concrete complexity classes.
    data_elements:
        Dataset size ``d`` in double-precision elements.
    a_factor:
        Multiplicative factor ``a`` (ignored by the ``MATMUL`` class,
        which the paper defines as exactly ``d**1.5``).
    """
    if data_elements <= 0:
        raise ConfigurationError(f"data_elements must be positive, got {data_elements}")
    if complexity is ComplexityClass.LINEAR:
        return float(a_factor * data_elements)
    if complexity is ComplexityClass.LOG_LINEAR:
        return float(a_factor * data_elements * math.log2(data_elements))
    if complexity is ComplexityClass.MATMUL:
        return float(data_elements**1.5)
    raise ConfigurationError(
        f"complexity must be a concrete class, got {complexity!r}"
    )


def communication_bytes(data_elements: float) -> float:
    """Volume of data communicated between two dependent tasks (bytes)."""
    if data_elements < 0:
        raise ConfigurationError(f"data_elements must be non-negative, got {data_elements}")
    return float(BYTES_PER_ELEMENT * data_elements)


@dataclass(frozen=True)
class AmdahlTaskModel:
    """Amdahl-law parallel execution time model.

    Parameters
    ----------
    flops:
        Sequential cost ``w`` of the task in flop.
    alpha:
        Non-parallelizable fraction in ``[0, 1]``.

    Examples
    --------
    >>> m = AmdahlTaskModel(flops=1e9, alpha=0.0)
    >>> m.time(4, 1e9)
    0.25
    >>> m2 = AmdahlTaskModel(flops=1e9, alpha=1.0)
    >>> m2.time(1000, 1e9)
    1.0
    """

    flops: float
    alpha: float

    def __post_init__(self) -> None:
        if not self.flops > 0:
            raise ConfigurationError(f"flops must be positive, got {self.flops!r}")
        if not (0.0 <= self.alpha <= 1.0):
            raise ConfigurationError(f"alpha must be in [0, 1], got {self.alpha!r}")

    def time(self, processors: int, speed_flops: float) -> float:
        """Execution time on *processors* processors of speed *speed_flops*.

        ``T(p) = (alpha + (1 - alpha)/p) * flops / speed``.
        """
        if processors < 1:
            raise ConfigurationError(
                f"processors must be at least 1, got {processors!r}"
            )
        if not speed_flops > 0:
            raise ConfigurationError(
                f"speed_flops must be positive, got {speed_flops!r}"
            )
        return (self.alpha + (1.0 - self.alpha) / processors) * self.flops / speed_flops

    def speedup(self, processors: int) -> float:
        """Speedup ``T(1) / T(p)`` (independent of processor speed)."""
        return 1.0 / (self.alpha + (1.0 - self.alpha) / processors)

    def efficiency(self, processors: int) -> float:
        """Parallel efficiency ``speedup(p) / p`` in ``(0, 1]``."""
        return self.speedup(processors) / processors

    def area(self, processors: int, speed_flops: float) -> float:
        """Work area ``p * T(p)`` in processor-seconds.

        The SCRAP allocation procedure constrains the sum of task areas
        (weighted by processor speed) relative to the critical path.
        """
        return processors * self.time(processors, speed_flops)

    def marginal_gain(self, processors: int, speed_flops: float) -> float:
        """Reduction of ``T/p`` obtained by adding one processor.

        This is the benefit criterion used by CPA-family allocation
        procedures to select which critical-path task should receive one
        more processor: the task maximising
        ``T(p)/p - T(p+1)/(p+1)`` benefits the most.
        """
        t_p = self.time(processors, speed_flops)
        t_p1 = self.time(processors + 1, speed_flops)
        return t_p / processors - t_p1 / (processors + 1)


def sample_data_elements(
    rng=None,
    min_elements: float = MIN_DATA_ELEMENTS,
    max_elements: float = MAX_DATA_ELEMENTS,
) -> float:
    """Draw a dataset size ``d`` uniformly in ``[min_elements, max_elements]``."""
    generator = ensure_rng(rng)
    if min_elements <= 0 or max_elements < min_elements:
        raise ConfigurationError(
            "data element bounds must satisfy 0 < min_elements <= max_elements"
        )
    return float(generator.uniform(min_elements, max_elements))


def sample_a_factor(rng=None) -> float:
    """Draw the multiplicative factor ``a`` uniformly in ``[2**6, 2**9]``."""
    generator = ensure_rng(rng)
    return float(generator.uniform(A_FACTOR_MIN, A_FACTOR_MAX))


def sample_alpha(rng=None, low: float = ALPHA_MIN, high: float = ALPHA_MAX) -> float:
    """Draw the Amdahl non-parallelizable fraction uniformly in ``[low, high]``."""
    generator = ensure_rng(rng)
    if not (0.0 <= low <= high <= 1.0):
        raise ConfigurationError("alpha bounds must satisfy 0 <= low <= high <= 1")
    return float(generator.uniform(low, high))


def sample_complexity(rng=None, scenario: ComplexityClass = ComplexityClass.MIXED) -> ComplexityClass:
    """Pick a concrete complexity class for one task.

    When *scenario* is a concrete class, that class is returned; when it
    is :attr:`ComplexityClass.MIXED`, one of the three concrete classes is
    drawn uniformly at random (the fourth scenario of the paper).
    """
    if scenario is not ComplexityClass.MIXED:
        if scenario not in ComplexityClass.concrete():
            raise ConfigurationError(f"unknown complexity scenario {scenario!r}")
        return scenario
    generator = ensure_rng(rng)
    options = ComplexityClass.concrete()
    return options[int(generator.integers(0, len(options)))]
