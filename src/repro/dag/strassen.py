"""Strassen matrix-multiplication parallel task graph.

The second regular application of the paper's evaluation is the Strassen
matrix multiplication; "all the Strassen PTGs have the same number of
tasks (25)" and the same shape — they only differ in the costs of their
tasks.  Because every Strassen PTG has the same maximal width, the
PS-width and WPS-width strategies degenerate to ES for this application
(Section 7 / Figure 5 of the paper).

One level of Strassen's algorithm on two ``m x m`` matrices A and B is:

* a **split/distribute** task producing the 8 quadrants,
* 10 **addition** tasks S1..S10 building the operands of the seven
  products (cost ``~ (m/2)**2`` element additions),
* 7 **multiplication** tasks P1..P7 (cost ``~ (m/2)**3`` — the dominant
  work, modelled with the paper's ``d**1.5`` complexity on ``d = (m/2)**2``
  elements),
* 6 **combination** tasks assembling the four quadrants of C (C12 and C21
  need one addition each, C11 and C22 need two chained additions each),
* a **merge** exit task.

Total: 1 + 10 + 7 + 6 + 1 = **25 tasks**, matching the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dag.cost_models import (
    ComplexityClass,
    sample_alpha,
    sample_data_elements,
    sequential_flops,
    MIN_DATA_ELEMENTS,
    MAX_DATA_ELEMENTS,
)
from repro.dag.graph import PTG
from repro.dag.task import Task
from repro.exceptions import ConfigurationError
from repro.utils.rng import ensure_rng

#: Number of tasks of a Strassen PTG (fixed structure).
STRASSEN_TASK_COUNT = 25

#: Operand quadrants used by each Si addition task: (left, right) with the
#: convention of Strassen's algorithm; ``None`` means the quadrant is used
#: alone (copy).  Indices: A11, A12, A21, A22, B11, B12, B21, B22.
_S_DEFINITIONS = [
    ("A21", "A22"),  # S1 = A21 + A22
    ("S1", "A11"),   # S2 = S1 - A11        (depends on S1)
    ("A11", "A21"),  # S3 = A11 - A21
    ("A12", "S2"),   # S4 = A12 - S2        (depends on S2)
    ("B12", "B11"),  # S5 = B12 - B11
    ("B22", "S5"),   # S6 = B22 - S5        (depends on S5)
    ("B22", "B12"),  # S7 = B22 - B12
    ("S6", "B21"),   # S8 = S6 - B21        (depends on S6)
    ("A11", "A22"),  # S9 = A11 + A22 (classic variant operand)
    ("B11", "B22"),  # S10 = B11 + B22
]

#: Operands of the seven products (names refer to quadrants or Si tasks).
_P_DEFINITIONS = [
    ("S9", "S10"),   # P1
    ("S1", "B11"),   # P2
    ("A11", "S5"),   # P3
    ("A22", "S8"),   # P4 (uses S8 which chains S6 <- S5)
    ("S2", "B22"),   # P5
    ("S4", "B22"),   # P6
    ("S3", "S7"),    # P7
]

#: Combination tasks: name -> list of product dependencies.
_C_DEFINITIONS = [
    ("C11a", ["P1", "P4"]),
    ("C11", ["C11a", "P5", "P7"]),
    ("C12", ["P3", "P5"]),
    ("C21", ["P2", "P4"]),
    ("C22a", ["P1", "P2"]),
    ("C22", ["C22a", "P3", "P6"]),
]


def generate_strassen_ptg(
    rng=None,
    data_elements: Optional[float] = None,
    alpha: Optional[float] = None,
    name: Optional[str] = None,
) -> PTG:
    """Build a 25-task Strassen matrix-multiplication PTG.

    Parameters
    ----------
    rng:
        Random source for the sampled parameters when not given.
    data_elements:
        Number of elements ``d`` of the full input matrices (``d = m*m``);
        drawn from the paper's [4M, 121M] range when ``None``.
    alpha:
        Amdahl non-parallelizable fraction common to all tasks; drawn in
        [0, 0.25] when ``None``.
    name:
        Application name (default ``"strassen"``).

    Returns
    -------
    PTG
        A validated 25-task graph with one entry (split) and one exit
        (merge) task.

    Examples
    --------
    >>> g = generate_strassen_ptg(rng=0)
    >>> g.n_tasks
    25
    >>> g.max_width(include_synthetic=True) >= 7
    True
    """
    generator = ensure_rng(rng)
    if data_elements is None:
        data_elements = sample_data_elements(generator, MIN_DATA_ELEMENTS, MAX_DATA_ELEMENTS)
    if alpha is None:
        alpha = sample_alpha(generator)
    if data_elements <= 0:
        raise ConfigurationError("data_elements must be positive")
    if not (0.0 <= alpha <= 1.0):
        raise ConfigurationError("alpha must be in [0, 1]")

    quadrant_elements = data_elements / 4.0

    graph = PTG(name or "strassen")
    ids: Dict[str, int] = {}
    next_id = 0

    def add(label: str, flops: float, elements: float) -> int:
        nonlocal next_id
        graph.add_task(
            Task(
                task_id=next_id,
                flops=flops,
                alpha=alpha,
                data_elements=elements,
                complexity=ComplexityClass.LINEAR if flops < elements**1.4 else ComplexityClass.MATMUL,
                name=label,
            )
        )
        ids[label] = next_id
        next_id += 1
        return ids[label]

    # costs: additions touch each element of a quadrant once; products are
    # the d**1.5 "matmul" complexity on a quadrant.
    add_flops = sequential_flops(ComplexityClass.LINEAR, quadrant_elements, a_factor=1.0)
    mult_flops = sequential_flops(ComplexityClass.MATMUL, quadrant_elements)
    split_flops = sequential_flops(ComplexityClass.LINEAR, data_elements, a_factor=1.0)

    # entry: split A and B into quadrants
    add("split", split_flops, data_elements)

    # S additions
    for i, (left, right) in enumerate(_S_DEFINITIONS, start=1):
        label = f"S{i}"
        add(label, add_flops, quadrant_elements)
        for operand in (left, right):
            src = ids[operand] if operand in ids else ids["split"]
            if not graph.has_edge(src, ids[label]):
                graph.add_edge(src, ids[label], graph.task(src).output_bytes / 4.0)

    # P products
    for i, (left, right) in enumerate(_P_DEFINITIONS, start=1):
        label = f"P{i}"
        add(label, mult_flops, quadrant_elements)
        for operand in (left, right):
            src = ids[operand] if operand in ids else ids["split"]
            if not graph.has_edge(src, ids[label]):
                graph.add_edge(src, ids[label], graph.task(src).output_bytes / 4.0)

    # C combinations
    for label, deps in _C_DEFINITIONS:
        add(label, add_flops, quadrant_elements)
        for dep in deps:
            graph.add_edge(ids[dep], ids[label], graph.task(ids[dep]).output_bytes)

    # exit: merge the four quadrants of C
    merge = add("merge", split_flops, data_elements)
    for label in ("C11", "C12", "C21", "C22"):
        graph.add_edge(ids[label], merge, graph.task(ids[label]).output_bytes)

    graph.validate()
    if graph.n_tasks != STRASSEN_TASK_COUNT:
        raise ConfigurationError(
            f"internal error: Strassen PTG has {graph.n_tasks} tasks, expected {STRASSEN_TASK_COUNT}"
        )
    return graph


def paper_strassen_workload(rng=None, n_ptgs: int = 4, name_prefix: str = "strassen") -> List[PTG]:
    """A workload of *n_ptgs* Strassen PTGs differing only in task costs."""
    generator = ensure_rng(rng)
    if n_ptgs < 1:
        raise ConfigurationError(f"n_ptgs must be positive, got {n_ptgs}")
    return [
        generate_strassen_ptg(rng=generator, name=f"{name_prefix}-{i}")
        for i in range(n_ptgs)
    ]
