"""Random layered PTG generator.

Re-implementation of the DAG generation program referenced by the paper
(Suter's *daggen*), driven by the four shape parameters described in
Section 2:

* **width** -- "the maximum parallelism in the PTG, that is the number of
  tasks in the largest level.  A small value leads to chain graphs and a
  large value leads to fork-join graphs."
* **regularity** -- "the uniformity of the number of tasks in each level.
  A low value means that levels contain very dissimilar numbers of tasks."
* **density** -- "the number of edges between two levels of the PTG."
* **jump** -- random "jump edges" from level ``l`` to level ``l + jump``;
  ``jump = 1`` corresponds to no jumping over any level.

The paper uses graphs of 10, 20 or 50 tasks, width in {0.2, 0.5, 0.8},
regularity and density in {0.2, 0.8}, and jumps in {1, 2, 4}.

Task costs follow the cost model of :mod:`repro.dag.cost_models`: dataset
sizes uniform in [4M, 121M] elements, one of the three complexity classes
(or a random mix), a-factor uniform in [2**6, 2**9], Amdahl alpha uniform
in [0, 0.25].  Edge data volumes are ``8 * d`` bytes of the *source*
task's dataset.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.dag.cost_models import (
    ComplexityClass,
    sample_a_factor,
    sample_alpha,
    sample_complexity,
    sample_data_elements,
    MIN_DATA_ELEMENTS,
    MAX_DATA_ELEMENTS,
)
from repro.dag.graph import PTG
from repro.dag.task import Task
from repro.exceptions import ConfigurationError
from repro.utils.rng import ensure_rng

#: Parameter values used by the paper's experimental campaign.
PAPER_TASK_COUNTS = (10, 20, 50)
PAPER_WIDTHS = (0.2, 0.5, 0.8)
PAPER_REGULARITIES = (0.2, 0.8)
PAPER_DENSITIES = (0.2, 0.8)
PAPER_JUMPS = (1, 2, 4)


@dataclass(frozen=True)
class RandomPTGConfig:
    """Configuration of the random PTG generator.

    Parameters
    ----------
    n_tasks:
        Number of computational tasks (synthetic entry/exit tasks added to
        enforce a single source/sink are *not* counted).
    width:
        Shape parameter in ``(0, 1]`` controlling the maximum parallelism.
    regularity:
        Shape parameter in ``[0, 1]`` controlling level size uniformity.
    density:
        Shape parameter in ``[0, 1]`` controlling inter-level connectivity.
    jump:
        Maximum forward jump of the extra "jump edges" (1 = no jumps).
    complexity:
        Complexity scenario (one concrete class for all tasks, or
        :attr:`ComplexityClass.MIXED` for per-task random classes).
    min_data_elements, max_data_elements:
        Range of the per-task dataset size.
    alpha_max:
        Upper bound of the Amdahl non-parallelizable fraction.
    name:
        Optional application name; a default is derived from the
        parameters when omitted.
    """

    n_tasks: int = 20
    width: float = 0.5
    regularity: float = 0.5
    density: float = 0.5
    jump: int = 1
    complexity: ComplexityClass = ComplexityClass.MIXED
    min_data_elements: float = MIN_DATA_ELEMENTS
    max_data_elements: float = MAX_DATA_ELEMENTS
    alpha_max: float = 0.25
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.n_tasks, int) or self.n_tasks < 1:
            raise ConfigurationError(f"n_tasks must be a positive integer, got {self.n_tasks!r}")
        if not (0.0 < self.width <= 1.0):
            raise ConfigurationError(f"width must be in (0, 1], got {self.width!r}")
        if not (0.0 <= self.regularity <= 1.0):
            raise ConfigurationError(f"regularity must be in [0, 1], got {self.regularity!r}")
        if not (0.0 <= self.density <= 1.0):
            raise ConfigurationError(f"density must be in [0, 1], got {self.density!r}")
        if not isinstance(self.jump, int) or self.jump < 1:
            raise ConfigurationError(f"jump must be a positive integer, got {self.jump!r}")
        if not (0.0 <= self.alpha_max <= 1.0):
            raise ConfigurationError(f"alpha_max must be in [0, 1], got {self.alpha_max!r}")
        if self.min_data_elements <= 0 or self.max_data_elements < self.min_data_elements:
            raise ConfigurationError(
                "data element bounds must satisfy 0 < min <= max"
            )

    def label(self) -> str:
        """A descriptive name derived from the parameters."""
        if self.name:
            return self.name
        return (
            f"random-n{self.n_tasks}-w{self.width}-r{self.regularity}"
            f"-d{self.density}-j{self.jump}"
        )

    @classmethod
    def paper_grid(cls, n_tasks: Optional[Sequence[int]] = None) -> List["RandomPTGConfig"]:
        """The full parameter grid of the paper's experimental campaign."""
        configs: List[RandomPTGConfig] = []
        for n in n_tasks or PAPER_TASK_COUNTS:
            for width in PAPER_WIDTHS:
                for regularity in PAPER_REGULARITIES:
                    for density in PAPER_DENSITIES:
                        for jump in PAPER_JUMPS:
                            configs.append(
                                cls(
                                    n_tasks=n,
                                    width=width,
                                    regularity=regularity,
                                    density=density,
                                    jump=jump,
                                )
                            )
        return configs


def _level_sizes(rng: np.random.Generator, config: RandomPTGConfig) -> List[int]:
    """Draw the number of tasks of each precedence level.

    The expected level width is ``width * n_tasks`` (so ``width`` close to
    1 yields fork-join graphs and close to 0 yields chains).  Each level's
    size is perturbed around that target; the ``regularity`` parameter
    shrinks the perturbation.  Levels are emitted until all ``n_tasks``
    tasks are placed.
    """
    n = config.n_tasks
    target_width = max(1.0, config.width * n)
    # Low regularity => up to +/-100% deviation; high regularity => +/-0%.
    max_deviation = 1.0 - config.regularity
    sizes: List[int] = []
    remaining = n
    while remaining > 0:
        deviation = rng.uniform(-max_deviation, max_deviation)
        size = int(round(target_width * (1.0 + deviation)))
        size = max(1, min(size, remaining))
        sizes.append(size)
        remaining -= size
    return sizes


def _connect_levels(
    rng: np.random.Generator,
    graph: PTG,
    levels: List[List[int]],
    config: RandomPTGConfig,
) -> None:
    """Create forward edges between consecutive levels plus jump edges.

    Every task of level ``l > 0`` receives at least one predecessor from
    level ``l - 1`` (so precedence levels match the generation levels) and
    additional predecessors are added with probability ``density``.  Jump
    edges from level ``l`` to ``l + j`` (``2 <= j <= jump``) are then added
    with probability ``density / jump`` per candidate pair.
    """
    density = config.density
    for lvl in range(1, len(levels)):
        below = levels[lvl - 1]
        for dst in levels[lvl]:
            dst_data = graph.task(dst)
            # guaranteed parent keeps the level structure intact
            parent = below[int(rng.integers(0, len(below)))]
            graph.add_edge(parent, dst, graph.task(parent).output_bytes)
            for src in below:
                if src == parent:
                    continue
                if rng.random() < density:
                    graph.add_edge(src, dst, graph.task(src).output_bytes)
            del dst_data
    if config.jump > 1:
        for lvl in range(len(levels)):
            for j in range(2, config.jump + 1):
                target_lvl = lvl + j
                if target_lvl >= len(levels):
                    break
                for src in levels[lvl]:
                    for dst in levels[target_lvl]:
                        if graph.has_edge(src, dst):
                            continue
                        if rng.random() < density / config.jump:
                            graph.add_edge(src, dst, graph.task(src).output_bytes)


def generate_random_ptg(
    rng=None, config: Optional[RandomPTGConfig] = None, name: Optional[str] = None
) -> PTG:
    """Generate a random layered PTG.

    Parameters
    ----------
    rng:
        Seed, ``numpy`` generator or ``None``.
    config:
        Generator configuration; defaults to :class:`RandomPTGConfig()`.
    name:
        Override for the application name.

    Returns
    -------
    PTG
        A validated graph with a single entry and a single exit task.

    Examples
    --------
    >>> g = generate_random_ptg(0, RandomPTGConfig(n_tasks=10))
    >>> len(g.real_tasks())
    10
    >>> g.validate()
    """
    generator = ensure_rng(rng)
    config = config or RandomPTGConfig()
    graph = PTG(name or config.label())

    # 1. create the tasks with their random costs
    for task_id in range(config.n_tasks):
        complexity = sample_complexity(generator, config.complexity)
        data = sample_data_elements(
            generator, config.min_data_elements, config.max_data_elements
        )
        a_factor = sample_a_factor(generator)
        alpha = sample_alpha(generator, 0.0, config.alpha_max)
        graph.add_task(
            Task.from_cost_model(task_id, complexity, data, a_factor, alpha)
        )

    # 2. organise them into precedence levels
    sizes = _level_sizes(generator, config)
    levels: List[List[int]] = []
    next_id = 0
    for size in sizes:
        levels.append(list(range(next_id, next_id + size)))
        next_id += size

    # 3. wire the levels together
    _connect_levels(generator, graph, levels, config)

    # 4. enforce the single entry / single exit convention
    graph.ensure_single_entry_exit()
    graph.validate()
    return graph


def generate_random_workload(
    rng=None,
    n_ptgs: int = 4,
    configs: Optional[Sequence[RandomPTGConfig]] = None,
    name_prefix: str = "app",
) -> List[PTG]:
    """Generate *n_ptgs* random PTGs with distinct names.

    Each PTG's configuration is drawn uniformly from *configs* (default:
    the paper's task counts with random shape parameters), matching the
    paper's "25 random combinations for each number of concurrent PTGs".
    """
    generator = ensure_rng(rng)
    if n_ptgs < 1:
        raise ConfigurationError(f"n_ptgs must be positive, got {n_ptgs}")
    if configs is None:
        configs = []
        for _ in range(n_ptgs):
            configs.append(
                RandomPTGConfig(
                    n_tasks=int(generator.choice(list(PAPER_TASK_COUNTS))),
                    width=float(generator.choice(list(PAPER_WIDTHS))),
                    regularity=float(generator.choice(list(PAPER_REGULARITIES))),
                    density=float(generator.choice(list(PAPER_DENSITIES))),
                    jump=int(generator.choice(list(PAPER_JUMPS))),
                )
            )
        chosen = configs
    else:
        if not configs:
            raise ConfigurationError("configs must not be empty")
        chosen = [configs[int(generator.integers(0, len(configs)))] for _ in range(n_ptgs)]
    workload = []
    for i, cfg in enumerate(chosen):
        workload.append(
            generate_random_ptg(generator, cfg, name=f"{name_prefix}-{i}-{cfg.label()}")
        )
    return workload
