"""Global-ordering mapper: the baseline the paper argues against.

This mapper aggregates the submitted applications and sorts *all* their
tasks by decreasing bottom level before placing them one by one (the
classical single-DAG list-scheduling order applied to the union of the
graphs).  As illustrated by Figure 1 of the paper, this can postpone the
entry tasks of small applications -- their bottom levels are low, so they
end up near the end of the ordered list even though they are ready at
submission time -- producing unfair and inefficient schedules.

It is kept as the comparison point for the ablation benchmark
``bench_ablation_mapping`` (ready-list ordering vs global ordering).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.exceptions import MappingError
from repro.mapping.base import AllocatedPTG, Mapper
from repro.mapping.eft import PlacementEngine
from repro.mapping.schedule import Schedule
from repro.platform.multicluster import MultiClusterPlatform


class GlobalOrderMapper(Mapper):
    """List scheduling over a global bottom-level ordering of all tasks."""

    name = "global-order"

    def __init__(self, enable_packing: bool = True, delta: bool = True) -> None:
        """*delta* selects the delta-EFT candidate evaluation of the
        placement engine (bit-identical; ``False`` is the golden
        fallback that evaluates every cluster in declaration order)."""
        self.enable_packing = enable_packing
        self.delta = delta

    def map(
        self, allocated: Sequence[AllocatedPTG], platform: MultiClusterPlatform
    ) -> Schedule:
        """Map all applications onto *platform* with a single global task order."""
        self._check_inputs(allocated)
        schedule = Schedule(platform.name)
        engine = PlacementEngine(
            platform, enable_packing=self.enable_packing, delta=self.delta
        )

        apps: Dict[str, AllocatedPTG] = {a.name: a for a in allocated}

        # Build the global priority list.  Within one application the
        # topological index breaks bottom-level ties so predecessors are
        # always placed before their successors (bottom levels are
        # non-increasing along a path, but zero-cost tasks can tie).
        ordered: List[Tuple[float, int, str, int]] = []
        for name, app in apps.items():
            levels = app.bottom_levels()
            topo_index = {tid: i for i, tid in enumerate(app.ptg.topological_order())}
            for task in app.ptg.tasks():
                ordered.append(
                    (-levels[task.task_id], topo_index[task.task_id], name, task.task_id)
                )
        ordered.sort()

        for _, _, name, task_id in ordered:
            app = apps[name]
            task = app.ptg.task(task_id)
            predecessors = [
                (pred, app.ptg.edge_data(pred, task_id))
                for pred in app.ptg.predecessors(task_id)
            ]
            for pred, _ in predecessors:
                if not schedule.has_entry(name, pred):
                    raise MappingError(
                        f"global ordering placed task {task_id} of {name!r} before "
                        f"its predecessor {pred}"
                    )
            engine.place(
                ptg_name=name,
                task=task,
                allocation=app.allocation,
                predecessors=predecessors,
                schedule=schedule,
                not_before=0.0,
            )

        total_tasks = sum(app.ptg.n_tasks for app in apps.values())
        if len(schedule) != total_tasks:
            raise MappingError(
                f"global-order mapping placed {len(schedule)} tasks out of {total_tasks}"
            )
        return schedule
