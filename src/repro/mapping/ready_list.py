"""Ready-task list scheduling: the paper's concurrent mapping procedure.

Instead of aggregating the submitted applications into a single graph and
ordering *all* their tasks globally, this mapper "still orders tasks
according to their bottom level, but only those that are ready.  A task is
ready only when all its predecessors have finished their executions."

The procedure is event-driven: it maintains a virtual clock, a ready
queue (ordered by decreasing bottom level across all applications) and
the set of tasks already placed.  At each step every currently ready task
is placed with the earliest-finish-time engine (including allocation
packing), then the clock advances to the next task completion, which may
release new ready tasks.  Entry tasks of every application are ready at
submission time, so a small application is never stuck behind the whole
ordered list of a large competitor (the Figure 1 scenario of the paper).

Performance
-----------
The ready queue is a **priority heap** keyed by ``(-bottom level,
application, task id)``: releases push in O(log n) and the placement
phase pops tasks in priority order, instead of re-sorting a list at
every event.  Entries are only invalidated lazily -- a popped entry whose
task was already placed is skipped -- although with static bottom-level
priorities every entry is pushed exactly once.  Readiness itself is
tracked with per-task predecessor counters that are decremented as
completions are drained, replacing the original rescan of the whole
completed set (O(completed x successors) per event) with O(out-degree)
work per completion.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Sequence, Set, Tuple

from repro.exceptions import MappingError
from repro.mapping.base import AllocatedPTG, Mapper
from repro.mapping.eft import PlacementEngine
from repro.mapping.schedule import Schedule
from repro.obs import meters, trace
from repro.platform.multicluster import MultiClusterPlatform


class ReadyListMapper(Mapper):
    """Concurrent list scheduling limited to the ready tasks.

    Reproduces the paper's event-driven mapping procedure: only ready
    tasks compete, ordered by decreasing bottom level, each placed at its
    earliest finish time with allocation packing.
    """

    name = "ready-list"

    def __init__(self, enable_packing: bool = True, delta: bool = True) -> None:
        """*delta* selects the delta-EFT candidate evaluation of the
        placement engine (bit-identical; ``False`` is the golden
        fallback that evaluates every cluster in declaration order)."""
        self.enable_packing = enable_packing
        self.delta = delta

    def map(
        self, allocated: Sequence[AllocatedPTG], platform: MultiClusterPlatform
    ) -> Schedule:
        """Map all applications onto *platform*.

        Returns a :class:`~repro.mapping.schedule.Schedule` covering every
        task of every application.
        """
        self._check_inputs(allocated)
        schedule = Schedule(platform.name)
        engine = PlacementEngine(
            platform, enable_packing=self.enable_packing, delta=self.delta
        )

        apps: Dict[str, AllocatedPTG] = {a.name: a for a in allocated}
        bottom_levels: Dict[str, Dict[int, float]] = {
            name: app.bottom_levels() for name, app in apps.items()
        }
        # predecessor counters: a task becomes ready when its counter
        # reaches zero (all predecessors completed)
        remaining_preds: Dict[Tuple[str, int], int] = {}
        for name, app in apps.items():
            for task in app.ptg.tasks():
                remaining_preds[(name, task.task_id)] = app.ptg.in_degree(task.task_id)

        # ready queue: (-bottom level, name, task_id, time it became ready)
        ready: List[Tuple[float, str, int, float]] = []
        for name, app in apps.items():
            for task in app.ptg.entry_tasks():
                levels = bottom_levels[name]
                heapq.heappush(ready, (-levels[task.task_id], name, task.task_id, 0.0))

        # completion events of already-placed tasks: (finish, name, task_id)
        events: List[Tuple[float, str, int]] = []
        placed: Set[Tuple[str, int]] = set()
        current_time = 0.0

        total_tasks = sum(app.ptg.n_tasks for app in apps.values())

        # one coarse span per map call plus a candidate-set histogram per
        # event; the disabled path costs one None check per event
        registry = meters.active()
        events_seen = 0
        with trace.span("mapping.map", apps=str(len(apps))) as obs_span:
            while ready or events:
                events_seen += 1
                placed_before = len(placed)
                # 1. place every currently ready task, highest bottom level
                #    first (releases only happen in step 3, so the heap is
                #    drained snapshot-free)
                while ready:
                    _, name, task_id, ready_since = heapq.heappop(ready)
                    if (name, task_id) in placed:  # lazy invalidation
                        continue  # pragma: no cover - entries are pushed once
                    app = apps[name]
                    task = app.ptg.task(task_id)
                    predecessors = [
                        (pred, app.ptg.edge_data(pred, task_id))
                        for pred in app.ptg.predecessors(task_id)
                    ]
                    entry = engine.place(
                        ptg_name=name,
                        task=task,
                        allocation=app.allocation,
                        predecessors=predecessors,
                        schedule=schedule,
                        not_before=max(ready_since, current_time),
                    )
                    placed.add((name, task_id))
                    heapq.heappush(events, (entry.finish, name, task_id))

                if registry is not None:
                    registry.histogram(
                        "mapping.ready_candidates", edges=meters.DEFAULT_COUNT_EDGES
                    ).observe(len(placed) - placed_before)

                # 2. advance the clock to the next completion
                if not events:
                    break
                completions: List[Tuple[str, int]] = []
                finish, name, task_id = heapq.heappop(events)
                current_time = finish
                completions.append((name, task_id))
                # drain other completions at the same instant so their
                # successors are released together
                while events and abs(events[0][0] - current_time) <= 1e-12:
                    _, other_name, other_id = heapq.heappop(events)
                    completions.append((other_name, other_id))

                # 3. release newly ready tasks by decrementing the
                #    predecessor counters of the completed tasks' successors
                for done_name, done_id in completions:
                    app = apps[done_name]
                    levels = bottom_levels[done_name]
                    for succ in app.ptg.successors(done_id):
                        key = (done_name, succ)
                        remaining_preds[key] -= 1
                        if remaining_preds[key] == 0:
                            heapq.heappush(
                                ready, (-levels[succ], done_name, succ, current_time)
                            )

            if registry is not None:
                obs_span.annotate(events=events_seen, tasks=total_tasks)
                registry.counter("mapping.events").inc(events_seen)

        if len(schedule) != total_tasks:
            raise MappingError(
                f"ready-list mapping placed {len(schedule)} tasks out of {total_tasks}"
            )
        return schedule
