"""Per-cluster processor availability timelines.

The mappers are *non-insertion* list schedulers: each processor carries
the time at which it becomes free, and a task needing ``p`` processors on
a cluster starts at the maximum of its data-ready time and the ``p``-th
smallest processor-free time.  No attempt is made to backfill tasks into
earlier idle holes -- the paper explicitly avoids conservative backfilling
("this method that is already complex in the case of independent tasks is
even harder to implement in presence of dependencies") and instead relies
on the ready-task ordering plus the allocation packing mechanism.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.exceptions import MappingError
from repro.platform.cluster import Cluster
from repro.platform.multicluster import MultiClusterPlatform


class ClusterTimeline:
    """Tracks when each processor of one cluster becomes free."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self._free_at = np.zeros(cluster.num_processors, dtype=float)

    @property
    def num_processors(self) -> int:
        """Number of processors of the underlying cluster."""
        return self.cluster.num_processors

    def free_times(self) -> np.ndarray:
        """A copy of the per-processor free times."""
        return self._free_at.copy()

    def earliest_start(self, processors: int, ready_time: float) -> float:
        """Earliest start time of a task needing *processors* processors.

        The task can start when its data is ready and *processors*
        processors are simultaneously free; with the non-insertion policy
        this is the ``processors``-th smallest free time.
        """
        if processors < 1 or processors > self.num_processors:
            raise MappingError(
                f"cannot reserve {processors} processors on cluster "
                f"{self.cluster.name!r} ({self.num_processors} available)"
            )
        if ready_time < 0:
            raise MappingError(f"ready_time must be non-negative, got {ready_time}")
        kth_free = float(np.partition(self._free_at, processors - 1)[processors - 1])
        return max(ready_time, kth_free)

    def select_processors(self, processors: int) -> List[int]:
        """Indices of the *processors* processors that free up first.

        Ties are broken by processor index so the choice is deterministic.
        """
        if processors < 1 or processors > self.num_processors:
            raise MappingError(
                f"cannot reserve {processors} processors on cluster "
                f"{self.cluster.name!r} ({self.num_processors} available)"
            )
        order = np.lexsort((np.arange(self.num_processors), self._free_at))
        return [int(i) for i in order[:processors]]

    def reserve(
        self, processors: int, ready_time: float, duration: float
    ) -> Tuple[List[int], float, float]:
        """Reserve *processors* processors for *duration* seconds.

        Returns ``(processor_indices, start, finish)``.
        """
        if duration < 0:
            raise MappingError(f"duration must be non-negative, got {duration}")
        start = self.earliest_start(processors, ready_time)
        indices = self.select_processors(processors)
        finish = start + duration
        self._free_at[indices] = finish
        return indices, start, finish

    def utilisation(self, horizon: float) -> float:
        """Fraction of processor time booked up to *horizon* (diagnostics)."""
        if horizon <= 0:
            return 0.0
        booked = float(np.clip(self._free_at, 0.0, horizon).sum())
        return booked / (horizon * self.num_processors)


class PlatformTimeline:
    """The set of cluster timelines of one platform."""

    def __init__(self, platform: MultiClusterPlatform) -> None:
        self.platform = platform
        self._timelines: Dict[str, ClusterTimeline] = {
            cluster.name: ClusterTimeline(cluster) for cluster in platform
        }

    def timeline(self, cluster_name: str) -> ClusterTimeline:
        """The timeline of one cluster."""
        try:
            return self._timelines[cluster_name]
        except KeyError:
            raise MappingError(
                f"platform {self.platform.name!r} has no cluster {cluster_name!r}"
            ) from None

    def timelines(self) -> Sequence[ClusterTimeline]:
        """All cluster timelines, in platform declaration order."""
        return [self._timelines[c.name] for c in self.platform]

    def reset(self) -> None:
        """Forget all reservations (used when re-mapping from scratch)."""
        for cluster in self.platform:
            self._timelines[cluster.name] = ClusterTimeline(cluster)
