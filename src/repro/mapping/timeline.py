"""Per-cluster processor availability timelines.

The mappers are *non-insertion* list schedulers: each processor carries
the time at which it becomes free, and a task needing ``p`` processors on
a cluster starts at the maximum of its data-ready time and the ``p``-th
smallest processor-free time.  No attempt is made to backfill tasks into
earlier idle holes -- the paper explicitly avoids conservative backfilling
("this method that is already complex in the case of independent tasks is
even harder to implement in presence of dependencies") and instead relies
on the ready-task ordering plus the allocation packing mechanism.

Performance
-----------
A timeline maintains the free times twice: per processor (needed to pick
concrete processor indices) and as an **incrementally sorted array**.
Reserving ``p`` processors removes the ``p`` smallest entries from the
sorted array and re-inserts ``p`` copies of the finish time at the
position found by :func:`numpy.searchsorted`, so the array never needs a
full sort or an :func:`numpy.partition` again.  ``earliest_start`` then
becomes an O(1) lookup of the ``p``-th entry, and the EFT packing sweep in
:mod:`repro.mapping.eft` reads the whole candidate range ``k = 1..p`` in
one shot through :meth:`ClusterTimeline.kth_free_times`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import MappingError
from repro.platform.cluster import Cluster
from repro.platform.multicluster import MultiClusterPlatform


class ClusterTimeline:
    """Tracks when each processor of one cluster becomes free.

    Implements the non-insertion availability model of the paper's mapping
    step: a task needing ``p`` processors starts at the ``p``-th smallest
    free time (no backfilling into idle holes).

    Examples
    --------
    >>> from repro.platform.cluster import Cluster
    >>> t = ClusterTimeline(Cluster("c", 4, 1e9))
    >>> t.reserve(2, 0.0, 5.0)
    ([0, 1], 0.0, 5.0)
    >>> t.earliest_start(2, 0.0)   # two processors are still free
    0.0
    >>> t.earliest_start(3, 0.0)   # the third frees up at 5.0
    5.0
    """

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self._free_at = np.zeros(cluster.num_processors, dtype=float)
        # Sorted copy of ``_free_at`` (values only), kept in sync by
        # ``reserve`` with a searchsorted insert instead of re-sorting.
        self._sorted_free = np.zeros(cluster.num_processors, dtype=float)
        # Plain-Python mirror of ``_sorted_free``, materialised on demand
        # by :meth:`kth_free_list` and spliced incrementally on reserve:
        # the delta-EFT engine reads individual entries thousands of
        # times, where NumPy scalar boxing would dominate.  ``None``
        # means "rebuild from ``_sorted_free`` on next access".
        self._sorted_list: Optional[List[float]] = None
        # Transaction support (:meth:`begin_transaction`): when active,
        # the first mutation snapshots the pre-transaction state so a
        # rollback can restore it bitwise.
        self._txn_active = False
        self._txn_saved: Optional[Tuple[np.ndarray, np.ndarray]] = None

    @property
    def num_processors(self) -> int:
        """Number of processors of the underlying cluster."""
        return self.cluster.num_processors

    def free_times(self) -> np.ndarray:
        """A copy of the per-processor free times."""
        return self._free_at.copy()

    def kth_free_times(self) -> np.ndarray:
        """The sorted processor free times (ascending).

        Entry ``k-1`` is the earliest time at which ``k`` processors are
        simultaneously free under the non-insertion policy, so the EFT
        engine can evaluate every candidate processor count of the
        allocation packing rule against this single array instead of
        issuing one :meth:`earliest_start` query per count.

        The returned array is the timeline's internal state: callers must
        not mutate it (take a ``.copy()`` to keep it across reservations).
        """
        return self._sorted_free

    def kth_free_list(self) -> List[float]:
        """The sorted processor free times as a plain Python list.

        Same values as :meth:`kth_free_times` (entry ``k-1`` is the
        earliest time ``k`` processors are simultaneously free), kept in
        sync incrementally across reservations so the delta-EFT engine
        can read frontier entries without per-access NumPy boxing.  The
        returned list is internal state: callers must not mutate it.
        """
        cached = self._sorted_list
        if cached is None:
            cached = self._sorted_list = self._sorted_free.tolist()
        return cached

    # ------------------------------------------------------------------ #
    # transactions (used by the streaming session's atomic admission)
    # ------------------------------------------------------------------ #
    def begin_transaction(self) -> None:
        """Start recording mutations so they can be rolled back.

        The snapshot is lazy: nothing is copied until the first
        :meth:`reserve`/:meth:`block` inside the transaction, so clusters
        an admission never touches cost nothing.
        """
        if self._txn_active:
            raise MappingError(
                f"timeline of cluster {self.cluster.name!r} is already in a "
                "transaction"
            )
        self._txn_active = True
        self._txn_saved = None

    def _txn_snapshot(self) -> None:
        if self._txn_active and self._txn_saved is None:
            self._txn_saved = (self._free_at.copy(), self._sorted_free.copy())

    def commit_transaction(self) -> None:
        """Keep the mutations made since :meth:`begin_transaction`."""
        self._txn_active = False
        self._txn_saved = None

    def rollback_transaction(self) -> None:
        """Restore the timeline to its :meth:`begin_transaction` state."""
        if self._txn_saved is not None:
            self._free_at, self._sorted_free = self._txn_saved
            self._sorted_list = None
        self._txn_active = False
        self._txn_saved = None

    def _check_processors(self, processors: int) -> None:
        """Validate a requested processor count (paper: ``1 <= p <= P``)."""
        if processors < 1 or processors > self.num_processors:
            raise MappingError(
                f"cannot reserve {processors} processors on cluster "
                f"{self.cluster.name!r} ({self.num_processors} available)"
            )

    def earliest_start(self, processors: int, ready_time: float) -> float:
        """Earliest start time of a task needing *processors* processors.

        The task can start when its data is ready and *processors*
        processors are simultaneously free; with the non-insertion policy
        this is the ``processors``-th smallest free time.  O(1) thanks to
        the incrementally maintained sorted array.
        """
        self._check_processors(processors)
        if ready_time < 0:
            raise MappingError(f"ready_time must be non-negative, got {ready_time}")
        kth_free = float(self._sorted_free[processors - 1])
        return max(ready_time, kth_free)

    def select_processors(self, processors: int) -> List[int]:
        """Indices of the *processors* processors that free up first.

        Ties are broken by processor index so the choice is deterministic
        (the returned list is ordered by increasing ``(free time, index)``,
        matching the paper's deterministic earliest-available selection).
        """
        self._check_processors(processors)
        # The p-th smallest free time bounds the selection: everything
        # strictly below it is taken, ties at the boundary are filled in
        # index order.  This avoids a full lexsort of all P processors.
        kth = self._sorted_free[processors - 1]
        below = np.flatnonzero(self._free_at < kth)
        if below.size < processors:
            equal = np.flatnonzero(self._free_at == kth)
            chosen = np.concatenate([below, equal[: processors - below.size]])
        else:  # pragma: no cover - below.size is at most processors - 1
            chosen = below[:processors]
        # order by (free time, index) like the original lexsort did
        order = np.lexsort((chosen, self._free_at[chosen]))
        return [int(i) for i in chosen[order]]

    def reserve(
        self, processors: int, ready_time: float, duration: float
    ) -> Tuple[List[int], float, float]:
        """Reserve *processors* processors for *duration* seconds.

        Returns ``(processor_indices, start, finish)``.  The reservation
        commits the non-insertion rule: the selected processors are the
        ones that free up first, and all of them become busy until
        ``start + duration``.
        """
        if duration < 0:
            raise MappingError(f"duration must be non-negative, got {duration}")
        start = self.earliest_start(processors, ready_time)
        indices = self.select_processors(processors)
        finish = start + duration
        self._txn_snapshot()
        self._free_at[indices] = finish
        # Incremental sorted-array update: the removed values are exactly
        # the ``processors`` smallest, and the inserted value is >= all of
        # them, so one searchsorted over the remainder suffices.
        remaining = self._sorted_free[processors:]
        pos = int(np.searchsorted(remaining, finish, side="left"))
        updated = np.empty_like(self._sorted_free)
        updated[:pos] = remaining[:pos]
        updated[pos : pos + processors] = finish
        updated[pos + processors :] = remaining[pos:]
        self._sorted_free = updated
        cached = self._sorted_list
        if cached is not None:
            # same splice on the Python mirror: drop the p smallest,
            # insert p copies of ``finish`` at the searchsorted position
            del cached[:processors]
            cached[pos:pos] = [finish] * processors
        return indices, start, finish

    def block(self, processors: Sequence[int], until: float) -> None:
        """Push the free time of *processors* forward to at least *until*.

        Used to seed a fresh timeline with pre-existing reservations and
        with fault down-windows before a repair pass: a blocked
        processor accepts no reservation before *until*.  This is the
        conservative encoding of an unavailability window under the
        non-insertion model -- the idle span *before* the window is
        given up too (the model keeps no holes), which can only delay
        repaired placements, never invalidate them.  Unlike
        :meth:`reserve` this touches arbitrary processors, so the sorted
        free-time array is rebuilt with a full sort (blocking happens
        once per repair pass, not per placement).
        """
        if until < 0:
            raise MappingError(f"block bound must be non-negative, got {until}")
        indices = [int(p) for p in processors]
        for index in indices:
            if index < 0 or index >= self.num_processors:
                raise MappingError(
                    f"cannot block processor {index} on cluster "
                    f"{self.cluster.name!r} (0..{self.num_processors - 1})"
                )
        self._txn_snapshot()
        self._free_at[indices] = np.maximum(self._free_at[indices], until)
        self._sorted_free = np.sort(self._free_at)
        self._sorted_list = None

    def utilisation(self, horizon: float) -> float:
        """Fraction of processor time booked up to *horizon* (diagnostics)."""
        if horizon <= 0:
            return 0.0
        booked = float(np.clip(self._free_at, 0.0, horizon).sum())
        return booked / (horizon * self.num_processors)


class PlatformTimeline:
    """The set of cluster timelines of one platform."""

    def __init__(self, platform: MultiClusterPlatform) -> None:
        self.platform = platform
        self._timelines: Dict[str, ClusterTimeline] = {
            cluster.name: ClusterTimeline(cluster) for cluster in platform
        }

    def timeline(self, cluster_name: str) -> ClusterTimeline:
        """The timeline of one cluster."""
        try:
            return self._timelines[cluster_name]
        except KeyError:
            raise MappingError(
                f"platform {self.platform.name!r} has no cluster {cluster_name!r}"
            ) from None

    def timelines(self) -> Sequence[ClusterTimeline]:
        """All cluster timelines, in platform declaration order."""
        return [self._timelines[c.name] for c in self.platform]

    def begin_transaction(self) -> None:
        """Start a rollback-capable transaction on every cluster timeline."""
        for timeline in self._timelines.values():
            timeline.begin_transaction()

    def commit_transaction(self) -> None:
        """Keep the reservations made since :meth:`begin_transaction`."""
        for timeline in self._timelines.values():
            timeline.commit_transaction()

    def rollback_transaction(self) -> None:
        """Undo every reservation made since :meth:`begin_transaction`."""
        for timeline in self._timelines.values():
            timeline.rollback_transaction()

    def reset(self) -> None:
        """Forget all reservations (used when re-mapping from scratch)."""
        for cluster in self.platform:
            self._timelines[cluster.name] = ClusterTimeline(cluster)
