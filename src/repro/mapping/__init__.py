"""Mapping step of the two-step scheduling process.

Once every task of every submitted PTG has received a processor
*allocation* (a number of reference processors), the mapping step decides
*where* and *when* each task runs: on which cluster, on which processors,
starting at what time.

This package provides:

* :class:`~repro.mapping.schedule.Schedule` /
  :class:`~repro.mapping.schedule.ScheduledTask` -- the produced schedule,
* :class:`~repro.mapping.timeline.ClusterTimeline` -- per-cluster
  processor availability used to compute earliest start times,
* :class:`~repro.mapping.eft.PlacementEngine` -- earliest-finish-time
  placement of one allocated task over all clusters, including the
  paper's **allocation packing** mechanism (shrink a delayed task's
  allocation when it can start earlier and finish no later),
* :class:`~repro.mapping.ready_list.ReadyListMapper` -- the paper's
  proposed concurrent mapping procedure, which only orders the *ready*
  tasks by bottom level,
* :class:`~repro.mapping.global_order.GlobalOrderMapper` -- the baseline
  that aggregates all applications and orders every task globally, which
  the paper shows can unfairly postpone small applications (Figure 1).

The placement hot path (timelines, EFT sweep, ready queue, communication
estimates) is optimized -- incrementally sorted free-time arrays, batched
candidate evaluation, heap-based ready list, memoized transfers -- while
emitting bit-identical schedules to the straightforward formulation kept
in :mod:`repro.mapping._reference` (see ``tests/test_mapping_golden.py``
and ``docs/architecture.md``).
"""

from repro.mapping.schedule import Schedule, ScheduledTask
from repro.mapping.timeline import ClusterTimeline, PlatformTimeline
from repro.mapping.comm import CommunicationEstimator
from repro.mapping.eft import PlacementEngine, PlacementDecision
from repro.mapping.base import Mapper, AllocatedPTG
from repro.mapping.ready_list import ReadyListMapper
from repro.mapping.global_order import GlobalOrderMapper

__all__ = [
    "Schedule",
    "ScheduledTask",
    "ClusterTimeline",
    "PlatformTimeline",
    "CommunicationEstimator",
    "PlacementEngine",
    "PlacementDecision",
    "Mapper",
    "AllocatedPTG",
    "ReadyListMapper",
    "GlobalOrderMapper",
]
