"""Communication / data-redistribution time estimation used by the mappers.

The mapping step needs an estimate of the time required to move the data
of an edge ``v_i -> v_j`` from the processors of ``v_i`` to those of
``v_j`` in order to compute data-ready times and earliest finish times.
The estimate follows the platform topology:

* when both tasks run on the **same cluster**, the redistribution happens
  inside the cluster (memory / local interconnect); its cost is assumed
  negligible with respect to inter-cluster transfers and is modelled as
  zero,
* when the tasks run on **different clusters**, the data crosses the
  cluster switches: the estimated time is the path latency plus the data
  volume divided by the bottleneck bandwidth of the path.  The bottleneck
  accounts for the aggregate NIC pools of the two clusters (every node
  has its own link to the switch, so a redistribution between two
  processor sets uses many NICs in parallel) and for the switch
  backplanes on the route.  Contention with other transfers is only
  modelled by the discrete-event simulator, not by this estimator --
  exactly like a static scheduler that cannot know the future traffic.

Performance
-----------
The mappers evaluate the same edges against the same cluster pairs over
and over (once per candidate cluster per ready task), so the estimator
memoizes both the per-pair path parameters ``(latency, bottleneck
bandwidth)`` -- which are constant for a given platform -- and the final
transfer time per ``(edge data volume, source cluster, destination
cluster)`` triple.  The cached arithmetic is the exact expression of the
uncached version, so memoization never changes a schedule.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.exceptions import MappingError
from repro.platform.multicluster import MultiClusterPlatform


class CommunicationEstimator:
    """Static estimate of inter-cluster data redistribution times.

    Models the paper's data redistribution between the processor sets of
    two dependent tasks; intra-cluster redistribution is free, an
    inter-cluster one pays path latency plus volume over the bottleneck
    bandwidth.
    """

    def __init__(self, platform: MultiClusterPlatform) -> None:
        self.platform = platform
        self.topology = platform.topology
        # (src, dst) -> (latency, bottleneck bandwidth); constant per platform
        self._pair_cache: Dict[Tuple[str, str], Tuple[float, float]] = {}
        # (data_bytes, src, dst) -> transfer time
        self._time_cache: Dict[Tuple[float, str, str], float] = {}

    def _pair_parameters(self, src_cluster: str, dst_cluster: str) -> Tuple[float, float]:
        """Memoized ``(path latency, bottleneck bandwidth)`` of one pair."""
        key = (src_cluster, dst_cluster)
        cached = self._pair_cache.get(key)
        if cached is None:
            latency = self.topology.path_latency(src_cluster, dst_cluster)
            bandwidth = self.topology.route_bandwidth(
                src_cluster,
                dst_cluster,
                self.platform.cluster(src_cluster).num_processors,
                self.platform.cluster(dst_cluster).num_processors,
            )
            cached = (latency, bandwidth)
            self._pair_cache[key] = cached
        return cached

    def transfer_time(
        self, data_bytes: float, src_cluster: str, dst_cluster: str
    ) -> float:
        """Estimated time to move *data_bytes* from *src_cluster* to *dst_cluster*."""
        if data_bytes < 0:
            raise MappingError(f"data_bytes must be non-negative, got {data_bytes}")
        if src_cluster not in self.platform or dst_cluster not in self.platform:
            raise MappingError(
                f"unknown cluster in transfer {src_cluster!r} -> {dst_cluster!r}"
            )
        if data_bytes == 0:
            return 0.0
        if src_cluster == dst_cluster:
            return 0.0
        key = (data_bytes, src_cluster, dst_cluster)
        cached = self._time_cache.get(key)
        if cached is None:
            latency, bandwidth = self._pair_parameters(src_cluster, dst_cluster)
            cached = latency + data_bytes / bandwidth
            self._time_cache[key] = cached
        return cached

    def worst_case_transfer_time(self, data_bytes: float) -> float:
        """Largest transfer estimate over all cluster pairs (used for bounds)."""
        names = self.platform.cluster_names()
        return max(
            self.transfer_time(data_bytes, a, b) for a in names for b in names
        )
