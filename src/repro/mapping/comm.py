"""Communication / data-redistribution time estimation used by the mappers.

The mapping step needs an estimate of the time required to move the data
of an edge ``v_i -> v_j`` from the processors of ``v_i`` to those of
``v_j`` in order to compute data-ready times and earliest finish times.
The estimate follows the platform topology:

* when both tasks run on the **same cluster**, the redistribution happens
  inside the cluster (memory / local interconnect); its cost is assumed
  negligible with respect to inter-cluster transfers and is modelled as
  zero,
* when the tasks run on **different clusters**, the data crosses the
  cluster switches: the estimated time is the path latency plus the data
  volume divided by the bottleneck bandwidth of the path.  The bottleneck
  accounts for the aggregate NIC pools of the two clusters (every node
  has its own link to the switch, so a redistribution between two
  processor sets uses many NICs in parallel) and for the switch
  backplanes on the route.  Contention with other transfers is only
  modelled by the discrete-event simulator, not by this estimator --
  exactly like a static scheduler that cannot know the future traffic.
"""

from __future__ import annotations

from repro.exceptions import MappingError
from repro.platform.multicluster import MultiClusterPlatform


class CommunicationEstimator:
    """Static estimate of inter-cluster data redistribution times."""

    def __init__(self, platform: MultiClusterPlatform) -> None:
        self.platform = platform
        self.topology = platform.topology

    def transfer_time(
        self, data_bytes: float, src_cluster: str, dst_cluster: str
    ) -> float:
        """Estimated time to move *data_bytes* from *src_cluster* to *dst_cluster*."""
        if data_bytes < 0:
            raise MappingError(f"data_bytes must be non-negative, got {data_bytes}")
        if src_cluster not in self.platform or dst_cluster not in self.platform:
            raise MappingError(
                f"unknown cluster in transfer {src_cluster!r} -> {dst_cluster!r}"
            )
        if data_bytes == 0:
            return 0.0
        if src_cluster == dst_cluster:
            return 0.0
        latency = self.topology.path_latency(src_cluster, dst_cluster)
        bandwidth = self.topology.route_bandwidth(
            src_cluster,
            dst_cluster,
            self.platform.cluster(src_cluster).num_processors,
            self.platform.cluster(dst_cluster).num_processors,
        )
        return latency + data_bytes / bandwidth

    def worst_case_transfer_time(self, data_bytes: float) -> float:
        """Largest transfer estimate over all cluster pairs (used for bounds)."""
        names = self.platform.cluster_names()
        return max(
            self.transfer_time(data_bytes, a, b) for a in names for b in names
        )
