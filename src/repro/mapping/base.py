"""Mapper interface and the allocated-application bundle it consumes."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.allocation.base import Allocation
from repro.dag.arrays import SMALL_GRAPH_CUTOFF
from repro.dag.graph import PTG
from repro.exceptions import MappingError
from repro.platform.multicluster import MultiClusterPlatform


@dataclass(frozen=True)
class AllocatedPTG:
    """A PTG bundled with the allocation computed for it.

    This is what the allocation step hands over to the mapping step.
    """

    ptg: PTG
    allocation: Allocation

    def __post_init__(self) -> None:
        if self.allocation.ptg is not self.ptg:
            raise MappingError(
                f"allocation was computed for PTG {self.allocation.ptg.name!r}, "
                f"not for {self.ptg.name!r}"
            )

    @property
    def name(self) -> str:
        """Application name."""
        return self.ptg.name

    def bottom_levels(self) -> Dict[int, float]:
        """Bottom levels of the tasks under the allocation's reference times.

        The mapping step prioritises tasks "according to their bottom
        level, i.e., the distance to the exit node of the PTG in terms of
        execution times"; the execution times are those of the allocation
        on the reference cluster.

        Computed over the shared :class:`~repro.dag.arrays.DagArrays`
        compilation of the graph (the same one the allocation hot loop
        uses): the per-task reference durations are evaluated with the
        vectorized Amdahl formula in the exact scalar operation order of
        :meth:`~repro.dag.task.Task.execution_time`, and the DP runs over
        the precompiled topology -- bit-identical to
        ``ptg.bottom_levels(allocation.task_time)``, as the golden
        schedule suite asserts.
        """
        arrays = self.ptg.arrays()
        allocation = self.allocation
        task_ids = arrays.task_ids_tuple
        processors = allocation.processors
        speed = allocation.reference.speed_flops
        if arrays.n_tasks < SMALL_GRAPH_CUTOFF:
            # scalar specialization: below the cutoff the NumPy dispatch
            # overhead dominates; both formulations are bit-identical
            alpha = arrays.alpha_tuple
            flops = arrays.flops_tuple
            durations_py = [
                (alpha[i] + (1.0 - alpha[i]) / processors(tid)) * flops[i] / speed
                for i, tid in enumerate(task_ids)
            ]
            return dict(zip(task_ids, arrays.bottom_levels_py(durations_py)))
        procs = np.array(
            [processors(tid) for tid in task_ids], dtype=np.float64
        )
        # (alpha + (1 - alpha)/p) * w / s, the scalar Amdahl order; the
        # zero sequential cost of synthetic tasks multiplies out to the
        # exact 0.0 that Task.execution_time short-circuits to
        durations = (
            (arrays.alpha + (1.0 - arrays.alpha) / procs) * arrays.flops / speed
        )
        bl = arrays.bottom_levels(durations)
        return dict(zip(task_ids, bl.tolist()))


class Mapper(abc.ABC):
    """Interface of the concurrent mapping procedures."""

    #: Mapper name used in reports and ablations.
    name: str = "abstract"

    @abc.abstractmethod
    def map(
        self, allocated: Sequence[AllocatedPTG], platform: MultiClusterPlatform
    ):
        """Map all allocated applications onto *platform* and return a Schedule."""

    @staticmethod
    def _check_inputs(allocated: Sequence[AllocatedPTG]) -> None:
        if not allocated:
            raise MappingError("at least one allocated PTG is required")
        names = [a.name for a in allocated]
        if len(set(names)) != len(names):
            raise MappingError(f"concurrent PTGs must have unique names, got {names}")
        for a in allocated:
            a.ptg.validate()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
