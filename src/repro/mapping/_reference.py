"""Pre-refactor reference implementations of the placement hot path.

The optimized mapping core (incrementally sorted timelines, batched EFT
candidate evaluation, heap-based ready queue) must produce **bit-identical
schedules** to the straightforward formulation it replaced.  This module
keeps that original formulation alive:

* :class:`ReferenceClusterTimeline` -- per-query ``np.partition`` /
  ``np.lexsort`` over the processor free times,
* :class:`ReferenceCommunicationEstimator` -- uncached topology queries
  per transfer estimate,
* :class:`ReferencePlacementEngine` -- one timeline query per candidate
  processor count of the packing sweep, scalar Amdahl durations,
* :class:`ReferenceReadyListMapper` -- list re-sorted per event, readiness
  discovered by rescanning the completed set,
* :func:`reference_implementation` -- a context manager that swaps the
  reference classes into every consumer (mappers, baselines, schedulers),
  so a whole pipeline can be replayed on the pre-refactor code path.

It exists only for the golden-schedule test
(``tests/test_mapping_golden.py``) and the old-vs-new benchmark
(``benchmarks/bench_mapping_core.py``); production code must import the
optimized classes from :mod:`repro.mapping`.
"""

from __future__ import annotations

import contextlib
import heapq
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import MappingError
from repro.mapping.base import AllocatedPTG, Mapper
from repro.mapping.eft import PlacementEngine
from repro.mapping.schedule import Schedule
from repro.platform.cluster import Cluster
from repro.platform.multicluster import MultiClusterPlatform


class ReferenceClusterTimeline:
    """Original :class:`~repro.mapping.timeline.ClusterTimeline`.

    Every ``earliest_start`` pays an O(P) :func:`numpy.partition` and
    every ``select_processors`` an O(P log P) :func:`numpy.lexsort`.
    """

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self._free_at = np.zeros(cluster.num_processors, dtype=float)
        self._txn_active = False
        self._txn_saved = None

    @property
    def num_processors(self) -> int:
        """Number of processors of the underlying cluster."""
        return self.cluster.num_processors

    def begin_transaction(self) -> None:
        """Start recording reservations so they can be rolled back."""
        self._txn_active = True
        self._txn_saved = None

    def commit_transaction(self) -> None:
        """Keep the reservations made since :meth:`begin_transaction`."""
        self._txn_active = False
        self._txn_saved = None

    def rollback_transaction(self) -> None:
        """Restore the timeline to its :meth:`begin_transaction` state."""
        if self._txn_saved is not None:
            self._free_at = self._txn_saved
        self._txn_active = False
        self._txn_saved = None

    def free_times(self) -> np.ndarray:
        """A copy of the per-processor free times."""
        return self._free_at.copy()

    def earliest_start(self, processors: int, ready_time: float) -> float:
        """Earliest start via a fresh partition of the free times."""
        if processors < 1 or processors > self.num_processors:
            raise MappingError(
                f"cannot reserve {processors} processors on cluster "
                f"{self.cluster.name!r} ({self.num_processors} available)"
            )
        if ready_time < 0:
            raise MappingError(f"ready_time must be non-negative, got {ready_time}")
        kth_free = float(np.partition(self._free_at, processors - 1)[processors - 1])
        return max(ready_time, kth_free)

    def select_processors(self, processors: int) -> List[int]:
        """Earliest-free processor indices via a full lexsort."""
        if processors < 1 or processors > self.num_processors:
            raise MappingError(
                f"cannot reserve {processors} processors on cluster "
                f"{self.cluster.name!r} ({self.num_processors} available)"
            )
        order = np.lexsort((np.arange(self.num_processors), self._free_at))
        return [int(i) for i in order[:processors]]

    def reserve(
        self, processors: int, ready_time: float, duration: float
    ) -> Tuple[List[int], float, float]:
        """Reserve *processors* processors for *duration* seconds."""
        if duration < 0:
            raise MappingError(f"duration must be non-negative, got {duration}")
        start = self.earliest_start(processors, ready_time)
        indices = self.select_processors(processors)
        finish = start + duration
        if self._txn_active and self._txn_saved is None:
            self._txn_saved = self._free_at.copy()
        self._free_at[indices] = finish
        return indices, start, finish

    def utilisation(self, horizon: float) -> float:
        """Fraction of processor time booked up to *horizon* (diagnostics)."""
        if horizon <= 0:
            return 0.0
        booked = float(np.clip(self._free_at, 0.0, horizon).sum())
        return booked / (horizon * self.num_processors)


class ReferenceCommunicationEstimator:
    """Original estimator: one topology query per transfer estimate.

    No memoization of path parameters or transfer times, so the golden
    comparison also covers the caching added to
    :class:`repro.mapping.comm.CommunicationEstimator`.
    """

    def __init__(self, platform: MultiClusterPlatform) -> None:
        self.platform = platform
        self.topology = platform.topology

    def transfer_time(
        self, data_bytes: float, src_cluster: str, dst_cluster: str
    ) -> float:
        """Estimated redistribution time, recomputed from the topology."""
        if data_bytes < 0:
            raise MappingError(f"data_bytes must be non-negative, got {data_bytes}")
        if src_cluster not in self.platform or dst_cluster not in self.platform:
            raise MappingError(
                f"unknown cluster in transfer {src_cluster!r} -> {dst_cluster!r}"
            )
        if data_bytes == 0:
            return 0.0
        if src_cluster == dst_cluster:
            return 0.0
        latency = self.topology.path_latency(src_cluster, dst_cluster)
        bandwidth = self.topology.route_bandwidth(
            src_cluster,
            dst_cluster,
            self.platform.cluster(src_cluster).num_processors,
            self.platform.cluster(dst_cluster).num_processors,
        )
        return latency + data_bytes / bandwidth

    def worst_case_transfer_time(self, data_bytes: float) -> float:
        """Largest transfer estimate over all cluster pairs."""
        names = self.platform.cluster_names()
        return max(
            self.transfer_time(data_bytes, a, b) for a in names for b in names
        )


class ReferencePlacementEngine(PlacementEngine):
    """Original EFT engine: one timeline query per packing candidate.

    Inherits the placement driver but overrides the per-cluster
    evaluation with the pre-refactor per-probe formulation, and defaults
    to the uncached :class:`ReferenceCommunicationEstimator`.
    """

    def __init__(self, platform, enable_packing=True, comm=None, delta=False):
        # ``delta`` is accepted for signature compatibility but always
        # disabled: the reference engine must take the full per-cluster
        # evaluation below (the delta path never calls _evaluate_cluster).
        super().__init__(
            platform,
            enable_packing=enable_packing,
            comm=comm or ReferenceCommunicationEstimator(platform),
            delta=False,
        )

    def _evaluate_cluster(self, task, allocation, cluster_name, ready_time):
        """Best ``(procs, start, finish, packed, original)`` on one cluster."""
        cluster = self.platform.cluster(cluster_name)
        timeline = self.timelines.timeline(cluster_name)
        requested = allocation.cluster_processors(task, cluster)
        requested = min(requested, cluster.num_processors)

        def start_finish(procs: int) -> Tuple[float, float]:
            start = timeline.earliest_start(procs, ready_time)
            duration = task.execution_time(procs, cluster.speed_flops)
            return start, start + duration

        start, finish = start_finish(requested)
        best = (requested, start, finish, False, requested)
        if not self.enable_packing or requested == 1:
            return best
        if start <= ready_time + 1e-12:
            return best
        for procs in range(requested - 1, 0, -1):
            alt_start, alt_finish = start_finish(procs)
            if alt_start < start - 1e-12 and alt_finish <= finish + 1e-12:
                if alt_finish < best[2] - 1e-12 or (
                    abs(alt_finish - best[2]) <= 1e-12 and alt_start < best[1]
                ):
                    best = (procs, alt_start, alt_finish, True, requested)
        return best

class ReferenceReadyListMapper(Mapper):
    """Original ready-list mapper: per-event sort + completed-set rescan."""

    name = "ready-list"

    def __init__(self, enable_packing: bool = True) -> None:
        self.enable_packing = enable_packing

    def map(
        self, allocated: Sequence[AllocatedPTG], platform: MultiClusterPlatform
    ) -> Schedule:
        """Map all applications onto *platform* (pre-refactor event loop)."""
        self._check_inputs(allocated)
        schedule = Schedule(platform.name)
        engine = ReferencePlacementEngine(platform, enable_packing=self.enable_packing)

        apps: Dict[str, AllocatedPTG] = {a.name: a for a in allocated}
        bottom_levels: Dict[str, Dict[int, float]] = {
            name: app.bottom_levels() for name, app in apps.items()
        }
        remaining_preds: Dict[Tuple[str, int], int] = {}
        for name, app in apps.items():
            for task in app.ptg.tasks():
                remaining_preds[(name, task.task_id)] = app.ptg.in_degree(task.task_id)

        ready: List[Tuple[str, int, float]] = []
        for name, app in apps.items():
            for task in app.ptg.entry_tasks():
                ready.append((name, task.task_id, 0.0))

        events: List[Tuple[float, str, int]] = []
        placed: Set[Tuple[str, int]] = set()
        completed: Set[Tuple[str, int]] = set()
        current_time = 0.0

        total_tasks = sum(app.ptg.n_tasks for app in apps.values())

        while ready or events:
            ready.sort(
                key=lambda item: (-bottom_levels[item[0]][item[1]], item[0], item[1])
            )
            for name, task_id, ready_since in ready:
                app = apps[name]
                task = app.ptg.task(task_id)
                predecessors = [
                    (pred, app.ptg.edge_data(pred, task_id))
                    for pred in app.ptg.predecessors(task_id)
                ]
                entry = engine.place(
                    ptg_name=name,
                    task=task,
                    allocation=app.allocation,
                    predecessors=predecessors,
                    schedule=schedule,
                    not_before=max(ready_since, current_time),
                )
                placed.add((name, task_id))
                heapq.heappush(events, (entry.finish, name, task_id))
            ready = []

            if not events:
                break
            finish, name, task_id = heapq.heappop(events)
            current_time = finish
            completed.add((name, task_id))
            while events and abs(events[0][0] - current_time) <= 1e-12:
                _, other_name, other_id = heapq.heappop(events)
                completed.add((other_name, other_id))

            for done_name, done_id in list(completed):
                app = apps[done_name]
                for succ in app.ptg.successors(done_id):
                    key = (done_name, succ)
                    if key in placed or remaining_preds[key] <= 0:
                        continue
                    if all(
                        (done_name, pred) in completed
                        for pred in app.ptg.predecessors(succ)
                    ):
                        remaining_preds[key] = 0
                        ready.append((done_name, succ, current_time))

        if len(schedule) != total_tasks:
            raise MappingError(
                f"ready-list mapping placed {len(schedule)} tasks out of {total_tasks}"
            )
        return schedule


@contextlib.contextmanager
def reference_implementation():
    """Run a ``with`` block on the pre-refactor placement code path.

    Swaps the reference classes into every module that instantiates the
    hot-path components: the timelines used by
    :class:`~repro.mapping.timeline.PlatformTimeline` (and therefore by
    the HEFT / M-HEFT baselines), the placement engine used by the
    mappers and the online scheduler, and the ready-list mapper used by
    the concurrent scheduler.  Restores the optimized classes on exit.
    """
    import repro.baselines.heft as heft_mod
    import repro.baselines.mheft as mheft_mod
    import repro.mapping.global_order as global_order_mod
    import repro.mapping.ready_list as ready_list_mod
    import repro.mapping.timeline as timeline_mod
    import repro.scheduler.concurrent as concurrent_mod
    import repro.scheduler.single as single_mod
    import repro.scheduler._reference as online_reference_mod
    import repro.streaming.engine as streaming_engine_mod

    patches = [
        (timeline_mod, "ClusterTimeline", ReferenceClusterTimeline),
        (ready_list_mod, "PlacementEngine", ReferencePlacementEngine),
        (global_order_mod, "PlacementEngine", ReferencePlacementEngine),
        (streaming_engine_mod, "PlacementEngine", ReferencePlacementEngine),
        (online_reference_mod, "PlacementEngine", ReferencePlacementEngine),
        (concurrent_mod, "ReadyListMapper", ReferenceReadyListMapper),
        (single_mod, "ReadyListMapper", ReferenceReadyListMapper),
        (heft_mod, "CommunicationEstimator", ReferenceCommunicationEstimator),
        (mheft_mod, "CommunicationEstimator", ReferenceCommunicationEstimator),
    ]
    saved = [(module, attr, getattr(module, attr)) for module, attr, _ in patches]
    try:
        for module, attr, replacement in patches:
            setattr(module, attr, replacement)
        yield
    finally:
        for module, attr, original in saved:
            setattr(module, attr, original)
