"""Earliest-finish-time placement of one allocated task, with packing.

For one ready task the placement engine evaluates every cluster of the
platform:

1. translate the reference allocation into an actual processor count on
   that cluster,
2. compute the data-ready time on that cluster (predecessor finish times
   plus inter-cluster redistribution estimates),
3. compute the earliest start given processor availability,
4. apply the paper's **allocation packing** mechanism: "if a task has to
   be delayed because all the processors it needs are not available, we
   reduce its allocation if and only if the task can start earlier and
   finish no later than on its original allocation",
5. keep the cluster and processor count with the earliest finish time.

Performance
-----------
The engine is the innermost loop of every mapper, so steps 3-5 are
batched per cluster: the candidate ``(ready time, k-th free time,
finish time)`` triples of **every allocation size** are computed in one
pass against the timeline's incrementally sorted free-time array
(:meth:`~repro.mapping.timeline.ClusterTimeline.kth_free_times`) and a
vectorized Amdahl duration table, and the packing search walks the
allocation sizes ``p-1 .. 1`` over those precomputed candidates instead
of re-querying the timeline per size.

On top of that sits the **delta-EFT** fast path (``delta=True``, the
default): instead of fully evaluating every cluster, it derives an exact
per-cluster *lower bound* on the achievable finish time from the cached
free-time frontier (``max(ready lower bound, first free time) +
duration at the translated allocation``), evaluates clusters in
ascending bound order and stops as soon as the next bound exceeds the
best finish found -- dominated clusters are skipped without computing
their candidates.  The per-cluster evaluation itself runs on the plain
Python frontier mirror (:meth:`~repro.mapping.timeline.ClusterTimeline.
kth_free_list`, invalidated incrementally on reserve) with memoized
allocation translations, and the packing sweep short-circuits once the
remaining (monotonically non-decreasing) candidate finishes can no
longer be accepted.  Every cutoff is justified by an exact inequality
on the same IEEE-754 quantities the full pass computes, so both paths
-- and the scalar formulation they accelerate -- produce bit-identical
schedules (asserted by ``tests/test_mapping_golden.py`` and
``tests/test_delta_golden.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.allocation.base import Allocation
from repro.dag.task import Task
from repro.exceptions import MappingError
from repro.mapping.comm import CommunicationEstimator
from repro.mapping.schedule import Schedule, ScheduledTask
from repro.mapping.timeline import PlatformTimeline
from repro.obs import meters
from repro.platform.multicluster import MultiClusterPlatform


@dataclass(frozen=True)
class PlacementDecision:
    """Outcome of placing one task on the platform."""

    cluster_name: str
    processors: int
    start: float
    finish: float
    packed: bool
    original_processors: int

    @property
    def was_reduced(self) -> bool:
        """True when the packing mechanism shrank the allocation."""
        return self.processors < self.original_processors


class PlacementEngine:
    """Places allocated tasks one by one, maintaining processor timelines.

    Implements the paper's earliest-finish-time mapping of moldable tasks
    over all clusters, including the allocation packing rule (shrink a
    delayed allocation only when it starts earlier and finishes no later).
    """

    def __init__(
        self,
        platform: MultiClusterPlatform,
        enable_packing: bool = True,
        comm: Optional[CommunicationEstimator] = None,
        delta: bool = True,
    ) -> None:
        self.platform = platform
        self.enable_packing = enable_packing
        self.comm = comm or CommunicationEstimator(platform)
        self.timelines = PlatformTimeline(platform)
        self.packed_tasks = 0
        #: When True, ``place`` uses the delta-EFT fast path (bound-ordered
        #: cluster evaluation with early cutoffs); when False, the full
        #: PR-2 evaluation of every cluster -- the golden fallback.
        self.delta = delta
        # Cluster objects in declaration order, cached once: ``place`` is
        # called for every task of every application.
        self._clusters = list(platform)
        # Per-cluster evaluation context of the delta path, in declaration
        # order: (cluster, timeline, speed_flops, translation memo).  The
        # memo caches ``ReferenceCluster.translate`` results keyed by
        # (reference speed, reference processors) -- translation is pure
        # integer arithmetic repeated for every task of every admission.
        self._cluster_info = [
            (
                cluster,
                self.timelines.timeline(cluster.name),
                cluster.speed_flops,
                {},
            )
            for cluster in self._clusters
        ]

    # ------------------------------------------------------------------ #
    # ready-time computation
    # ------------------------------------------------------------------ #
    def data_ready_time(
        self,
        ptg_name: str,
        task_id: int,
        predecessors: List[Tuple[int, float]],
        schedule: Schedule,
        dst_cluster: str,
        not_before: float = 0.0,
    ) -> float:
        """Earliest time the inputs of a task are available on *dst_cluster*.

        *predecessors* is a list of ``(pred_task_id, edge_data_bytes)``.
        Each predecessor must already be in *schedule*.  Redistribution
        times come from the memoized :class:`CommunicationEstimator`.
        """
        ready = not_before
        for pred_id, data_bytes in predecessors:
            pred_entry = schedule.entry(ptg_name, pred_id)
            transfer = self.comm.transfer_time(
                data_bytes, pred_entry.cluster_name, dst_cluster
            )
            ready = max(ready, pred_entry.finish + transfer)
        return ready

    # ------------------------------------------------------------------ #
    # candidate evaluation
    # ------------------------------------------------------------------ #
    @staticmethod
    def _candidate_durations(task: Task, speed_flops: float, max_procs: int) -> np.ndarray:
        """Execution times of *task* on ``1..max_procs`` processors.

        Vectorized Amdahl model ``T(p) = (alpha + (1-alpha)/p) * w / s``
        with the exact operation order of
        :meth:`repro.dag.cost_models.AmdahlTaskModel.time`, so each entry
        is bit-identical to the scalar computation.
        """
        if task.is_synthetic:
            return np.zeros(max_procs, dtype=float)
        procs = np.arange(1, max_procs + 1, dtype=float)
        return (task.alpha + (1.0 - task.alpha) / procs) * task.flops / speed_flops

    def _packing_sweep(
        self,
        requested: int,
        ready_time: float,
        start: float,
        finish: float,
        kth_free: np.ndarray,
        durations: np.ndarray,
    ) -> Tuple[int, float, float, bool, int]:
        """Best ``(procs, start, finish, packed, original)`` for one cluster.

        Walks the allocation sizes ``requested-1 .. 1`` against the
        precomputed k-th free times and durations, applying the paper's
        packing rule: accept a smaller allocation only if the task starts
        earlier and finishes no later than on its original allocation.
        """
        best = (requested, start, finish, False, requested)
        if not self.enable_packing or requested == 1:
            return best
        if start <= ready_time + 1e-12:
            # the task is not delayed by processor availability: keep it.
            return best
        frees = kth_free[: requested - 1].tolist()
        durs = durations[: requested - 1].tolist()
        for procs in range(requested - 1, 0, -1):
            kth = frees[procs - 1]
            alt_start = ready_time if ready_time >= kth else kth
            alt_finish = alt_start + durs[procs - 1]
            if alt_start < start - 1e-12 and alt_finish <= finish + 1e-12:
                # paper rule: accept a smaller allocation only if it starts
                # earlier and finishes no later.
                if alt_finish < best[2] - 1e-12 or (
                    abs(alt_finish - best[2]) <= 1e-12 and alt_start < best[1]
                ):
                    best = (procs, alt_start, alt_finish, True, requested)
        return best

    def _evaluate_cluster(
        self,
        task: Task,
        allocation: Allocation,
        cluster_name: str,
        ready_time: float,
    ) -> Tuple[int, float, float, bool, int]:
        """Best ``(procs, start, finish, packed, original_procs)`` on one cluster."""
        if ready_time < 0:
            raise MappingError(f"ready_time must be non-negative, got {ready_time}")
        cluster = self.platform.cluster(cluster_name)
        timeline = self.timelines.timeline(cluster_name)
        requested = allocation.cluster_processors(task, cluster)
        requested = min(requested, cluster.num_processors)
        kth_free = timeline.kth_free_times()
        durations = self._candidate_durations(task, cluster.speed_flops, requested)
        kth = float(kth_free[requested - 1])
        start = ready_time if ready_time >= kth else kth
        finish = start + float(durations[requested - 1])
        return self._packing_sweep(
            requested, ready_time, start, finish, kth_free, durations
        )

    # ------------------------------------------------------------------ #
    # cluster selection
    # ------------------------------------------------------------------ #
    def _select_full(
        self,
        ptg_name: str,
        task: Task,
        allocation: Allocation,
        predecessors: List[Tuple[int, float]],
        schedule: Schedule,
        not_before: float,
    ) -> PlacementDecision:
        """Evaluate every cluster (the ``delta=False`` golden fallback).

        The earliest ``(finish, start)`` wins with ties broken by the
        platform's cluster declaration order.
        """
        best_decision: Optional[PlacementDecision] = None
        for cluster in self._clusters:
            ready = self.data_ready_time(
                ptg_name, task.task_id, predecessors, schedule, cluster.name, not_before
            )
            procs, start, finish, packed, original = self._evaluate_cluster(
                task, allocation, cluster.name, ready
            )
            decision = PlacementDecision(
                cluster_name=cluster.name,
                processors=procs,
                start=start,
                finish=finish,
                packed=packed,
                original_processors=original,
            )
            if best_decision is None or (decision.finish, decision.start) < (
                best_decision.finish,
                best_decision.start,
            ):
                best_decision = decision
        if best_decision is None:  # pragma: no cover - platform is never empty
            raise MappingError("platform has no cluster to place the task on")
        return best_decision

    def _select_delta(
        self,
        ptg_name: str,
        task: Task,
        allocation: Allocation,
        predecessors: List[Tuple[int, float]],
        schedule: Schedule,
        not_before: float,
    ) -> PlacementDecision:
        """Delta-EFT cluster selection: bound-ordered with early cutoff.

        Bit-identical to :meth:`_select_full`.  For every cluster,
        ``max(ready lower bound, first free time) + T(translated procs)``
        is an exact lower bound on any achievable finish there -- packed
        candidates included, since shrinking the allocation only raises
        the duration and the ``k``-th free time is minimal at ``k = 1``.
        Clusters are evaluated in ascending bound order, so once a bound
        exceeds the best finish found the rest are dominated and skipped
        without computing their data-ready times or candidates.  The
        winner is picked by the (unique) lexicographic minimum of
        ``(finish, start, declaration index)``, which equals the full
        pass's first-wins declaration-order scan.
        """
        if not_before < 0:
            raise MappingError(f"ready_time must be non-negative, got {not_before}")
        # Resolve predecessor placements once (the full pass re-reads the
        # schedule per cluster); their maximal finish joins ``not_before``
        # as a transfer-free lower bound on every cluster's ready time.
        preds: List[Tuple[float, str, float]] = []
        ready_floor = not_before
        for pred_id, data_bytes in predecessors:
            entry = schedule.entry(ptg_name, pred_id)
            preds.append((entry.finish, entry.cluster_name, data_bytes))
            if entry.finish > ready_floor:
                ready_floor = entry.finish

        synthetic = task.is_synthetic
        if synthetic:
            alpha = one_minus = flops = 0.0
            ref_procs = 1
        else:
            alpha = task.alpha
            one_minus = 1.0 - alpha
            flops = task.flops
            ref_procs = allocation.processors(task.task_id)
        ref_speed = allocation.reference.speed_gflops
        memo_key = (ref_speed, ref_procs)

        candidates = []
        for decl_index, (cluster, timeline, speed, memo) in enumerate(
            self._cluster_info
        ):
            if synthetic:
                requested = 1
                dur_req = 0.0
            else:
                requested = memo.get(memo_key)
                if requested is None:
                    # translate() clips to [1, cluster size], matching the
                    # full pass's cluster_processors + min()
                    requested = memo[memo_key] = allocation.reference.translate(
                        ref_procs, cluster
                    )
                dur_req = (alpha + one_minus / requested) * flops / speed
            frontier = timeline.kth_free_list()
            kth0 = frontier[0]
            lower_start = ready_floor if ready_floor >= kth0 else kth0
            candidates.append(
                (
                    lower_start + dur_req,
                    decl_index,
                    cluster,
                    requested,
                    dur_req,
                    frontier,
                    speed,
                )
            )
        candidates.sort(key=lambda c: (c[0], c[1]))

        comm = self.comm
        enable_packing = self.enable_packing
        best_finish = best_start = float("inf")
        best_decl = len(candidates)
        best: Optional[Tuple[int, float, float, bool, int, str]] = None
        for bound, decl_index, cluster, requested, dur_req, frontier, speed in (
            candidates
        ):
            if bound > best_finish:
                # every remaining candidate finishes at or above its bound
                break
            cname = cluster.name
            ready = not_before
            for pred_finish, pred_cluster, data_bytes in preds:
                if pred_cluster == cname:
                    t = pred_finish  # intra-cluster transfer is exactly 0.0
                else:
                    t = pred_finish + comm.transfer_time(
                        data_bytes, pred_cluster, cname
                    )
                if t > ready:
                    ready = t
            kth = frontier[requested - 1]
            start = ready if ready >= kth else kth
            finish = start + dur_req

            procs, pstart, pfinish, packed = requested, start, finish, False
            if enable_packing and requested > 1 and start > ready + 1e-12:
                p = requested - 1
                while p >= 1:
                    kthp = frontier[p - 1]
                    if kthp > ready:
                        alt_finish = kthp + (alpha + one_minus / p) * flops / speed
                        if kthp < start - 1e-12 and alt_finish <= finish + 1e-12:
                            if alt_finish < pfinish - 1e-12 or (
                                abs(alt_finish - pfinish) <= 1e-12 and kthp < pstart
                            ):
                                procs, pstart, pfinish, packed = (
                                    p, kthp, alt_finish, True,
                                )
                        p -= 1
                        continue
                    # the frontier is ascending in p, so from here down
                    # every candidate starts exactly at ``ready`` ...
                    if not ready < start - 1e-12:
                        break  # ... which never satisfies "starts earlier"
                    while p >= 1:
                        alt_finish = ready + (alpha + one_minus / p) * flops / speed
                        if alt_finish > finish + 1e-12 or alt_finish > pfinish + 1e-12:
                            # durations only grow as p shrinks, so neither
                            # acceptance bound can be met again: done
                            break
                        if alt_finish < pfinish - 1e-12 or (
                            abs(alt_finish - pfinish) <= 1e-12 and ready < pstart
                        ):
                            procs, pstart, pfinish, packed = (
                                p, ready, alt_finish, True,
                            )
                        p -= 1
                    break

            if (pfinish, pstart, decl_index) < (best_finish, best_start, best_decl):
                best_finish, best_start, best_decl = pfinish, pstart, decl_index
                best = (procs, pstart, pfinish, packed, requested, cname)
        if best is None:  # pragma: no cover - platform is never empty
            raise MappingError("platform has no cluster to place the task on")
        return PlacementDecision(
            cluster_name=best[5],
            processors=best[0],
            start=best[1],
            finish=best[2],
            packed=best[3],
            original_processors=best[4],
        )

    # ------------------------------------------------------------------ #
    # placement
    # ------------------------------------------------------------------ #
    def place(
        self,
        ptg_name: str,
        task: Task,
        allocation: Allocation,
        predecessors: List[Tuple[int, float]],
        schedule: Schedule,
        not_before: float = 0.0,
    ) -> ScheduledTask:
        """Place *task* on the best cluster and commit the reservation.

        Parameters
        ----------
        ptg_name:
            Name of the application the task belongs to.
        task:
            The task to place.
        allocation:
            The application's allocation (reference processors per task).
        predecessors:
            ``(pred_task_id, edge_data_bytes)`` pairs; all predecessors
            must already appear in *schedule*.
        schedule:
            The schedule under construction; the new entry is added to it.
        not_before:
            Lower bound on the start time (the instant the task became
            ready in the event-driven mapper).
        """
        if self.delta:
            best_decision = self._select_delta(
                ptg_name, task, allocation, predecessors, schedule, not_before
            )
        else:
            best_decision = self._select_full(
                ptg_name, task, allocation, predecessors, schedule, not_before
            )

        timeline = self.timelines.timeline(best_decision.cluster_name)
        cluster = self.platform.cluster(best_decision.cluster_name)
        duration = task.execution_time(best_decision.processors, cluster.speed_flops)
        indices, start, finish = timeline.reserve(
            best_decision.processors,
            ready_time=best_decision.start,
            duration=duration,
        )
        if abs(start - best_decision.start) > 1e-6 or abs(finish - best_decision.finish) > 1e-6:
            # The reservation must match the evaluation: both use the same
            # timeline state, so a mismatch means an internal bug.
            raise MappingError(
                f"inconsistent reservation for task {task.task_id} of {ptg_name!r}: "
                f"evaluated [{best_decision.start:.6f}, {best_decision.finish:.6f}] "
                f"but reserved [{start:.6f}, {finish:.6f}]"
            )
        if best_decision.packed:
            self.packed_tasks += 1
        registry = meters.active()
        if registry is not None:
            registry.counter("mapping.placements").inc()
            if best_decision.packed:
                registry.counter("mapping.packed").inc()
            if best_decision.was_reduced:
                registry.histogram(
                    "mapping.packing_reduction", edges=meters.DEFAULT_COUNT_EDGES
                ).observe(
                    best_decision.original_processors - best_decision.processors
                )
        entry = ScheduledTask(
            ptg_name=ptg_name,
            task_id=task.task_id,
            cluster_name=best_decision.cluster_name,
            processors=tuple(indices),
            start=start,
            finish=finish,
            reference_processors=allocation.processors(task.task_id),
        )
        schedule.add(entry)
        return entry
