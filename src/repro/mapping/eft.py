"""Earliest-finish-time placement of one allocated task, with packing.

For one ready task the placement engine evaluates every cluster of the
platform:

1. translate the reference allocation into an actual processor count on
   that cluster,
2. compute the data-ready time on that cluster (predecessor finish times
   plus inter-cluster redistribution estimates),
3. compute the earliest start given processor availability,
4. apply the paper's **allocation packing** mechanism: "if a task has to
   be delayed because all the processors it needs are not available, we
   reduce its allocation if and only if the task can start earlier and
   finish no later than on its original allocation",
5. keep the cluster and processor count with the earliest finish time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.allocation.base import Allocation
from repro.dag.task import Task
from repro.exceptions import MappingError
from repro.mapping.comm import CommunicationEstimator
from repro.mapping.schedule import Schedule, ScheduledTask
from repro.mapping.timeline import PlatformTimeline
from repro.platform.multicluster import MultiClusterPlatform


@dataclass(frozen=True)
class PlacementDecision:
    """Outcome of placing one task on the platform."""

    cluster_name: str
    processors: int
    start: float
    finish: float
    packed: bool
    original_processors: int

    @property
    def was_reduced(self) -> bool:
        """True when the packing mechanism shrank the allocation."""
        return self.processors < self.original_processors


class PlacementEngine:
    """Places allocated tasks one by one, maintaining processor timelines."""

    def __init__(
        self,
        platform: MultiClusterPlatform,
        enable_packing: bool = True,
        comm: Optional[CommunicationEstimator] = None,
    ) -> None:
        self.platform = platform
        self.enable_packing = enable_packing
        self.comm = comm or CommunicationEstimator(platform)
        self.timelines = PlatformTimeline(platform)
        self.packed_tasks = 0

    # ------------------------------------------------------------------ #
    # ready-time computation
    # ------------------------------------------------------------------ #
    def data_ready_time(
        self,
        ptg_name: str,
        task_id: int,
        predecessors: List[Tuple[int, float]],
        schedule: Schedule,
        dst_cluster: str,
        not_before: float = 0.0,
    ) -> float:
        """Earliest time the inputs of a task are available on *dst_cluster*.

        *predecessors* is a list of ``(pred_task_id, edge_data_bytes)``.
        Each predecessor must already be in *schedule*.
        """
        ready = not_before
        for pred_id, data_bytes in predecessors:
            pred_entry = schedule.entry(ptg_name, pred_id)
            transfer = self.comm.transfer_time(
                data_bytes, pred_entry.cluster_name, dst_cluster
            )
            ready = max(ready, pred_entry.finish + transfer)
        return ready

    # ------------------------------------------------------------------ #
    # placement
    # ------------------------------------------------------------------ #
    def _evaluate_cluster(
        self,
        task: Task,
        allocation: Allocation,
        cluster_name: str,
        ready_time: float,
    ) -> Tuple[int, float, float, bool, int]:
        """Best ``(procs, start, finish, packed, original_procs)`` on one cluster."""
        cluster = self.platform.cluster(cluster_name)
        timeline = self.timelines.timeline(cluster_name)
        requested = allocation.cluster_processors(task, cluster)
        requested = min(requested, cluster.num_processors)

        def start_finish(procs: int) -> Tuple[float, float]:
            start = timeline.earliest_start(procs, ready_time)
            duration = task.execution_time(procs, cluster.speed_flops)
            return start, start + duration

        start, finish = start_finish(requested)
        best = (requested, start, finish, False, requested)
        if not self.enable_packing or requested == 1:
            return best
        if start <= ready_time + 1e-12:
            # the task is not delayed by processor availability: keep it.
            return best
        for procs in range(requested - 1, 0, -1):
            alt_start, alt_finish = start_finish(procs)
            if alt_start < start - 1e-12 and alt_finish <= finish + 1e-12:
                # paper rule: accept a smaller allocation only if it starts
                # earlier and finishes no later.
                if alt_finish < best[2] - 1e-12 or (
                    abs(alt_finish - best[2]) <= 1e-12 and alt_start < best[1]
                ):
                    best = (procs, alt_start, alt_finish, True, requested)
        return best

    def place(
        self,
        ptg_name: str,
        task: Task,
        allocation: Allocation,
        predecessors: List[Tuple[int, float]],
        schedule: Schedule,
        not_before: float = 0.0,
    ) -> ScheduledTask:
        """Place *task* on the best cluster and commit the reservation.

        Parameters
        ----------
        ptg_name:
            Name of the application the task belongs to.
        task:
            The task to place.
        allocation:
            The application's allocation (reference processors per task).
        predecessors:
            ``(pred_task_id, edge_data_bytes)`` pairs; all predecessors
            must already appear in *schedule*.
        schedule:
            The schedule under construction; the new entry is added to it.
        not_before:
            Lower bound on the start time (the instant the task became
            ready in the event-driven mapper).
        """
        best_decision: Optional[PlacementDecision] = None
        for cluster in self.platform:
            ready = self.data_ready_time(
                ptg_name, task.task_id, predecessors, schedule, cluster.name, not_before
            )
            procs, start, finish, packed, original = self._evaluate_cluster(
                task, allocation, cluster.name, ready
            )
            decision = PlacementDecision(
                cluster_name=cluster.name,
                processors=procs,
                start=start,
                finish=finish,
                packed=packed,
                original_processors=original,
            )
            if best_decision is None or (decision.finish, decision.start) < (
                best_decision.finish,
                best_decision.start,
            ):
                best_decision = decision
        if best_decision is None:  # pragma: no cover - platform is never empty
            raise MappingError("platform has no cluster to place the task on")

        timeline = self.timelines.timeline(best_decision.cluster_name)
        cluster = self.platform.cluster(best_decision.cluster_name)
        duration = task.execution_time(best_decision.processors, cluster.speed_flops)
        indices, start, finish = timeline.reserve(
            best_decision.processors,
            ready_time=best_decision.start,
            duration=duration,
        )
        if abs(start - best_decision.start) > 1e-6 or abs(finish - best_decision.finish) > 1e-6:
            # The reservation must match the evaluation: both use the same
            # timeline state, so a mismatch means an internal bug.
            raise MappingError(
                f"inconsistent reservation for task {task.task_id} of {ptg_name!r}: "
                f"evaluated [{best_decision.start:.6f}, {best_decision.finish:.6f}] "
                f"but reserved [{start:.6f}, {finish:.6f}]"
            )
        if best_decision.packed:
            self.packed_tasks += 1
        entry = ScheduledTask(
            ptg_name=ptg_name,
            task_id=task.task_id,
            cluster_name=best_decision.cluster_name,
            processors=tuple(indices),
            start=start,
            finish=finish,
            reference_processors=allocation.processors(task.task_id),
        )
        schedule.add(entry)
        return entry
