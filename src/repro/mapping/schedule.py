"""Schedule data structures.

A :class:`Schedule` is the output of the mapping step: for every task of
every submitted application it records the chosen cluster, the concrete
processor indices, the number of processors actually used (which may be
smaller than the translated allocation when the packing mechanism kicked
in), and the planned start and finish times.

The schedule is also the input of the discrete-event executor in
:mod:`repro.simulate`, which replays it against the platform model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.dag.graph import PTG
from repro.exceptions import MappingError


@dataclass(frozen=True)
class ScheduledTask:
    """Placement of one task of one application.

    Attributes
    ----------
    ptg_name:
        Name of the application the task belongs to.
    task_id:
        Task identifier inside its PTG.
    cluster_name:
        Cluster the task runs on.
    processors:
        Concrete processor indices used on that cluster.
    start, finish:
        Planned start and finish times (seconds from submission).
    reference_processors:
        The reference allocation the mapping translated (diagnostics).
    """

    ptg_name: str
    task_id: int
    cluster_name: str
    processors: Tuple[int, ...]
    start: float
    finish: float
    reference_processors: int = 1

    def __post_init__(self) -> None:
        if self.start < 0 or self.finish < self.start:
            raise MappingError(
                f"invalid time window [{self.start}, {self.finish}] for task "
                f"{self.task_id} of {self.ptg_name!r}"
            )
        if len(self.processors) < 1:
            raise MappingError(
                f"task {self.task_id} of {self.ptg_name!r} mapped on zero processors"
            )
        if len(set(self.processors)) != len(self.processors):
            raise MappingError(
                f"task {self.task_id} of {self.ptg_name!r} mapped twice on a processor"
            )

    @property
    def num_processors(self) -> int:
        """Number of processors actually used."""
        return len(self.processors)

    @property
    def duration(self) -> float:
        """Planned execution duration."""
        return self.finish - self.start


class Schedule:
    """A complete mapping of one or several applications onto a platform."""

    def __init__(self, platform_name: str = "") -> None:
        self.platform_name = platform_name
        self._entries: Dict[Tuple[str, int], ScheduledTask] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add(self, entry: ScheduledTask) -> None:
        """Record the placement of one task (each task may be placed once)."""
        key = (entry.ptg_name, entry.task_id)
        if key in self._entries:
            raise MappingError(
                f"task {entry.task_id} of {entry.ptg_name!r} is already scheduled"
            )
        self._entries[key] = entry

    def remove_application(self, ptg_name: str) -> int:
        """Drop every placement of one application; returns the count.

        Used to roll back a partially-mapped application when an
        admission fails mid-placement (the streaming session's
        transactional :meth:`~repro.streaming.engine.StreamSession.admit`).
        Removing an application that was never placed is a no-op.
        """
        keys = [key for key in self._entries if key[0] == ptg_name]
        for key in keys:
            del self._entries[key]
        return len(keys)

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ScheduledTask]:
        return iter(self._entries.values())

    def entry(self, ptg_name: str, task_id: int) -> ScheduledTask:
        """Return the placement of one task."""
        try:
            return self._entries[(ptg_name, task_id)]
        except KeyError:
            raise MappingError(
                f"task {task_id} of {ptg_name!r} is not in the schedule"
            ) from None

    def has_entry(self, ptg_name: str, task_id: int) -> bool:
        """True when the task has been placed."""
        return (ptg_name, task_id) in self._entries

    def application_names(self) -> List[str]:
        """Names of the applications present in the schedule."""
        seen: Dict[str, None] = {}
        for name, _ in self._entries:
            seen.setdefault(name, None)
        return list(seen)

    def entries_of(self, ptg_name: str) -> List[ScheduledTask]:
        """All placements of one application, ordered by start time."""
        rows = [e for (name, _), e in self._entries.items() if name == ptg_name]
        if not rows:
            raise MappingError(f"no application named {ptg_name!r} in the schedule")
        return sorted(rows, key=lambda e: (e.start, e.finish, e.task_id))

    def entries_on(self, cluster_name: str) -> List[ScheduledTask]:
        """All placements on one cluster, ordered by start time."""
        rows = [e for e in self._entries.values() if e.cluster_name == cluster_name]
        return sorted(rows, key=lambda e: (e.start, e.finish, e.task_id))

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    def makespan(self, ptg_name: str) -> float:
        """Completion time of the application (from submission at t=0).

        In the concurrent setting the waiting time before the entry task
        starts counts towards the makespan: an application postponed by
        its competitors *is* slowed down, which is exactly what the
        fairness metric must capture.
        """
        return max(e.finish for e in self.entries_of(ptg_name))

    def span(self, ptg_name: str) -> float:
        """Time between the start of the first task and the end of the last one."""
        entries = self.entries_of(ptg_name)
        return max(e.finish for e in entries) - min(e.start for e in entries)

    def global_makespan(self) -> float:
        """Completion time of the last task over all applications."""
        if not self._entries:
            return 0.0
        return max(e.finish for e in self._entries.values())

    def makespans(self) -> Dict[str, float]:
        """Per-application completion times."""
        return {name: self.makespan(name) for name in self.application_names()}

    def work_on(self, cluster_name: str) -> float:
        """Busy processor-seconds consumed on one cluster."""
        return sum(e.duration * e.num_processors for e in self.entries_on(cluster_name))

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def validate_no_overlap(self) -> None:
        """Check that no processor executes two tasks at the same time.

        Raises :class:`MappingError` on the first conflict found.  Two
        reservations may share an endpoint (one finishes exactly when the
        other starts).
        """
        by_proc: Dict[Tuple[str, int], List[Tuple[float, float, ScheduledTask]]] = {}
        for entry in self._entries.values():
            for proc in entry.processors:
                by_proc.setdefault((entry.cluster_name, proc), []).append(
                    (entry.start, entry.finish, entry)
                )
        eps = 1e-9
        for (cluster, proc), intervals in by_proc.items():
            intervals.sort(key=lambda item: (item[0], item[1]))
            for (s1, f1, e1), (s2, f2, e2) in zip(intervals, intervals[1:]):
                if s2 < f1 - eps:
                    raise MappingError(
                        f"processor {proc} of cluster {cluster!r} is used by task "
                        f"{e1.task_id} of {e1.ptg_name!r} until {f1:.3f} and by task "
                        f"{e2.task_id} of {e2.ptg_name!r} from {s2:.3f}"
                    )

    def validate_precedences(self, ptgs: Sequence[PTG]) -> None:
        """Check that every task starts after all its predecessors finished."""
        eps = 1e-9
        for ptg in ptgs:
            for task in ptg.tasks():
                entry = self.entry(ptg.name, task.task_id)
                for pred in ptg.predecessors(task.task_id):
                    pred_entry = self.entry(ptg.name, pred)
                    if entry.start < pred_entry.finish - eps:
                        raise MappingError(
                            f"task {task.task_id} of {ptg.name!r} starts at "
                            f"{entry.start:.3f} before its predecessor {pred} "
                            f"finishes at {pred_entry.finish:.3f}"
                        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        apps = ", ".join(
            f"{name}: {self.makespan(name):.1f}s" for name in self.application_names()
        )
        return f"Schedule[{self.platform_name}] {len(self)} tasks ({apps})"
