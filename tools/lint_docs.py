#!/usr/bin/env python
"""Lint the documentation tree under ``docs/``.

Stdlib-only checker run by CI (and by ``tests/test_docs.py``) so the
documentation cannot silently rot:

* the required pages exist (``index.md``, ``architecture.md``,
  ``scenarios.md``, ``performance.md``, ``campaigns.md``,
  ``streaming.md``, ``faults.md``, ``observability.md``,
  ``testing.md``, ``cli.md``),
* every page starts with a level-1 heading and has balanced code fences,
* every relative markdown link resolves to an existing file, and every
  ``#anchor`` fragment matches a heading of the target page
  (GitHub-style slugs),
* every package named in the architecture page's mapping table exists in
  the source tree.

Exit code 0 when clean, 1 with one line per problem otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"
REQUIRED_PAGES = (
    "index.md",
    "architecture.md",
    "scenarios.md",
    "performance.md",
    "campaigns.md",
    "streaming.md",
    "service.md",
    "faults.md",
    "observability.md",
    "testing.md",
    "cli.md",
)

_LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")


def github_slug(heading: str) -> str:
    """GitHub-style anchor slug of one heading."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def page_anchors(path: Path) -> set:
    """All heading anchors of one markdown page."""
    anchors = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.strip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING_RE.match(line)
        if match:
            anchors.add(github_slug(match.group(2)))
    return anchors


def lint_page(path: Path, problems: list) -> None:
    """Check one page: heading, fences, links."""
    rel = path.relative_to(REPO_ROOT)
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines()

    if not lines or not lines[0].startswith("# "):
        problems.append(f"{rel}: first line must be a level-1 heading")
    if text.count("```") % 2 != 0:
        problems.append(f"{rel}: unbalanced code fences")

    in_fence = False
    for lineno, line in enumerate(lines, start=1):
        if line.strip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for target in _LINK_RE.findall(line):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("#"):
                if github_slug(target[1:]) not in page_anchors(path):
                    problems.append(f"{rel}:{lineno}: broken anchor {target!r}")
                continue
            file_part, _, fragment = target.partition("#")
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                problems.append(f"{rel}:{lineno}: broken link {target!r}")
                continue
            if fragment and resolved.suffix == ".md":
                if fragment not in page_anchors(resolved):
                    problems.append(
                        f"{rel}:{lineno}: broken anchor {target!r} "
                        f"(no such heading in {file_part})"
                    )


def lint_architecture_packages(problems: list) -> None:
    """Every ``repro.<pkg>`` named in architecture.md must exist."""
    page = DOCS_DIR / "architecture.md"
    if not page.exists():
        return
    src = REPO_ROOT / "src" / "repro"
    for package in set(re.findall(r"`repro\.(\w+)`", page.read_text(encoding="utf-8"))):
        if not (src / package).is_dir() and not (src / f"{package}.py").exists():
            problems.append(f"docs/architecture.md: unknown package repro.{package}")


def main() -> int:
    problems: list = []
    if not DOCS_DIR.is_dir():
        print("docs/ directory is missing", file=sys.stderr)
        return 1
    for name in REQUIRED_PAGES:
        if not (DOCS_DIR / name).exists():
            problems.append(f"docs/{name}: required page is missing")
    for path in sorted(DOCS_DIR.glob("**/*.md")):
        lint_page(path, problems)
    lint_architecture_packages(problems)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"\n{len(problems)} documentation problem(s)", file=sys.stderr)
        return 1
    print(f"docs OK ({len(list(DOCS_DIR.glob('**/*.md')))} pages linted)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
