#!/usr/bin/env python3
"""Build custom multi-cluster platforms and study contention effects.

The paper's four platforms differ in heterogeneity and in whether their
clusters share a switch (Rennes, Lille) or each have their own (Nancy,
Sophia), "which leads to different contention conditions".  This example
builds two synthetic platforms with the same compute power but opposite
switch topologies and measures how the sharing affects a
communication-heavy workload -- something the library makes easy to
explore beyond the paper's own scenarios.

Run with::

    python examples/custom_platform.py
"""

from __future__ import annotations

import numpy as np

from repro import ConcurrentScheduler, ScheduleExecutor, strategy
from repro.dag.generator import RandomPTGConfig, generate_random_ptg
from repro.platform.cluster import Cluster
from repro.platform.multicluster import MultiClusterPlatform
from repro.platform.network import NetworkTopology, Switch
from repro.utils.tables import format_table


def build_platforms():
    """Two platforms with identical clusters but different topologies.

    The switch backplanes are deliberately modest (5 Gb/s) so that the
    contention difference between the two topologies is visible on a
    communication-heavy workload.
    """
    sizes = (32, 48, 40)
    speeds = (3.2, 3.6, 4.4)
    clusters = [
        Cluster(f"c{i}", size, speed, site="demo")
        for i, (size, speed) in enumerate(zip(sizes, speeds))
    ]
    names = [c.name for c in clusters]
    modest_backplane = 6.25e8  # 5 Gb/s
    shared = MultiClusterPlatform(
        "shared-switch",
        clusters,
        NetworkTopology.shared_switch(
            names, switch_name="site-switch", switch_bandwidth=modest_backplane
        ),
    )
    split = MultiClusterPlatform(
        "private-switches",
        clusters,
        NetworkTopology.per_cluster_switch(names, switch_bandwidth=modest_backplane),
    )

    # a fully hand-built variant: custom switch bandwidths and latencies
    clusters = [
        Cluster("cpu-old", 64, 2.8, site="custom"),
        Cluster("cpu-new", 32, 5.2, site="custom"),
    ]
    topology = NetworkTopology(
        switches=[Switch("backbone", bandwidth=1.25e9, latency=2e-4)],
        attachment={"cpu-old": "backbone", "cpu-new": "backbone"},
        link_bandwidth=125e6,
        link_latency=2e-4,
    )
    custom = MultiClusterPlatform("hand-built", clusters, topology)
    return [shared, split, custom]


def main() -> None:
    rng = np.random.default_rng(11)
    # a wide, communication-heavy workload (dense fork-join like graphs)
    workload = [
        generate_random_ptg(
            rng,
            RandomPTGConfig(n_tasks=20, width=0.8, density=0.8),
            name=f"dense-{i}",
        )
        for i in range(5)
    ]

    rows = []
    for platform in build_platforms():
        planned = ConcurrentScheduler(strategy("WPS-work")).schedule(workload, platform)
        report = ScheduleExecutor(platform).execute(workload, planned.schedule)
        rows.append(
            [
                platform.name,
                platform.total_processors,
                f"{platform.heterogeneity_percent:.1f}%",
                len(platform.topology.switches),
                report.global_makespan(),
                report.network_bytes / 1e9,
                report.utilisation(platform.total_processors),
            ]
        )

    print(
        format_table(
            ["platform", "procs", "heterogeneity", "switches",
             "batch makespan (s)", "inter-cluster data (GB)", "utilisation"],
            rows,
            title="Same workload, WPS-work constraints, different platforms",
        )
    )
    print()
    print("Clusters sharing one switch contend for its backplane, so the same")
    print("workload finishes later than with private switches whenever the")
    print("schedule moves a lot of data between clusters.")


if __name__ == "__main__":
    main()
