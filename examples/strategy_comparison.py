#!/usr/bin/env python3
"""Compare the eight resource-constraint strategies on one shared platform.

This is the scenario the paper's introduction motivates: several users
submit workflow-like applications (random PTGs) to the resource manager
of a shared multi-cluster, and the manager must decide how much of the
platform each application may use.  The script schedules the same
workload under every strategy and reports, for each one, the unfairness
and batch makespan -- a one-workload slice of Figure 3.

Run with::

    python examples/strategy_comparison.py [--n-ptgs 6] [--site sophia]
"""

from __future__ import annotations

import argparse

from repro.constraints.registry import STRATEGY_NAMES, strategy
from repro.experiments.runner import run_experiment
from repro.experiments.workload import WorkloadSpec, make_workload
from repro.platform import grid5000
from repro.utils.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n-ptgs", type=int, default=6, help="number of concurrent applications")
    parser.add_argument("--site", default="sophia", choices=grid5000.site_names())
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--max-tasks", type=int, default=20,
                        help="cap on the random PTG sizes (None = paper sizes)")
    args = parser.parse_args()

    platform = grid5000.site(args.site)
    workload = make_workload(
        WorkloadSpec("random", n_ptgs=args.n_ptgs, seed=args.seed, max_tasks=args.max_tasks)
    )
    print(platform)
    for ptg in workload:
        print(f"  submitted {ptg}")

    strategies = [strategy(name, family="random") for name in STRATEGY_NAMES]
    experiment = run_experiment(workload, platform, strategies, workload_label="example")

    rows = []
    for name in STRATEGY_NAMES:
        outcome = experiment.outcomes[name]
        rows.append(
            [
                name,
                outcome.unfairness,
                outcome.batch_makespan,
                outcome.mean_application_makespan,
                min(outcome.betas.values()),
                max(outcome.betas.values()),
            ]
        )
    rows.sort(key=lambda row: row[1])
    print()
    print(
        format_table(
            ["strategy", "unfairness", "batch makespan (s)",
             "mean app makespan (s)", "min beta", "max beta"],
            rows,
            title=f"{args.n_ptgs} concurrent random PTGs on {platform.name}",
        )
    )
    print()
    print("Lower unfairness = the applications experience similar slowdowns.")
    print("The paper's recommendation (WPS-width / WPS-work) should sit near the")
    print("top of this table while keeping the batch makespan close to the best.")


if __name__ == "__main__":
    main()
