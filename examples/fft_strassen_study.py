#!/usr/bin/env python3
"""Regular applications: FFT and Strassen workloads (Figures 4 and 5).

The paper contrasts irregular workflow-like PTGs with two very regular
applications: the Fast Fourier Transform (whose task parallelism is
limited and tied to its depth) and the Strassen matrix multiplication
(whose 25-task shape is identical for every instance, which makes the
width-based strategies pointless).  This example schedules a mixed batch
of FFT and Strassen applications and shows:

* how the structural characteristics (critical path, width, work) differ
  between the two application families,
* which resource constraints each strategy derives from them,
* the resulting fairness / makespan trade-off.

Run with::

    python examples/fft_strassen_study.py
"""

from __future__ import annotations

import numpy as np

from repro.constraints.characteristics import (
    critical_path_characteristic,
    width_characteristic,
    work_characteristic,
)
from repro.constraints.registry import strategy
from repro.dag.fft import generate_fft_ptg
from repro.dag.strassen import generate_strassen_ptg
from repro.experiments.runner import run_experiment
from repro.platform import grid5000
from repro.utils.tables import format_table


def main() -> None:
    rng = np.random.default_rng(2009)
    platform = grid5000.nancy()
    print(platform)

    workload = [
        generate_fft_ptg(16, rng=rng, name="fft-16"),
        generate_fft_ptg(8, rng=rng, name="fft-8"),
        generate_strassen_ptg(rng=rng, name="strassen-a"),
        generate_strassen_ptg(rng=rng, name="strassen-b"),
    ]

    # structural characteristics driving the PS / WPS strategies
    rows = [
        [
            ptg.name,
            ptg.n_tasks,
            ptg.depth,
            width_characteristic(ptg, platform),
            critical_path_characteristic(ptg, platform),
            work_characteristic(ptg, platform) / 1e12,
        ]
        for ptg in workload
    ]
    print()
    print(
        format_table(
            ["application", "tasks", "levels", "max width", "critical path (s)", "work (Tflop)"],
            rows,
            title="Structural characteristics",
        )
    )

    strategies = [strategy(name, family="fft") for name in ("S", "ES", "PS-work", "WPS-cp", "WPS-work")]
    experiment = run_experiment(workload, platform, strategies, workload_label="fft-strassen")

    print()
    beta_rows = []
    for ptg in workload:
        beta_rows.append(
            [ptg.name]
            + [experiment.outcomes[s.name].betas[ptg.name] for s in strategies]
        )
    print(
        format_table(
            ["application"] + [s.name for s in strategies],
            beta_rows,
            title="Resource constraint beta assigned to each application",
        )
    )

    print()
    outcome_rows = [
        [
            s.name,
            experiment.outcomes[s.name].unfairness,
            experiment.outcomes[s.name].batch_makespan,
            experiment.outcomes[s.name].mean_application_makespan,
        ]
        for s in strategies
    ]
    print(
        format_table(
            ["strategy", "unfairness", "batch makespan (s)", "mean app makespan (s)"],
            outcome_rows,
            title="Fairness / makespan trade-off on the mixed FFT + Strassen batch",
        )
    )


if __name__ == "__main__":
    main()
