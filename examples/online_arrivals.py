#!/usr/bin/env python3
"""Staggered submissions: the paper's future-work scenario.

Instead of submitting every application at the same instant, applications
arrive over time, and the resource constraint of each newcomer is computed
against the applications still present in the system at its arrival (the
extension implemented in :mod:`repro.scheduler.online`).

The script submits a stream of applications to the Lille subset and shows,
for each one, how many competitors were present at its admission, the
resource constraint it received, and its makespan measured from its own
submission time.

Run with::

    python examples/online_arrivals.py
"""

from __future__ import annotations

import numpy as np

from repro.constraints.registry import strategy
from repro.dag.generator import RandomPTGConfig, generate_random_ptg
from repro.platform import grid5000
from repro.scheduler.online import Arrival, OnlineConcurrentScheduler
from repro.simulate import ScheduleExecutor, application_gantt
from repro.utils.tables import format_table


def main() -> None:
    rng = np.random.default_rng(5)
    platform = grid5000.lille()
    print(platform)

    # a stream of six applications arriving every ~40 seconds
    arrivals = []
    for i in range(6):
        ptg = generate_random_ptg(
            rng, RandomPTGConfig(n_tasks=int(rng.choice([10, 20]))), name=f"job-{i}"
        )
        arrivals.append(Arrival(ptg, time=40.0 * i))

    scheduler = OnlineConcurrentScheduler(strategy("WPS-work"))
    result = scheduler.schedule(arrivals, platform)

    # replay the resulting schedule on the simulator for measured times
    report = ScheduleExecutor(platform).execute(
        [a.ptg for a in arrivals], result.schedule
    )

    rows = []
    for arrival in result.arrivals:
        name = arrival.ptg.name
        rows.append(
            [
                name,
                arrival.time,
                len(result.active_at_admission[name]),
                result.betas[name],
                result.completion_time(name),
                result.makespan(name),
            ]
        )
    print()
    print(
        format_table(
            ["application", "submitted (s)", "competitors at admission",
             "beta", "completed (s)", "makespan (s)"],
            rows,
            title="Online admission with WPS-work constraints",
        )
    )
    print()
    print(application_gantt(report))


if __name__ == "__main__":
    main()
