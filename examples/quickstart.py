#!/usr/bin/env python3
"""Quickstart: schedule a few parallel task graphs on a Grid'5000 subset.

This walks through the whole pipeline of the paper in ~40 lines:

1. pick one of the multi-cluster platforms of Table 1,
2. generate a workload of random parallel task graphs (PTGs),
3. give each application a resource constraint with the WPS-width
   strategy (the paper's recommended compromise),
4. allocate processors with SCRAP-MAX and map the applications
   concurrently with the ready-list mapper,
5. execute the schedule on the discrete-event simulator,
6. report per-application makespans, slowdowns and the unfairness of the
   schedule.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ConcurrentScheduler,
    RandomPTGConfig,
    ScheduleExecutor,
    generate_random_ptg,
    grid5000,
    strategy,
)
from repro.experiments.runner import compute_own_makespans
from repro.metrics import slowdowns, unfairness
from repro.utils.tables import format_table


def main() -> None:
    rng = np.random.default_rng(42)

    # 1. the platform: the Rennes subset (3 clusters, 229 processors)
    platform = grid5000.rennes()
    print(platform)

    # 2. the workload: four random PTGs of 20 tasks submitted together
    workload = [
        generate_random_ptg(rng, RandomPTGConfig(n_tasks=20), name=f"user-app-{i}")
        for i in range(4)
    ]

    # 3-4. constraint determination + constrained allocation + concurrent mapping
    scheduler = ConcurrentScheduler(strategy("WPS-width"))
    planned = scheduler.schedule(workload, platform)

    # 5. simulated execution (the measurement step the paper does with SimGrid)
    report = ScheduleExecutor(platform).execute(workload, planned.schedule)
    measured = report.makespans()

    # 6. fairness metrics need the dedicated-platform reference makespans
    own = compute_own_makespans(workload, platform)
    per_app_slowdown = slowdowns(own, measured)

    rows = [
        [
            ptg.name,
            ptg.n_tasks,
            planned.betas[ptg.name],
            own[ptg.name],
            measured[ptg.name],
            per_app_slowdown[ptg.name],
        ]
        for ptg in workload
    ]
    print()
    print(
        format_table(
            ["application", "tasks", "beta", "M_own (s)", "M_multi (s)", "slowdown"],
            rows,
            title="Concurrent schedule with the WPS-width strategy",
        )
    )
    print()
    print(f"batch makespan : {report.global_makespan():.1f} s")
    print(f"unfairness     : {unfairness(per_app_slowdown):.3f}")


if __name__ == "__main__":
    main()
