"""Benchmark E4 -- Figure 4: the eight constraint strategies on FFT PTGs.

FFT graphs are very regular (all tasks of a level share the same cost)
and expose limited task parallelism, so "the S strategy is more
competitive for this class of applications" while the ES strategy "achieves
particularly poor performance in terms of makespans" at high concurrency.
"""

from benchmarks.conftest import campaign_scale, full_scale, write_result
from repro.experiments.figures import run_figure
from repro.experiments.reporting import render_campaign_summary, render_figure


def run_fig4():
    scale = campaign_scale()
    # FFT graphs are larger (up to 95 tasks); the reduced campaign uses a
    # single platform to keep the benchmark under a couple of minutes.
    platforms = scale["platforms"] if full_scale() else scale["platforms"][:1]
    counts = scale["ptg_counts"] if full_scale() else (2, 4, 6)
    return run_figure(
        4,
        ptg_counts=counts,
        workloads_per_point=scale["workloads_per_point"],
        platforms=platforms,
        base_seed=2009,
    )


def bench_fig4_fft(benchmark):
    """Regenerate Figure 4 (FFT PTGs)."""
    result = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    text = render_figure(result) + "\n\n" + render_campaign_summary(result.campaign)
    write_result("fig4_fft.txt", text)

    most = max(result.ptg_counts)
    for name in result.strategies():
        assert all(v >= 1.0 - 1e-9 for v in result.relative_makespan[name])
        assert all(v >= 0.0 for v in result.unfairness[name])
    # unfairness grows with the number of concurrent applications
    for name in ("S", "ES"):
        assert result.unfairness_at(name, most) >= result.unfairness_at(
            name, min(result.ptg_counts)
        ) - 1e-9
    # the equal-share strategy pays a visible makespan penalty at high
    # concurrency compared to the proportional strategies
    assert result.relative_makespan_at("ES", most) >= (
        result.relative_makespan_at("PS-work", most) - 0.05
    )
