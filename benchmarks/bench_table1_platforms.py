"""Benchmark E1 -- Table 1: the Grid'5000 multi-cluster subsets.

Regenerates the platform table (cluster names, processor counts, speeds)
and the per-site totals quoted in Section 2 of the paper, and times the
platform-construction path.
"""

from benchmarks.conftest import write_result
from repro.experiments.tables import site_summary_rows, table1_text
from repro.platform import grid5000


def build_all_platforms():
    """Construct the four platforms and their aggregate quantities."""
    sites = grid5000.all_sites()
    return [
        (p.name, p.total_processors, p.total_power_gflops, p.heterogeneity_percent)
        for p in sites
    ]


def bench_table1(benchmark):
    """Rebuild Table 1 and check the paper's totals."""
    summary = benchmark.pedantic(build_all_platforms, rounds=5, iterations=1)
    text = table1_text()
    write_result("table1_platforms.txt", text)

    totals = {name: procs for name, procs, _, _ in summary}
    assert totals == {"lille": 99, "nancy": 167, "rennes": 229, "sophia": 180}
    heterogeneity = {name: round(h, 1) for name, _, _, h in summary}
    assert heterogeneity == {
        "lille": 20.2,
        "nancy": 6.1,
        "rennes": 36.8,
        "sophia": 34.7,
    }
    assert len(site_summary_rows()) == 4
