"""Benchmark E9 -- the campaign orchestration subsystem.

Runs the same reduced-scale random-PTG campaign three ways:

1. the serial in-process runner (the baseline every other figure
   benchmark uses),
2. the parallel orchestrator fanning shards out across worker processes
   with a persistent result store,
3. a warm re-run against the persisted own-makespan cache (the resume
   scenario: results lost, reference makespans kept).

It checks that the parallel aggregates are bit-identical to the serial
ones and writes a ``BENCH_campaign.json`` summary with the wall times,
the speedup and the cache hit rate of the warm re-run.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time

from benchmarks.conftest import campaign_scale, write_result
from repro.campaigns.orchestrator import orchestrate
from repro.campaigns.pool import default_jobs
from repro.campaigns.store import CampaignStore
from repro.experiments.runner import CampaignConfig, run_campaign


def _config() -> CampaignConfig:
    scale = campaign_scale()
    return CampaignConfig(
        family="random",
        ptg_counts=scale["ptg_counts"],
        workloads_per_point=scale["workloads_per_point"],
        platforms=tuple(scale["platforms"]),
        base_seed=2009,
        max_tasks=scale["max_tasks"],
    )


def run_campaign_bench() -> dict:
    config = _config()
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "0")) or default_jobs()

    start = time.perf_counter()
    serial = run_campaign(config)
    serial_seconds = time.perf_counter() - start

    root = tempfile.mkdtemp(prefix="bench-campaign-")
    try:
        store = CampaignStore(root)
        start = time.perf_counter()
        parallel = orchestrate(config, store=store, jobs=jobs)
        parallel_seconds = time.perf_counter() - start

        identical = (
            parallel.result.average_unfairness() == serial.average_unfairness()
            and parallel.result.average_relative_makespan()
            == serial.average_relative_makespan()
        )

        # resume scenario: results lost, own-makespan cache kept
        os.remove(store.results_path)
        warm = orchestrate(config, store=store, jobs=jobs)
    finally:
        shutil.rmtree(root, ignore_errors=True)

    return {
        "shards": parallel.stats.total_shards,
        "jobs": jobs,
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "speedup": round(serial_seconds / parallel_seconds, 2),
        "aggregates_identical": identical,
        "warm_cache_hit_rate": round(warm.stats.cache_hit_rate, 3),
        "warm_cache_hits": warm.stats.cache_hits,
        "warm_cache_misses": warm.stats.cache_misses,
    }


def bench_campaign_parallel(benchmark):
    """Serial vs. parallel campaign wall-time and own-makespan cache hit rate."""
    summary = benchmark.pedantic(run_campaign_bench, rounds=1, iterations=1)
    write_result("BENCH_campaign.json", json.dumps(summary, indent=2, sort_keys=True))

    assert summary["aggregates_identical"]
    assert summary["warm_cache_hit_rate"] == 1.0


if __name__ == "__main__":
    print(json.dumps(run_campaign_bench(), indent=2, sort_keys=True))
