"""Benchmark E11 -- the array-compiled allocation core against the
pre-refactor one.

With the mapping hot path rebuilt (``bench_mapping_core``), the
CPA-family iterative allocation loop dominates every figure, campaign and
mu-sweep run: each of its up-to ``n_tasks * cap`` iterations used to
re-run a full dict-based critical-path DP plus a generator area sum, and
SCRAP repeated both after every tentative increment.  This benchmark
replays a Figure-3-scale allocation workload (10 concurrent random PTGs
of 10/20/50 tasks per seed on a full Grid'5000 site, across the four
procedures and three betas) through

1. the optimized core (:class:`repro.allocation.state.AllocationState`:
   precomputed duration/area/gain tables, incremental resource sums,
   array-compiled critical-path DP over the shared ``DagArrays``), and
2. the pre-refactor loop kept in :mod:`repro.allocation._reference`,

checks that both produce **bit-identical allocations and iteration
stats**, and asserts the optimized core is at least 4x faster.  A
``BENCH_allocation_core.json`` summary records the wall times and the
speedup.

Run standalone with
``PYTHONPATH=src python benchmarks/bench_allocation_core.py`` or through
pytest-benchmark with
``PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only -s``.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

try:
    from benchmarks.conftest import full_scale, write_result
except ModuleNotFoundError:  # standalone: python benchmarks/bench_allocation_core.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.conftest import full_scale, write_result
from repro.allocation._reference import run_reference_allocation
from repro.allocation.iterative import (
    AreaConstraint,
    LevelConstraint,
    NoConstraint,
    run_iterative_allocation,
)
from repro.allocation.reference import ReferenceCluster
from repro.experiments.workload import WorkloadSpec, make_workload
from repro.platform import grid5000

#: Number of timed repetitions per implementation (best-of is reported).
ROUNDS = 3

#: Resource constraints exercised per (PTG, procedure).
BETAS = (0.25, 0.6, 1.0)

#: The four CPA-family procedures as (name, constraint factory, kwargs).
PROCEDURES = (
    ("HCPA", lambda beta, power: NoConstraint(), {}),
    ("HCPA-guarded", lambda beta, power: NoConstraint(), {"efficiency_threshold": 0.5}),
    ("SCRAP", AreaConstraint, {}),
    ("SCRAP-MAX", LevelConstraint, {}),
)


def _fig3_scale_inputs():
    """Fig3-scale allocation workloads: 10 random PTGs per seed, full site."""
    platform = grid5000.rennes()
    seeds = (2009, 2010, 2011) if full_scale() else (2009,)
    ptgs = []
    for seed in seeds:
        ptgs.extend(make_workload(WorkloadSpec(family="random", n_ptgs=10, seed=seed)))
    return platform, ptgs


def _run_all(loop, ptgs, platform, reference):
    """Allocate every (PTG, procedure, beta) combination with *loop*."""
    power = platform.total_power_gflops
    outcomes = []
    for ptg in ptgs:
        for beta in BETAS:
            for name, make_constraint, kwargs in PROCEDURES:
                allocation, stats = loop(
                    ptg, platform, reference, beta,
                    make_constraint(beta, power), **kwargs
                )
                outcomes.append((allocation.as_dict(), stats))
    return outcomes


def _time_loop(loop, ptgs, platform, reference, rounds=ROUNDS):
    """Best wall time of allocating every combination, and the outcomes."""
    best = float("inf")
    outcomes = None
    for _ in range(rounds):
        tic = time.perf_counter()
        produced = _run_all(loop, ptgs, platform, reference)
        elapsed = time.perf_counter() - tic
        if elapsed < best:
            best = elapsed
            outcomes = produced
    return best, outcomes


def run_allocation_core():
    """Time optimized vs reference allocation and verify identical output."""
    platform, ptgs = _fig3_scale_inputs()
    reference = ReferenceCluster.of(platform)
    n_tasks = sum(p.n_tasks for p in ptgs)
    n_allocations = len(ptgs) * len(BETAS) * len(PROCEDURES)

    fast_time, fast_outcomes = _time_loop(
        run_iterative_allocation, ptgs, platform, reference
    )
    ref_time, ref_outcomes = _time_loop(
        run_reference_allocation, ptgs, platform, reference
    )

    for (fast_alloc, fast_stats), (ref_alloc, ref_stats) in zip(
        fast_outcomes, ref_outcomes
    ):
        assert fast_alloc == ref_alloc
        assert fast_stats == ref_stats
    return {
        "platform": platform.name,
        "ptgs": len(ptgs),
        "tasks": n_tasks,
        "procedures": [name for name, _, _ in PROCEDURES],
        "betas": list(BETAS),
        "allocations": n_allocations,
        "optimized_seconds": fast_time,
        "reference_seconds": ref_time,
        "speedup": ref_time / fast_time,
        "allocations_per_second_optimized": n_allocations / fast_time,
    }


def bench_allocation_core(benchmark):
    """Old-vs-new allocation core on a fig3-scale workload."""
    summary = benchmark.pedantic(run_allocation_core, rounds=1, iterations=1)
    write_result("BENCH_allocation_core.json", json.dumps(summary, indent=2))
    assert summary["speedup"] >= 4.0, (
        f"optimized allocation core is only {summary['speedup']:.2f}x faster "
        f"({summary['optimized_seconds']:.3f}s vs {summary['reference_seconds']:.3f}s)"
    )


if __name__ == "__main__":
    result = run_allocation_core()
    print(json.dumps(result, indent=2))
    assert result["speedup"] >= 4.0, f"speedup {result['speedup']:.2f}x < 4x"
