"""Benchmark O1 -- telemetry overhead on the pipeline-core workload.

``repro.obs`` promises *zero overhead when disabled*: every hot-path
instrumentation site either returns the shared ``NOOP_SPAN`` singleton
or bails out on a single ``meters.active() is None`` check.  This
benchmark quantifies that promise on the same Fig3-scale workload as
:mod:`benchmarks.bench_pipeline_core`:

1. time the optimized allocation + mapping pipeline with telemetry
   disabled (the default state -- this is what campaigns pay),
2. run the same pipeline once under :func:`repro.obs.capture` to count
   every telemetry event it emits (spans, counter increments, histogram
   observations) and to check the schedules stay **bit-identical**,
3. time the disabled-path primitives (``trace.span`` -> ``NOOP_SPAN``,
   ``meters.active()`` -> ``None``) in a tight loop, and
4. gate ``events x per-event disabled cost`` at <= 3% of the disabled
   pipeline wall time.

Deriving the disabled overhead from the measured primitive cost (rather
than differencing two noisy pipeline timings) keeps the gate stable on
shared CI runners.  A ``BENCH_obs.json`` summary records the wall
times, the event census and the overhead fraction.

Run standalone with
``PYTHONPATH=src python benchmarks/bench_obs_overhead.py`` or through
pytest-benchmark with
``PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only -s``.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

try:
    from benchmarks.conftest import write_result
except ModuleNotFoundError:  # standalone: python benchmarks/bench_obs_overhead.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.conftest import write_result
from benchmarks.bench_pipeline_core import (
    _assert_identical,
    _fig3_scale_inputs,
    _pipeline,
    _time_pipeline,
)
from repro import obs
from repro.allocation.iterative import run_iterative_allocation
from repro.allocation.reference import ReferenceCluster
from repro.mapping.ready_list import ReadyListMapper
from repro.obs import meters, trace

#: Maximum tolerated disabled-mode overhead (fraction of pipeline time).
OVERHEAD_BUDGET = 0.03

#: Iterations used to time the disabled-path primitives.
PRIMITIVE_ITERATIONS = 200_000


def _disabled_span_cost(iterations: int = PRIMITIVE_ITERATIONS) -> float:
    """Per-call cost of entering a disabled ``trace.span`` (seconds)."""
    assert not trace.enabled()
    tic = time.perf_counter()
    for _ in range(iterations):
        with trace.span("bench"):
            pass
    return (time.perf_counter() - tic) / iterations


def _disabled_meter_cost(iterations: int = PRIMITIVE_ITERATIONS) -> float:
    """Per-call cost of the disabled ``meters.active()`` guard (seconds)."""
    assert meters.active() is None
    tic = time.perf_counter()
    for _ in range(iterations):
        if meters.active() is not None:  # pragma: no cover - disabled
            raise AssertionError("telemetry unexpectedly enabled")
    return (time.perf_counter() - tic) / iterations


def _count_events(session) -> int:
    """Telemetry events one enabled pipeline run emits."""
    snapshot = session.registry.snapshot()
    counter_increments = sum(snapshot["counters"].values())
    observations = sum(h["count"] for h in snapshot["histograms"].values())
    gauge_sets = len(snapshot["gauges"])
    return len(session.spans) + int(counter_increments) + observations + gauge_sets


def run_obs_overhead():
    """Measure disabled- and enabled-mode telemetry cost on the pipeline."""
    platform, bundles = _fig3_scale_inputs()
    reference = ReferenceCluster.of(platform)

    assert trace.span("probe") is trace.NOOP_SPAN, (
        "disabled trace.span must return the shared no-op singleton"
    )
    disabled_time, schedules = _time_pipeline(
        run_iterative_allocation, ReadyListMapper, bundles, platform, reference
    )

    # One enabled run: census of the events, and a bit-identity check.
    with obs.capture() as session:
        tic = time.perf_counter()
        traced_schedules = _pipeline(
            run_iterative_allocation, ReadyListMapper, bundles, platform, reference
        )
        enabled_time = time.perf_counter() - tic
    _assert_identical(traced_schedules, schedules)

    events = _count_events(session)
    span_cost = _disabled_span_cost()
    meter_cost = _disabled_meter_cost()
    # When disabled, a span site pays one NOOP_SPAN round trip and a
    # metric site pays one ``meters.active()`` check; charging *every*
    # counted event the meter guard overstates the cost (bulk counter
    # increments share one guard), so this is an upper bound.
    disabled_cost = len(session.spans) * span_cost + events * meter_cost
    overhead_fraction = disabled_cost / disabled_time

    return {
        "platform": platform.name,
        "bundles": len(bundles),
        "disabled_seconds": disabled_time,
        "enabled_seconds": enabled_time,
        "events_per_run": events,
        "spans_per_run": len(session.spans),
        "disabled_span_cost_ns": span_cost * 1e9,
        "disabled_meter_cost_ns": meter_cost * 1e9,
        "disabled_overhead_fraction": overhead_fraction,
        "overhead_budget": OVERHEAD_BUDGET,
    }


def bench_obs_overhead(benchmark):
    """Disabled-mode telemetry overhead on the fig3-scale pipeline."""
    summary = benchmark.pedantic(run_obs_overhead, rounds=1, iterations=1)
    write_result("BENCH_obs.json", json.dumps(summary, indent=2))
    assert summary["disabled_overhead_fraction"] <= OVERHEAD_BUDGET, (
        f"disabled telemetry costs {summary['disabled_overhead_fraction']:.2%} "
        f"of the pipeline ({summary['events_per_run']} events at "
        f"{summary['disabled_span_cost_ns']:.0f}ns) -- budget is "
        f"{OVERHEAD_BUDGET:.0%}"
    )


if __name__ == "__main__":
    result = run_obs_overhead()
    print(json.dumps(result, indent=2))
    assert result["disabled_overhead_fraction"] <= OVERHEAD_BUDGET, (
        f"overhead {result['disabled_overhead_fraction']:.2%} > "
        f"{OVERHEAD_BUDGET:.0%}"
    )
