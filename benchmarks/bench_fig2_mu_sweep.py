"""Benchmark E2 -- Figure 2: influence of the mu parameter of WPS-work.

Regenerates both panels of Figure 2 (unfairness and average makespan as
functions of mu, one series per number of concurrent PTGs) for random
PTGs, and reports the knee of the trade-off the paper uses to pick
``mu = 0.7``.
"""

from benchmarks.conftest import campaign_scale, full_scale, write_result
from repro.experiments.mu_sweep import PAPER_MU_VALUES, run_mu_sweep
from repro.experiments.reporting import render_mu_sweep


def run_sweep():
    scale = campaign_scale()
    return run_mu_sweep(
        characteristic="work",
        family="random",
        mu_values=PAPER_MU_VALUES,
        ptg_counts=scale["ptg_counts"],
        workloads_per_point=scale["workloads_per_point"],
        platforms=scale["platforms"] if full_scale() else scale["platforms"][:1],
        base_seed=2009,
        max_tasks=scale["max_tasks"],
    )


def bench_fig2_mu_sweep(benchmark):
    """Regenerate Figure 2 (WPS-work mu sweep on random PTGs)."""
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    text = render_mu_sweep(result)
    text += f"\n\nrecommended mu (knee of the trade-off): {result.recommended_mu():.2f}"
    write_result("fig2_mu_sweep.txt", text)

    # qualitative shape: for the largest PTG count, unfairness at mu = 1
    # (equal share) is no worse than at mu = 0 (pure proportional share),
    # and the average makespan at mu = 0 is no worse than at mu = 1.
    largest = max(result.ptg_counts)
    unfair = result.unfairness[largest]
    makespan = result.average_makespan[largest]
    assert unfair[-1] <= unfair[0] * 1.25 + 1e-9
    assert makespan[0] <= makespan[-1] * 1.25 + 1e-9
    # the recommended knee is an interior value of the sweep
    assert 0.0 <= result.recommended_mu() <= 1.0
